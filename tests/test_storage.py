"""Tests for ragged storage layouts and O(1) access lowering."""

import numpy as np
import pytest

from repro.core.dims import Dim, FusedDim
from repro.core.errors import StorageError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.storage import RaggedLayout


def ragged_2d(lengths, pad=1):
    batch, seq = Dim("batch"), Dim("seq")
    return RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths, pad=pad)


def ragged_3d(lengths, hidden=4, pad=1):
    batch, seq, h = Dim("batch"), Dim("seq"), Dim("h")
    padding = {seq: pad} if pad > 1 else None
    return RaggedLayout(
        [batch, seq, h],
        [ConstExtent(len(lengths)), VarExtent(batch, lengths), ConstExtent(hidden)],
        storage_padding=padding,
    )


def attention_4d(lengths, heads=2):
    batch, s1, hd, s2 = Dim("batch"), Dim("s1"), Dim("heads"), Dim("s2")
    return RaggedLayout(
        [batch, s1, hd, s2],
        [ConstExtent(len(lengths)), VarExtent(batch, lengths),
         ConstExtent(heads), VarExtent(batch, lengths)],
    )


class TestConstruction:
    def test_dense_layout_not_ragged(self):
        layout = RaggedLayout.dense([Dim("a"), Dim("b")], [3, 4])
        assert not layout.is_ragged
        assert layout.total_size() == 12
        assert layout.dense_shape() == (3, 4)

    def test_ragged_2d(self):
        layout = ragged_2d([5, 2, 3])
        assert layout.is_ragged
        assert layout.total_size() == 10
        assert layout.dense_shape() == (3, 5)

    def test_mismatched_lengths_rejected(self):
        batch, seq = Dim("batch"), Dim("seq")
        with pytest.raises(StorageError):
            RaggedLayout.ragged_2d(batch, seq, 3, [5, 2])

    def test_extent_count_mismatch(self):
        with pytest.raises(StorageError):
            RaggedLayout([Dim("a")], [ConstExtent(1), ConstExtent(2)])

    def test_padding_unknown_dim_rejected(self):
        with pytest.raises(StorageError):
            RaggedLayout([Dim("a")], [4], storage_padding={Dim("b"): 2})

    def test_vdim_governed_by_non_outermost_rejected(self):
        a, b, c = Dim("a"), Dim("b"), Dim("c")
        with pytest.raises(StorageError):
            RaggedLayout([a, b, c],
                         [ConstExtent(2), ConstExtent(3), VarExtent(b, [1, 2, 3])])


class TestSizesAndPadding:
    def test_storage_padding_rounds_slices(self):
        layout = ragged_2d([5, 2, 3], pad=4)
        # padded lengths 8, 4, 4
        assert layout.total_size() == 16

    def test_padding_fraction(self):
        layout = ragged_2d([5, 2, 3], pad=4)
        assert layout.padding_fraction() == pytest.approx(1 - 10 / 16)

    def test_fully_padded_layout(self):
        layout = ragged_2d([5, 2, 3])
        dense = layout.fully_padded()
        assert not dense.is_ragged
        assert dense.total_size() == 15

    def test_with_padding_merges_lcm(self):
        layout = ragged_2d([5, 2, 3], pad=2)
        seq = layout.dims[1]
        padded = layout.with_padding({seq: 3})
        assert padded.storage_pad_of(1) == 6

    def test_slice_shape_3d(self):
        layout = ragged_3d([5, 2], hidden=4)
        assert layout.slice_shape(0) == (5, 4)
        assert layout.slice_shape(1) == (2, 4)

    def test_4d_attention_total(self):
        lengths = [3, 2]
        layout = attention_4d(lengths, heads=2)
        assert layout.total_size() == 2 * (3 * 3) + 2 * (2 * 2)


class TestOffsets:
    def test_2d_offsets_match_manual(self):
        layout = ragged_2d([5, 2, 3])
        assert layout.offset((0, 0)) == 0
        assert layout.offset((0, 4)) == 4
        assert layout.offset((1, 0)) == 5
        assert layout.offset((2, 2)) == 9

    def test_offsets_are_a_bijection(self):
        lengths = [5, 2, 3]
        layout = ragged_2d(lengths)
        seen = set()
        for b, n in enumerate(lengths):
            for i in range(n):
                seen.add(layout.offset((b, i)))
        assert seen == set(range(layout.total_size()))

    def test_4d_offsets_are_a_bijection(self):
        lengths = [2, 3, 1]
        layout = attention_4d(lengths, heads=2)
        seen = set()
        for b, n in enumerate(lengths):
            for i in range(n):
                for h in range(2):
                    for j in range(n):
                        seen.add(layout.offset((b, i, h, j)))
        assert seen == set(range(layout.total_size()))
        assert len(seen) == layout.total_size()

    def test_vectorised_offsets_match_scalar(self):
        lengths = [4, 1, 3]
        layout = ragged_3d(lengths, hidden=2)
        idx = []
        for b, n in enumerate(lengths):
            for i in range(n):
                for h in range(2):
                    idx.append((b, i, h))
        idx = np.array(idx).T
        vec = layout.offsets([idx[0], idx[1], idx[2]])
        scalar = [layout.offset(tuple(col)) for col in np.array(idx).T]
        assert list(vec) == scalar

    def test_out_of_range_raises(self):
        layout = ragged_2d([5, 2, 3])
        with pytest.raises(StorageError):
            layout.offset((0, 5))
        with pytest.raises(StorageError):
            layout.offset((3, 0))
        with pytest.raises(StorageError):
            layout.offset((0,))

    def test_padded_region_is_addressable(self):
        layout = ragged_2d([5, 2, 3], pad=4)
        # length 2 padded to 4: index 3 is valid storage.
        assert layout.offset((1, 3)) == layout.offset((1, 0)) + 3

    def test_slice_bounds(self):
        layout = ragged_2d([5, 2, 3])
        assert layout.slice_bounds(0) == (0, 5)
        assert layout.slice_bounds(2) == (7, 10)

    def test_offset_constant_time_data(self):
        """The aux data is a single (M+1)-entry array regardless of lengths."""
        layout = attention_4d([10, 20, 30], heads=4)
        aux = layout.build_aux()
        assert aux.row_offsets.size == 4


class TestDimFusion:
    def test_fuse_batch_and_seq(self):
        layout = ragged_2d([5, 2, 3])
        batch, seq = layout.dims
        fused = layout.fuse_dims(batch, seq)
        assert isinstance(fused.dims[0], FusedDim)
        assert fused.total_size() == 10
        assert not fused.is_ragged

    def test_fuse_3d_keeps_inner_dim(self):
        layout = ragged_3d([5, 2], hidden=4)
        fused = layout.fuse_dims(layout.dims[0], layout.dims[1])
        assert fused.total_size() == 7 * 4
        assert fused.ndim == 2

    def test_fuse_non_adjacent_rejected(self):
        layout = ragged_3d([5, 2], hidden=4)
        with pytest.raises(StorageError):
            layout.fuse_dims(layout.dims[0], layout.dims[2])
