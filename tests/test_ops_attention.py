"""Tests for the attention / softmax / layernorm / projection operators."""

import numpy as np
import pytest

from repro.core.ragged_tensor import ragged_from_lengths
from repro.models.config import TransformerConfig
from repro.ops import elementwise
from repro.ops.attention import (
    attnv_launch,
    masked_sdpa_workload,
    qkt_launch,
    random_qkv,
    sdpa_dense_reference,
    sdpa_slices,
    split_hfuse_workload,
)
from repro.ops.layernorm import layernorm_flat, layernorm_slices
from repro.ops.projection import (
    linear_packed,
    linear_slices,
    pack_tokens,
    projection_launch,
    unpack_tokens,
)
from repro.ops.softmax import masked_softmax_dense, softmax_slices
from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_64core, v100_gpu

SMALL_CONFIG = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                                 ff_size=32, num_layers=2, loop_pad=4, bulk_pad=8,
                                 attention_tile=8)
LENGTHS = [7, 3, 5]


class TestElementwise:
    def test_scale_add_relu(self):
        x = ragged_from_lengths(LENGTHS, inner_shape=(4,), seed=0)
        y = ragged_from_lengths(LENGTHS, inner_shape=(4,), seed=1)
        assert np.allclose(elementwise.scale(x, 3.0).valid_slice(0),
                           3.0 * x.valid_slice(0))
        assert np.allclose(elementwise.add(x, y).valid_slice(1),
                           x.valid_slice(1) + y.valid_slice(1))
        assert (elementwise.relu(x).valid_slice(2) >= 0).all()

    def test_bias_and_gelu(self):
        x = ragged_from_lengths(LENGTHS, inner_shape=(4,), seed=0)
        bias = np.arange(4, dtype=np.float32)
        assert np.allclose(elementwise.bias_add(x, bias).valid_slice(0),
                           x.valid_slice(0) + bias)
        g = elementwise.gelu(x)
        assert g.valid_slice(0).shape == x.valid_slice(0).shape


class TestSoftmax:
    def test_rows_sum_to_one(self):
        scores = [np.random.default_rng(i).standard_normal((2, n, n)).astype(np.float32)
                  for i, n in enumerate(LENGTHS)]
        probs = softmax_slices(scores)
        for p in probs:
            assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-5)

    def test_masked_dense_matches_ragged(self):
        max_len = max(LENGTHS)
        scores_dense = np.random.default_rng(0).standard_normal(
            (len(LENGTHS), 2, max_len, max_len)).astype(np.float32)
        dense = masked_softmax_dense(scores_dense, LENGTHS)
        ragged = softmax_slices([scores_dense[b, :, :n, :n]
                                 for b, n in enumerate(LENGTHS)])
        for b, n in enumerate(LENGTHS):
            assert np.allclose(dense[b, :, :n, :n], ragged[b], atol=1e-5)
            assert np.allclose(dense[b, :, n:, :], 0.0)


class TestLayerNorm:
    def test_flat_matches_per_slice(self):
        hidden = [np.random.default_rng(i).standard_normal((n, 8)).astype(np.float32)
                  for i, n in enumerate(LENGTHS)]
        gamma = np.ones(8, dtype=np.float32)
        beta = np.zeros(8, dtype=np.float32)
        flat = layernorm_flat(pack_tokens(hidden), gamma, beta)
        per = layernorm_slices(hidden, gamma, beta)
        assert np.allclose(flat, pack_tokens(per), atol=1e-5)

    def test_normalised_stats(self):
        hidden = [np.random.default_rng(0).standard_normal((5, 16)).astype(np.float32)]
        out = layernorm_slices(hidden, np.ones(16, np.float32), np.zeros(16, np.float32))[0]
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)


class TestProjection:
    def test_pack_unpack_roundtrip(self):
        hidden = [np.random.default_rng(i).standard_normal((n, 4)).astype(np.float32)
                  for i, n in enumerate(LENGTHS)]
        packed = pack_tokens(hidden)
        assert packed.shape == (sum(LENGTHS), 4)
        back = unpack_tokens(packed, LENGTHS)
        for a, b in zip(hidden, back):
            assert np.array_equal(a, b)

    def test_packed_linear_matches_per_slice(self):
        hidden = [np.random.default_rng(i).standard_normal((n, 4)).astype(np.float32)
                  for i, n in enumerate(LENGTHS)]
        w = np.random.default_rng(9).standard_normal((4, 6)).astype(np.float32)
        b = np.random.default_rng(10).standard_normal(6).astype(np.float32)
        packed = linear_packed(pack_tokens(hidden), w, b)
        per = linear_slices(hidden, w, b)
        assert np.allclose(packed, pack_tokens(per), atol=1e-5)

    def test_projection_launch_flops(self):
        ragged = projection_launch(LENGTHS, 16, 32, name="p", bulk_pad=1)
        padded = projection_launch(LENGTHS, 16, 32, name="p", fully_padded=True)
        assert ragged.flops == pytest.approx(2 * sum(LENGTHS) * 16 * 32)
        assert padded.flops == pytest.approx(2 * len(LENGTHS) * max(LENGTHS) * 16 * 32)

    def test_bulk_padding_adds_little(self):
        ragged = projection_launch(LENGTHS, 16, 32, name="p", bulk_pad=8)
        exact = projection_launch(LENGTHS, 16, 32, name="p", bulk_pad=1)
        assert ragged.flops >= exact.flops
        assert ragged.flops < 1.5 * exact.flops


class TestSDPA:
    def test_ragged_matches_dense_reference(self):
        qkv = random_qkv(LENGTHS, SMALL_CONFIG, seed=0)
        ragged = sdpa_slices(qkv["q"], qkv["k"], qkv["v"],
                             head_size=SMALL_CONFIG.head_size)
        max_len = max(LENGTHS)
        def to_dense(slices):
            out = np.zeros((len(LENGTHS), SMALL_CONFIG.num_heads, max_len,
                            SMALL_CONFIG.head_size), dtype=np.float32)
            for b, s in enumerate(slices):
                out[b, :, :s.shape[1]] = s
            return out
        dense = sdpa_dense_reference(to_dense(qkv["q"]), to_dense(qkv["k"]),
                                     to_dense(qkv["v"]), LENGTHS,
                                     head_size=SMALL_CONFIG.head_size)
        for b, n in enumerate(LENGTHS):
            assert np.allclose(dense[b, :, :n], ragged[b], atol=1e-4)

    def test_masked_matches_dense_reference(self):
        qkv = random_qkv(LENGTHS, SMALL_CONFIG, seed=1)
        ragged = sdpa_slices(qkv["q"], qkv["k"], qkv["v"],
                             head_size=SMALL_CONFIG.head_size, masked=True)
        max_len = max(LENGTHS)
        def to_dense(slices):
            out = np.zeros((len(LENGTHS), SMALL_CONFIG.num_heads, max_len,
                            SMALL_CONFIG.head_size), dtype=np.float32)
            for b, s in enumerate(slices):
                out[b, :, :s.shape[1]] = s
            return out
        dense = sdpa_dense_reference(to_dense(qkv["q"]), to_dense(qkv["k"]),
                                     to_dense(qkv["v"]), LENGTHS,
                                     head_size=SMALL_CONFIG.head_size, masked=True)
        for b, n in enumerate(LENGTHS):
            assert np.allclose(dense[b, :, :n], ragged[b], atol=1e-4)

    def test_first_row_attends_only_to_itself_when_masked(self):
        qkv = random_qkv([4], SMALL_CONFIG, seed=2)
        out = sdpa_slices(qkv["q"], qkv["k"], qkv["v"],
                          head_size=SMALL_CONFIG.head_size, masked=True)[0]
        assert np.allclose(out[:, 0, :], qkv["v"][0][:, 0, :], atol=1e-4)


class TestAttentionWorkloads:
    def test_qkt_flops_quadratic(self):
        short = qkt_launch([16, 16], SMALL_CONFIG)
        long = qkt_launch([32, 32], SMALL_CONFIG)
        assert long.flops == pytest.approx(4 * short.flops, rel=0.01)

    def test_padding_increases_flops(self):
        exact = attnv_launch([10, 20], SMALL_CONFIG)
        padded = attnv_launch([10, 20], SMALL_CONFIG, pad_to=20)
        assert padded.flops > exact.flops

    def test_masked_halves_flops(self):
        full = qkt_launch([32], SMALL_CONFIG)
        masked = qkt_launch([32], SMALL_CONFIG, masked=True)
        assert masked.flops == pytest.approx(full.flops / 2)

    def test_split_conserves_work(self):
        lengths = [70, 33, 65]
        nosplit = split_hfuse_workload(lengths, "AttnV", "NoSplit", SMALL_CONFIG)
        split = split_hfuse_workload(lengths, "AttnV", "Split", SMALL_CONFIG)
        assert split.total_flops() <= nosplit.total_flops()
        hfused = split_hfuse_workload(lengths, "AttnV", "Split-HFused", SMALL_CONFIG)
        assert hfused.total_flops() == pytest.approx(split.total_flops())
        assert all(k.hfused_with for k in hfused.kernels)

    def test_hfusion_restores_gpu_parallelism(self):
        model = CostModel(v100_gpu())
        # Lengths above the tile size so both a main and a tail piece exist,
        # and a small batch so the split pieces cannot fill the GPU alone.
        lengths = np.full(8, 100)
        split = model.latency_ms(split_hfuse_workload(lengths, "AttnV", "Split"))
        hfused = model.latency_ms(split_hfuse_workload(lengths, "AttnV", "Split-HFused"))
        assert hfused < split

    def test_hfusion_neutral_on_cpu(self):
        model = CostModel(arm_cpu_64core())
        lengths = np.full(64, 43)
        split = model.latency_ms(split_hfuse_workload(lengths, "AttnV", "Split"))
        hfused = model.latency_ms(split_hfuse_workload(lengths, "AttnV", "Split-HFused"))
        assert hfused == pytest.approx(split, rel=0.05)

    def test_masked_sdpa_strategies_ordered(self):
        """Figure 18: CoRa-NoPad < CoRa-Pad < PyTorch."""
        model = CostModel(v100_gpu())
        lengths = np.random.default_rng(0).integers(80, 512, size=64)
        nopad = model.latency_ms(masked_sdpa_workload(lengths, "cora-nopad"))
        pad = model.latency_ms(masked_sdpa_workload(lengths, "cora-pad"))
        torch = model.latency_ms(masked_sdpa_workload(lengths, "pytorch"))
        assert nopad < pad < torch

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            split_hfuse_workload([8], "AttnV", "Bogus", SMALL_CONFIG)
        with pytest.raises(ValueError):
            masked_sdpa_workload([8], "bogus")
