"""Tests for the baselines, dataset generators and analytical models."""

import numpy as np
import pytest

from repro.analysis.flops import (
    attention_flops,
    encoder_layer_flops,
    masked_sdpa_flops,
    mha_flops,
    partial_padding_overhead,
    wasted_computation_ratio,
)
from repro.analysis.memory import (
    activation_memory_bytes,
    memory_report,
    memory_savings_ratio,
)
from repro.baselines.dense_padded import framework_mha_latency_ms
from repro.baselines.microbatch import (
    candidate_sizes,
    microbatched_latency,
    split_into_microbatches,
)
from repro.data.datasets import (
    DATASETS,
    dataset_names,
    get_dataset,
    sample_lengths,
    uniform_multiple_lengths,
)
from repro.models.config import PAPER_BASE_CONFIG
from repro.models.transformer import mha_workload
from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_8core, arm_cpu_64core


class TestDatasets:
    def test_all_eight_datasets_present(self):
        assert len(dataset_names()) == 8
        assert set(dataset_names()) == set(DATASETS)

    def test_lookup_case_insensitive(self):
        assert get_dataset("cola").name == "CoLA"
        with pytest.raises(KeyError):
            get_dataset("ImageNet")

    @pytest.mark.parametrize("name", ["RACE", "Wiki512", "SQuAD", "Wiki128",
                                      "MNLI", "XNLI", "MRPC", "CoLA"])
    def test_samples_within_bounds_and_near_mean(self, name):
        ds = get_dataset(name)
        lengths = ds.sample_lengths(128, seed=0)
        assert lengths.min() >= ds.min_len
        assert lengths.max() <= ds.max_len
        assert abs(lengths.mean() - ds.mean_len) <= max(0.05 * ds.mean_len, 2.0)

    def test_deterministic_sampling(self):
        a = sample_lengths("RACE", 32, seed=1)
        b = sample_lengths("RACE", 32, seed=1)
        c = sample_lengths("RACE", 32, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            sample_lengths("RACE", 0)

    def test_uniform_multiple_lengths(self):
        lens = uniform_multiple_lengths(100, 512, 1408, 128, seed=0)
        assert np.all(lens % 128 == 0)
        assert lens.min() >= 512 and lens.max() <= 1408


class TestFlopAnalysis:
    def test_wasted_computation_grows_with_spread(self):
        """Figure 2: more length variation -> more wasted computation."""
        tight = wasted_computation_ratio(np.full(64, 300))
        spread = wasted_computation_ratio(sample_lengths("MNLI", 64))
        assert tight == pytest.approx(1.0)
        assert spread > 1.5

    def test_dataset_ordering_matches_figure2(self):
        """Wiki128 offers the least opportunity, MNLI/CoLA the most."""
        at_128 = {ds: wasted_computation_ratio(sample_lengths(ds, 128))
                  for ds in dataset_names()}
        assert at_128["Wiki128"] < at_128["RACE"] < at_128["MNLI"]

    def test_wasted_computation_grows_with_batch_size(self):
        small = wasted_computation_ratio(sample_lengths("RACE", 2))
        large = wasted_computation_ratio(sample_lengths("RACE", 128))
        assert large >= small

    def test_encoder_flops_components(self):
        lengths = [100, 200]
        assert attention_flops(lengths) < mha_flops(lengths) < encoder_layer_flops(lengths)

    def test_partial_padding_overhead_small(self):
        """Figure 22 / Section 7.4: a few percent, shrinking with batch size."""
        small = partial_padding_overhead(sample_lengths("MRPC", 32))
        large = partial_padding_overhead(sample_lengths("MRPC", 128))
        for report in (small, large):
            assert report["ideal"] == 1.0
            assert 1.0 <= report["actual"] < 1.15
            assert report["dense"] > report["actual"]
        assert large["actual"] - 1.0 <= small["actual"] - 1.0 + 1e-9

    def test_masked_sdpa_flops_ordering(self):
        lengths = sample_lengths("RACE", 32)
        nopad = masked_sdpa_flops(lengths, strategy="nopad")
        pad = masked_sdpa_flops(lengths, strategy="pad")
        dense = masked_sdpa_flops(lengths, strategy="dense")
        assert nopad < pad < dense
        with pytest.raises(ValueError):
            masked_sdpa_flops(lengths, strategy="bogus")


class TestMemoryAnalysis:
    def test_ragged_saves_memory(self):
        lengths = sample_lengths("MNLI", 64)
        assert memory_savings_ratio(lengths) > 1.5

    def test_wiki_datasets_save_little(self):
        """Section D.5: Wiki512 / Wiki128 see only small benefits."""
        assert memory_savings_ratio(sample_lengths("Wiki128", 64)) < \
            memory_savings_ratio(sample_lengths("MNLI", 64))

    def test_report_structure(self):
        report = memory_report({ds: sample_lengths(ds, 64) for ds in dataset_names()})
        assert set(report) == set(dataset_names())
        for entry in report.values():
            assert entry["dense_bytes"] >= entry["ragged_bytes"]
            assert 0 < entry["relative"] <= 1.0

    def test_dense_equals_ragged_for_uniform_lengths(self):
        uniform = np.full(16, 128)
        dense = activation_memory_bytes(uniform, ragged=False)
        ragged = activation_memory_bytes(uniform, ragged=True)
        assert ragged <= dense * 1.01


class TestMicroBatching:
    def test_split_sizes(self):
        chunks = split_into_microbatches([5, 1, 9, 3, 7], 2)
        assert [len(c) for c in chunks] == [2, 2, 1]
        # sorted before splitting
        assert list(chunks[0]) == [1, 3]

    def test_candidate_sizes(self):
        assert candidate_sizes(32) == [2, 4, 8, 16, 32]
        assert candidate_sizes(48) == [2, 4, 8, 16, 32, 48]

    def test_search_finds_padding_optimum(self):
        """With a padding-dominated cost, smaller micro-batches win."""
        lengths = sample_lengths("MNLI", 64)

        def latency(chunk):
            return float(len(chunk) * chunk.max())  # fully padded cost

        result = microbatched_latency(lengths, latency)
        assert result.best_micro_batch < 64
        assert result.best_latency_ms <= result.per_size_ms[64]
        assert result.speedup_over_full_batch() >= 1.0

    def test_microbatching_helps_tf_on_cpu(self):
        """Table 9: TF-UB beats TF for datasets with much length variation."""
        lengths = sample_lengths("SQuAD", 64)
        model = CostModel(arm_cpu_64core())
        full = model.latency_ms(mha_workload(lengths, "tf"))
        result = microbatched_latency(
            lengths, lambda chunk: model.latency_ms(mha_workload(chunk, "tf")))
        assert result.best_latency_ms < full

    def test_pytorch_scaling_pathology(self):
        """Figure 27 / Table 9: PyTorch MHA degrades on the 64-core CPU."""
        lengths = sample_lengths("RACE", 32)
        fast = framework_mha_latency_ms(lengths, arm_cpu_8core(), framework="pt")
        slow = framework_mha_latency_ms(lengths, arm_cpu_64core(), framework="pt")
        tf64 = framework_mha_latency_ms(lengths, arm_cpu_64core(), framework="tf")
        assert slow > fast  # more cores, *slower* PyTorch
        assert slow > 10 * tf64
