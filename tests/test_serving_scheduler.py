"""Property tests for the continuous-batching scheduler.

For arbitrary arrival orders, sequence lengths, batch sizes and bucket
tolerances the scheduler must (a) return every request exactly once,
(b) produce outputs identical to a direct ``Session.run`` over the same
batch rows, and (c) reuse compiled programs more as the bucket tolerance
coarsens along a divisibility chain (hit counts monotone).  Padded
execution (tolerance > 1) is only exact under causal masking, so the
unmasked scheduler must reject it; padded masked results must stay
numerically close to the unpadded execution of the same request.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import BatchScheduler, RequestQueue, bucketed_length

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

WEIGHTS = EncoderWeights.random(SMALL, seed=0)


def _requests(lengths, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), SMALL.hidden_size))
            .astype(np.float32) for n in lengths]


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


class TestSchedulerProperties:
    @settings(max_examples=15, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=12),
                            min_size=1, max_size=8),
           tolerance=st.sampled_from([1, 2, 4]),
           max_batch=st.integers(min_value=1, max_value=4),
           seed=st.integers(min_value=0, max_value=3))
    def test_every_request_exactly_once_and_rows_match_direct_run(
            self, lengths, tolerance, max_batch, seed):
        session = Session(backend="vector")
        scheduler = BatchScheduler(WEIGHTS, SMALL, session=session,
                                   masked=True, max_batch_size=max_batch,
                                   bucket_tolerance=tolerance,
                                   log_batches=True)
        ids = scheduler.submit_many(_requests(lengths, seed=seed))
        results = scheduler.drain()

        # Exactly once: every id answered, nothing pending, nothing extra.
        assert sorted(results) == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert scheduler.pending == 0
        assert scheduler.step() == {}

        # Each result has its request's shape and matches a direct
        # Session.run over the same (padded) batch rows bit for bit.
        for rid, n in zip(ids, lengths):
            assert results[rid].shape == (n, SMALL.hidden_size)
        assert scheduler.replay_bit_identical(results)

        stats = scheduler.stats()
        assert stats["num_completed"] == len(ids)
        assert stats["valid_tokens"] == sum(lengths)
        assert stats["padded_tokens"] == sum(
            bucketed_length(n, tolerance) for n in lengths)
        assert (stats["signature_hits"] + stats["signature_misses"]
                == stats["num_batches"])

    @settings(max_examples=10, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=6),
           max_batch=st.integers(min_value=1, max_value=3))
    def test_unmasked_exact_signatures_match_direct_run(self, lengths,
                                                        max_batch):
        session = Session(backend="vector")
        scheduler = BatchScheduler(WEIGHTS, SMALL, session=session,
                                   masked=False, max_batch_size=max_batch,
                                   bucket_tolerance=1, log_batches=True)
        ids = scheduler.submit_many(_requests(lengths, seed=1))
        results = scheduler.drain()
        assert sorted(results) == sorted(ids)
        assert scheduler.replay_bit_identical(results)
        assert scheduler.stats()["padding_overhead"] == 0.0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_cache_hits_monotone_in_bucket_tolerance(self, seed):
        rng = np.random.default_rng(seed)
        stream = _requests(rng.integers(1, 17, size=24), seed=seed)
        hits = []
        for tolerance in (1, 2, 4, 8):
            session = Session(backend="vector")
            scheduler = BatchScheduler(WEIGHTS, SMALL, session=session,
                                       masked=True, max_batch_size=4,
                                       bucket_tolerance=tolerance)
            scheduler.submit_many(stream)
            scheduler.drain()
            stats = scheduler.stats()
            hits.append(stats["signature_hits"])
            assert stats["num_batches"] == 6
        # Coarser buckets along a divisibility chain merge signatures, so
        # compiled-program reuse can only grow.
        assert hits == sorted(hits)


# ---------------------------------------------------------------------------
# Padding semantics and validation
# ---------------------------------------------------------------------------


class TestSchedulerPaddingAndValidation:
    def test_padding_requires_causal_masking(self):
        with pytest.raises(ValueError):
            BatchScheduler(WEIGHTS, SMALL, masked=False, bucket_tolerance=4)
        BatchScheduler(WEIGHTS, SMALL, masked=False, bucket_tolerance=1)

    def test_padded_outputs_close_to_unpadded_execution(self):
        session = Session(backend="vector")
        stream = _requests([3, 7, 5, 2, 9, 6], seed=3)
        padded = BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                                max_batch_size=3, bucket_tolerance=8)
        exact = BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                               max_batch_size=3, bucket_tolerance=1)
        padded.submit_many(stream)
        exact.submit_many(stream)
        got = padded.drain()
        ref = exact.drain()
        assert padded.stats()["padded_tokens"] > exact.stats()["padded_tokens"]
        for (gid, g), (rid, r) in zip(sorted(got.items()),
                                      sorted(ref.items())):
            assert g.shape == r.shape
            assert np.allclose(g, r, atol=1e-5)

    def test_rejects_wrong_hidden_size_and_bad_config(self):
        scheduler = BatchScheduler(WEIGHTS, SMALL)
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((4, SMALL.hidden_size + 1), np.float32))
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((0, SMALL.hidden_size), np.float32))
        with pytest.raises(ValueError):
            BatchScheduler(WEIGHTS, SMALL, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(WEIGHTS, SMALL, bucket_tolerance=-1)
        with pytest.raises(ValueError):
            # Replay needs the (opt-in) batch log.
            scheduler.replay_bit_identical({})

    def test_canonical_slot_order_is_deterministic(self):
        session = Session(backend="vector")
        scheduler = BatchScheduler(WEIGHTS, SMALL, session=session,
                                   masked=True, max_batch_size=4,
                                   bucket_tolerance=2, log_batches=True)
        scheduler.submit_many(_requests([3, 9, 5, 9], seed=4))
        scheduler.drain()
        (batch,) = scheduler.batch_log
        assert batch.signature == tuple(sorted(batch.signature, reverse=True))
        # Ties (the two length-9 requests) stay in arrival order.
        tied = [r.request_id for r in batch.requests if r.length == 9]
        assert tied == sorted(tied)

    def test_stats_scoped_to_this_scheduler_on_shared_session(self):
        # Earlier activity on a shared session (another scheduler's
        # drains, direct compiles) must not leak into stats(): the
        # counters are deltas since construction.
        session = Session(backend="vector")
        first = BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                               max_batch_size=2, bucket_tolerance=2)
        first.submit_many(_requests([3, 5, 3, 5], seed=7))
        first.drain()
        assert first.stats()["signature_misses"] >= 1

        second = BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                                max_batch_size=2, bucket_tolerance=2)
        fresh = second.stats()
        assert fresh["signature_hits"] == 0
        assert fresh["signature_misses"] == 0
        assert fresh["program_compiles"] == 0
        assert fresh["distinct_signatures"] == 0
        second.submit_many(_requests([3, 5], seed=8))
        second.drain()
        # The second scheduler's lone batch repeats a signature the first
        # already compiled: it counts as ITS one hit, nothing more.
        assert second.stats()["signature_hits"] == 1
        assert second.stats()["program_compiles"] == 0
        assert second.stats()["distinct_signatures"] == 1

    def test_signature_stats_are_bounded(self):
        session = Session(backend="vector", signature_capacity=4)
        for i in range(8):
            session._note_signature(("sig", i), hit=False)
        assert len(session.signature_stats) == 4
        assert ("sig", 7) in session.signature_stats
        assert ("sig", 0) not in session.signature_stats

    def test_results_are_copies_not_arena_views(self):
        session = Session(backend="vector")
        scheduler = BatchScheduler(WEIGHTS, SMALL, session=session)
        stream = _requests([4, 4], seed=5)
        first_id = scheduler.submit(stream[0])
        first = scheduler.drain()[first_id]
        saved = first.copy()
        second_id = scheduler.submit(stream[1])
        scheduler.drain()
        assert np.array_equal(first, saved)

    def test_overlapped_drain_bit_identical_to_synchronous(self):
        # Pipelining demux of batch k with execution of batch k+1 must not
        # change a single bit of any response, for serial and pipelined
        # engines alike.
        stream = _requests([3, 7, 5, 2, 9, 4, 6], seed=9)
        baseline = BatchScheduler(WEIGHTS, SMALL,
                                  session=Session(backend="vector"),
                                  masked=True, max_batch_size=2,
                                  bucket_tolerance=2)
        ids = baseline.submit_many(stream)
        expected = baseline.drain()
        for engine, inplace in (("serial", False), ("pipelined", True)):
            session = Session(backend="vector", engine=engine,
                              inplace=inplace)
            overlapped = BatchScheduler(WEIGHTS, SMALL, session=session,
                                        masked=True, max_batch_size=2,
                                        bucket_tolerance=2,
                                        overlap_demux=True)
            ids2 = overlapped.submit_many(stream)
            results = overlapped.drain()
            assert sorted(results) == sorted(ids2)
            for a, b in zip(ids, ids2):
                assert np.array_equal(expected[a], results[b])
            stats = overlapped.stats()
            assert stats["overlapped_batches"] == stats["num_batches"] > 0


# ---------------------------------------------------------------------------
# Request queue
# ---------------------------------------------------------------------------


class TestRequestQueue:
    def test_fifo_order_and_monotone_ids(self):
        queue = RequestQueue()
        ids = queue.submit_many(_requests([2, 3, 4], seed=6))
        assert ids == sorted(ids)
        popped = queue.pop(2)
        assert [r.request_id for r in popped] == ids[:2]
        assert len(queue) == 1
        assert queue.pop(5)[0].request_id == ids[2]
        assert queue.pop(5) == []
        assert queue.submitted == 3
        assert queue.popped == 3

    def test_submit_validates_shape(self):
        queue = RequestQueue()
        with pytest.raises(ValueError):
            queue.submit(np.zeros(4, np.float32))
        with pytest.raises(ValueError):
            queue.submit(np.zeros((0, 4), np.float32))
        with pytest.raises(ValueError):
            queue.pop(0)

    def test_bucketed_length(self):
        assert bucketed_length(7, 0) == 7
        assert bucketed_length(7, 1) == 7
        assert bucketed_length(7, 4) == 8
        assert bucketed_length(8, 4) == 8
        assert bucketed_length(1, 8) == 8
        for t1, t2 in ((2, 4), (4, 8), (2, 8)):
            for n in range(1, 33):
                assert (bucketed_length(bucketed_length(n, t1), t2)
                        == bucketed_length(n, t2))
