"""Tests for the scheduling primitives."""

import numpy as np
import pytest

from repro.core.dims import Dim, FusedDim
from repro.core.errors import ScheduleError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import Annotation
from repro.core.operator import compute, input_tensor
from repro.core.schedule import (
    RemapInfo,
    Schedule,
    horizontal_fuse,
    operation_split,
)


def make_op(lengths=(5, 2, 3)):
    batch, seq = Dim("batch"), Dim("seq")
    lens = np.asarray(lengths)
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: 2.0 * A[o, i])
    return op, batch, seq


class TestPadding:
    def test_pad_loop_records_lcm(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 2).pad_loop(seq, 3)
        assert sch.loop_padding[seq] == 6

    def test_pad_dimension_records(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.pad_dimension(seq, 4)
        assert sch.storage_padding[seq] == 4

    def test_storage_padding_must_cover_loop_padding(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 8)
        sch.pad_dimension(seq, 2)
        with pytest.raises(ScheduleError):
            sch.validate()

    def test_valid_padding_combination(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 2)
        sch.pad_dimension(seq, 4)
        sch.validate()  # does not raise

    def test_pad_unknown_loop(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        with pytest.raises(ScheduleError):
            sch.pad_loop(Dim("other"), 2)

    def test_pad_nonpositive(self):
        op, batch, seq = make_op()
        with pytest.raises(ScheduleError):
            Schedule(op).pad_loop(seq, 0)

    def test_pad_input_dimension(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.pad_input_dimension("A", seq, 2)
        assert sch.input_storage_padding["A"][seq] == 2


class TestFusion:
    def test_fuse_loops_replaces_pair(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        fused = sch.fuse_loops(batch, seq)
        assert isinstance(fused, FusedDim)
        assert sch.loop_order == [fused]

    def test_fuse_non_adjacent_rejected(self):
        batch, seq, h = Dim("b"), Dim("s"), Dim("h")
        lens = np.array([2, 3])
        A = input_tensor("A", [batch, seq, h],
                         [ConstExtent(2), VarExtent(batch, lens), ConstExtent(4)])
        op = compute("B", [batch, seq, h],
                     [ConstExtent(2), VarExtent(batch, lens), ConstExtent(4)],
                     lambda b, s, k: A[b, s, k])
        sch = Schedule(op)
        with pytest.raises(ScheduleError):
            sch.fuse_loops(batch, h)

    def test_fuse_dimensions_requires_adjacency(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.fuse_dimensions(batch, seq)
        assert sch.dim_fusions == [(batch, seq)]
        with pytest.raises(ScheduleError):
            sch.fuse_dimensions(seq, batch)


class TestSplitReorder:
    def test_split_creates_two_loops(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        outer, inner = sch.split(seq, 4)
        assert sch.loop_order == [batch, outer, inner]

    def test_split_invalid_factor(self):
        op, batch, seq = make_op()
        with pytest.raises(ScheduleError):
            Schedule(op).split(seq, 0)

    def test_reorder_valid_permutation_required(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        with pytest.raises(ScheduleError):
            sch.reorder(batch)

    def test_reorder_vloop_above_governing_rejected(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        with pytest.raises(ScheduleError):
            sch.reorder(seq, batch)

    def test_reorder_split_loops(self):
        """A split cloop may be reordered freely inside the governing loop."""
        batch, seq, h = Dim("b"), Dim("s"), Dim("h")
        lens = np.array([4, 2])
        A = input_tensor("A", [batch, seq, h],
                         [ConstExtent(2), VarExtent(batch, lens), ConstExtent(8)])
        op = compute("C", [batch, seq, h],
                     [ConstExtent(2), VarExtent(batch, lens), ConstExtent(8)],
                     lambda b, s, k: A[b, s, k])
        sch = Schedule(op)
        ho, hi = sch.split(h, 4)
        sch.reorder(batch, ho, seq, hi)
        assert [d.name for d in sch.loop_order] == ["b", "h.o", "s", "h.i"]


class TestAnnotations:
    def test_parallel_vectorize_unroll(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.parallel(batch).vectorize(seq)
        assert sch.annotations[batch] is Annotation.PARALLEL
        assert sch.annotations[seq] is Annotation.VECTORIZE

    def test_bind_thread_axes(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.bind(batch, "blockIdx")
        assert sch.annotations[batch] is Annotation.BIND_BLOCK
        with pytest.raises(ScheduleError):
            sch.bind(seq, "warpIdx")


class TestThreadRemap:
    def test_sort_desc_policy(self):
        remap = RemapInfo(dim=Dim("x"), policy="sort_desc")
        perm = remap.permutation(np.array([1.0, 5.0, 3.0]))
        assert list(perm) == [1, 2, 0]

    def test_identity_policy(self):
        remap = RemapInfo(dim=Dim("x"), policy="identity")
        assert list(remap.permutation(np.array([1.0, 2.0]))) == [0, 1]

    def test_callable_policy(self):
        remap = RemapInfo(dim=Dim("x"), policy=lambda w: np.argsort(w))
        assert list(remap.permutation(np.array([3.0, 1.0, 2.0]))) == [1, 2, 0]

    def test_invalid_policy_name(self):
        remap = RemapInfo(dim=Dim("x"), policy="bogus")
        with pytest.raises(ScheduleError):
            remap.permutation(np.array([1.0]))

    def test_non_permutation_rejected(self):
        remap = RemapInfo(dim=Dim("x"), policy=lambda w: np.zeros_like(w, dtype=int))
        with pytest.raises(ScheduleError):
            remap.permutation(np.array([1.0, 2.0]))

    def test_schedule_records_remap(self):
        op, batch, seq = make_op()
        sch = Schedule(op)
        sch.thread_remap(batch, "sort_desc")
        assert sch.remaps[0].dim is batch


class TestOperationSplitAndHFusion:
    def test_operation_split_ranges(self):
        op, batch, seq = make_op((10, 3, 6))
        main, tail = operation_split(op, seq, split_point=lambda o: 4)
        assert main.range_fn(0) == (0, 4)
        assert tail.range_fn(0) == (4, 10)
        # A sequence shorter than the split point puts everything in main.
        assert main.range_fn(1) == (0, 3)
        assert tail.range_fn(1) == (3, 3)

    def test_operation_split_constant_point(self):
        op, batch, seq = make_op((10, 3, 6))
        main, tail = operation_split(op, seq, 8)
        assert main.range_fn(2) == (0, 6)

    def test_split_unknown_dim(self):
        op, batch, seq = make_op()
        with pytest.raises(ScheduleError):
            operation_split(op, Dim("other"), 4)

    def test_horizontal_fuse(self):
        op, batch, seq = make_op((10, 3, 6))
        main, tail = operation_split(op, seq, 4)
        group = horizontal_fuse(main, tail)
        assert len(group.members) == 2

    def test_horizontal_fuse_needs_two(self):
        op, batch, seq = make_op()
        main, _ = operation_split(op, seq, 4)
        with pytest.raises(ScheduleError):
            horizontal_fuse(main)
