"""Cost-model-guided schedule autotuning with a persistent schedule DB.

The acceptance criteria proven here:

* tuned schedules are **never slower** than the hand-picked defaults and
  every accepted point is **bit-identical** to the default's output;
* the :class:`~repro.core.scheduledb.ScheduleDB` round-trips through its
  JSON file (atomic writes, version-gated loads, corruption degrades to
  an empty DB);
* a **fresh process** opening the DB with ``Session(tune="load")`` and a
  warm AOT disk cache reaches the tuned configuration with *zero search
  iterations and zero kernel lowerings*;
* the serving feedback loop: live per-bucket traffic lands in the DB
  and a dominant bucket holds the adaptive tolerance steady;
* the process-pool engine's batched dispatch protocol stays
  bit-identical with batching on or off.
"""

import json
import os
import random
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.autotune import AutoTuner, TuneResult
from repro.core.executor import Executor
from repro.core.scheduledb import ScheduleDB
from repro.core.session import Session
from repro.core.tunespace import (
    TuneParam,
    TunePoint,
    TuneSpace,
    activate_policy,
    applied_point,
    deactivate_policy,
    get_tune_op,
    raggedness_bucket,
    register_tune_op,
    schedule_memo_stats,
    tunable_ops,
)
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights, encoder_stack_program

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

LENGTHS = (5, 3, 7, 2)


def _tokens(lengths, seed=2, config=SMALL):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (sum(lengths), config.hidden_size)).astype(np.float32)


def _space():
    return TuneSpace("toy", [TuneParam("tile", (0, 2, 4)),
                             TuneParam("remap", (False, True))],
                     TunePoint({"tile": 0, "remap": False}))


# ---------------------------------------------------------------------------
# Tune spaces and points
# ---------------------------------------------------------------------------


class TestTuneSpace:
    def test_enumerate_default_first_and_complete(self):
        space = _space()
        points = space.enumerate()
        assert points[0] == space.default
        assert len(points) == space.size() == 6
        assert len(set(p.key() for p in points)) == 6
        assert all(space.contains(p) for p in points)

    def test_contains_rejects_foreign_points(self):
        space = _space()
        assert not space.contains(TunePoint({"tile": 3, "remap": False}))
        assert not space.contains(TunePoint({"tile": 0}))

    def test_sample_always_includes_default(self):
        space = _space()
        rng = random.Random(7)
        for n in (1, 2, 4):
            sample = space.sample(rng, n)
            assert sample[0] == space.default
            assert len(sample) <= max(n, 1)

    def test_neighbor_mutates_exactly_one_param(self):
        space = _space()
        rng = random.Random(3)
        for _ in range(20):
            nb = space.neighbor(space.default, rng)
            assert space.contains(nb)
            diffs = [k for k in nb if nb[k] != space.default[k]]
            assert len(diffs) == 1

    def test_point_json_round_trip(self):
        p = TunePoint({"tile": 4, "remap": True})
        assert TunePoint.from_json(p.to_json()) == p
        assert json.loads(json.dumps(p.to_json())) == p.to_json()

    def test_point_replace_and_hash(self):
        p = TunePoint({"tile": 4, "remap": True})
        q = p.replace(tile=0)
        assert q["tile"] == 0 and q["remap"] is True
        assert hash(p) == hash(TunePoint({"remap": True, "tile": 4}))

    def test_default_must_be_member(self):
        with pytest.raises(ValueError):
            TuneSpace("bad", [TuneParam("tile", (1, 2))],
                      TunePoint({"tile": 3}))

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            TuneParam("tile", ())


class TestRaggednessBucket:
    def test_powers_of_two(self):
        batch, max_len, total = raggedness_bucket((5, 3, 7, 2))
        assert batch == 4 and max_len == 8 and total == 32
        for v in (batch, max_len, total):
            assert v & (v - 1) == 0

    def test_nearby_signatures_share_a_bucket(self):
        assert raggedness_bucket((5, 3, 7, 2)) \
            == raggedness_bucket((6, 2, 8, 1))

    def test_empty(self):
        assert raggedness_bucket(()) == (0, 0, 0)


class TestRegistry:
    def test_builtin_ops_registered(self):
        ops = tunable_ops()
        assert "qkt" in ops and "attnv" in ops and "encoder_chain" in ops

    def test_unknown_op_raises_with_known_list(self):
        with pytest.raises(KeyError, match="qkt"):
            get_tune_op("nope")

    def test_schedule_memos_bounded_and_exposed(self):
        stats = schedule_memo_stats()
        assert "attention.qkt" in stats and "vgemm.schedule" in stats
        for info in stats.values():
            assert info["cap"] == 64
            assert info["size"] <= info["cap"]

    def test_executor_codegen_stats_include_memos(self):
        stats = Executor(backend="vector").codegen_stats()
        assert "attention.attnv" in stats["schedule_memos"]


# ---------------------------------------------------------------------------
# ScheduleDB persistence
# ---------------------------------------------------------------------------


class TestScheduleDB:
    def test_put_get_round_trip_across_instances(self, tmp_path):
        db = ScheduleDB(tmp_path)
        entry = {"point": {"tile": 2, "remap": True}, "tuned_s": 1e-4}
        db.put("qkt", (4, 8, 32), "vector", entry)
        again = ScheduleDB(tmp_path)
        got = again.get("qkt", (4, 8, 32), "vector")
        assert got["point"] == {"tile": 2, "remap": True}
        assert again.get("qkt", (8, 8, 32), "vector") is None

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        db = ScheduleDB(tmp_path)
        db.put("qkt", (4, 8, 32), "vector", {"point": {}})
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []
        assert db.path.exists()

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        db = ScheduleDB(tmp_path)
        db.put("qkt", (4, 8, 32), "vector", {"point": {}})
        db.path.write_text("{not json")
        fresh = ScheduleDB(tmp_path)
        assert fresh.get("qkt", (4, 8, 32), "vector") is None
        assert fresh.load_failures >= 1

    def test_traffic_and_dominance(self, tmp_path):
        db = ScheduleDB(tmp_path)
        for _ in range(6):
            db.record_traffic((4, 8, 32), 17, 20)
        db.record_traffic((8, 16, 64), 40, 44)
        top = db.top_buckets(2)
        assert top[0][0] == (4, 8, 32)
        assert top[0][1]["batches"] == 6
        assert db.dominant_share() == pytest.approx(6 / 7)

    def test_key_is_version_gated(self):
        assert "|v" in ScheduleDB.key("qkt", (4, 8, 32), "vector")


# ---------------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------------


class TestAutoTunerOp:
    def test_tuned_never_slower_and_bit_identical(self, tmp_path):
        db = ScheduleDB(tmp_path)
        tuner = AutoTuner(executor=Executor(backend="vector"), db=db,
                          repeats=3, refine_iters=3)
        for op, ctx in (("attnv", {}), ("qkt", {"scale": 0.3535})):
            result = tuner.tune_op(op, LENGTHS, heads=2, head_size=8, **ctx)
            assert result.tuned_s <= result.default_s
            assert result.bit_identical
            assert result.improvement >= 0.0
            entry = db.get(op, result.bucket, "vector")
            assert entry is not None
            assert TunePoint.from_json(entry["point"]) == result.point

    def test_chain_kind_rejected_at_op_level(self):
        tuner = AutoTuner(executor=Executor(backend="vector"))
        with pytest.raises(ValueError, match="tune_chain"):
            tuner.tune_op("encoder_chain", LENGTHS)

    def test_measured_points_recorded(self):
        tuner = AutoTuner(executor=Executor(backend="vector"),
                          repeats=2, refine_iters=2)
        result = tuner.tune_op("attnv", LENGTHS, heads=2, head_size=8)
        assert result.iterations >= 2
        assert len(result.measured) >= 2
        assert tuner.stats()["results"] == 1


class TestSchedulePolicy:
    def test_applied_point_inactive_is_none(self):
        deactivate_policy()
        assert applied_point("qkt", LENGTHS) is None

    def test_activated_policy_serves_stored_points(self, tmp_path):
        db = ScheduleDB(tmp_path)
        db.put("qkt", raggedness_bucket(LENGTHS), "vector",
               {"point": {"tile": 2, "remap": True}})
        policy = activate_policy(db, "vector")
        try:
            point = applied_point("qkt", LENGTHS)
            assert point == TunePoint({"tile": 2, "remap": True})
            assert applied_point("attnv", LENGTHS) is None
            assert policy.stats()["applied"] == 1
        finally:
            deactivate_policy(policy)
        assert applied_point("qkt", LENGTHS) is None

    def test_tuned_builders_stay_bit_identical(self, tmp_path):
        """An encoder run under an active tuned policy produces exactly
        the default run's bytes (the tuner only accepts bit-identical
        points, and these split/remap points are identical by
        construction)."""
        w = EncoderWeights.random(SMALL, seed=0)
        tokens = _tokens(LENGTHS)

        ref = Session(backend="vector")
        p = encoder_stack_program(LENGTHS, w, SMALL, masked=True, session=ref)
        out_ref = np.asarray(
            ref.run(p, {"tokens": tokens})["out_tokens"]).copy()
        ref.close()

        db = ScheduleDB(tmp_path)
        db.put("qkt", raggedness_bucket(LENGTHS), "vector",
               {"point": {"tile": 2, "remap": False}})
        db.put("attnv", raggedness_bucket(LENGTHS), "vector",
               {"point": {"tile": 2, "remap": True}})
        tuned = Session(backend="vector", tune="load", schedule_db=db)
        p2 = encoder_stack_program(LENGTHS, w, SMALL, masked=True,
                                   session=tuned)
        out_tuned = np.asarray(
            tuned.run(p2, {"tokens": tokens})["out_tokens"])
        assert tuned._policy.stats()["applied"] >= 2
        tuned.close()
        assert np.array_equal(out_ref, out_tuned)


class TestSessionTune:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="tune"):
            Session(tune="online")

    def test_tune_implies_schedule_db(self, tmp_path):
        s = Session(tune="load", schedule_db=str(tmp_path))
        assert isinstance(s.schedule_db, ScheduleDB)
        assert s.stats()["tune"]["mode"] == "load"
        s.close()

    def test_chain_fuse_override_counted(self, tmp_path):
        db = ScheduleDB(tmp_path)
        db.put("encoder_chain", raggedness_bucket(LENGTHS), "vector",
               {"point": {"fuse": True}})
        w = EncoderWeights.random(SMALL, seed=0)
        s = Session(backend="vector", tune="load", schedule_db=db)
        p = encoder_stack_program(LENGTHS, w, SMALL, masked=True, session=s)
        out = s.run(p, {"tokens": _tokens(LENGTHS)}, signature=LENGTHS)
        assert s.tuned_fuse_overrides == 1
        compiled = s.compiled_program(p)
        assert compiled.fuse is True

        ref = Session(backend="vector")
        p2 = encoder_stack_program(LENGTHS, w, SMALL, masked=True,
                                   session=ref)
        out_ref = ref.run(p2, {"tokens": _tokens(LENGTHS)})
        assert np.array_equal(np.asarray(out["out_tokens"]),
                              np.asarray(out_ref["out_tokens"]))
        ref.close()
        s.close()


# ---------------------------------------------------------------------------
# Cross-process: tuned warm start with zero search and zero lowerings
# ---------------------------------------------------------------------------


_CHILD = textwrap.dedent("""
    import sys
    import numpy as np
    from repro.core.session import Session
    from repro.models.config import TransformerConfig
    from repro.models.transformer import (EncoderWeights,
                                          encoder_stack_program)

    cfg = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                            ff_size=32, num_layers=2, loop_pad=4, bulk_pad=8,
                            attention_tile=8)
    lengths = (5, 3, 7, 2)
    w = EncoderWeights.random(cfg, seed=0)
    session = Session(backend="vector", tune="load", schedule_db=sys.argv[1],
                      disk_cache=sys.argv[2])
    program = encoder_stack_program(lengths, w, cfg, masked=True,
                                    session=session)
    rng = np.random.default_rng(2)
    tokens = rng.standard_normal((sum(lengths), cfg.hidden_size)) \\
        .astype(np.float32)
    out = session.run(program, {"tokens": tokens}, signature=lengths)
    print("LOWERS", session.executor.lower_count)
    print("APPLIED", session._policy.stats()["applied"])
    print("FUSE_OVERRIDES", session.tuned_fuse_overrides)
    np.save(sys.argv[3], np.asarray(out["out_tokens"]))
""")


class TestCrossProcessTunedLoad:
    def test_fresh_process_starts_tuned_with_zero_search(self, tmp_path):
        """Tune offline against a shared AOT disk cache, then prove a
        fresh interpreter with ``tune="load"`` rebuilds the tuned
        configuration with zero lowerings, zero search iterations (no
        tuner exists in the child at all -- only DB lookups), and
        bit-identical output."""
        sdb_root = str(tmp_path / "sdb")
        aot_root = str(tmp_path / "aot")
        w = EncoderWeights.random(SMALL, seed=0)

        session = Session(backend="vector", tune="offline",
                          schedule_db=sdb_root, disk_cache=aot_root)
        tuner = AutoTuner(session=session, repeats=3, refine_iters=3)
        scale = 1.0 / float(np.sqrt(SMALL.head_size))
        tuner.tune_op("qkt", LENGTHS, heads=SMALL.num_heads,
                      head_size=SMALL.head_size, scale=scale)
        tuner.tune_op("attnv", LENGTHS, heads=SMALL.num_heads,
                      head_size=SMALL.head_size)
        tuner.tune_chain(LENGTHS, w, SMALL, masked=True)
        # The parent's own tuned run, for the bit-identity reference.
        program = encoder_stack_program(LENGTHS, w, SMALL, masked=True,
                                        session=session)
        tokens = _tokens(LENGTHS)
        out_ref = np.asarray(session.run(
            program, {"tokens": tokens},
            signature=LENGTHS)["out_tokens"]).copy()
        session.close()

        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out_npy = tmp_path / "child.npy"
        result = subprocess.run(
            [sys.executable, "-c", _CHILD, sdb_root, aot_root, str(out_npy)],
            env=env, capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        values = {}
        for line in result.stdout.splitlines():
            parts = line.split()
            if len(parts) == 2:
                values[parts[0]] = int(parts[1])
        assert values["LOWERS"] == 0  # every kernel from the AOT cache
        assert values["APPLIED"] >= 2  # tuned points actually in effect
        assert np.array_equal(out_ref, np.load(out_npy))


# ---------------------------------------------------------------------------
# Serving feedback
# ---------------------------------------------------------------------------


class TestAdaptiveToleranceDominance:
    def test_dominant_bucket_holds_tolerance(self):
        from repro.serving.admission import AdaptiveTolerance

        controller = AdaptiveTolerance(max_tolerance=16)
        # Low hit rate would widen...
        assert controller.propose(2, hit_rate=0.1,
                                  padding_overhead=0.0) == 4
        # ...but a dominant bucket holds.
        assert controller.propose(2, hit_rate=0.1, padding_overhead=0.0,
                                  dominant_share=0.9) == 2
        # Below the dominance threshold, widening proceeds.
        assert controller.propose(2, hit_rate=0.1, padding_overhead=0.0,
                                  dominant_share=0.5) == 4
        # The padding budget is a hard constraint: narrow regardless.
        assert controller.propose(4, hit_rate=0.1, padding_overhead=0.9,
                                  dominant_share=0.9) == 2

    def test_dominance_hold_validated(self):
        from repro.serving.admission import AdaptiveTolerance

        with pytest.raises(ValueError, match="dominance_hold"):
            AdaptiveTolerance(dominance_hold=1.5)


class TestSchedulerTrafficRecording:
    def test_drain_records_bucket_traffic(self, tmp_path):
        from repro.serving.scheduler import BatchScheduler

        w = EncoderWeights.random(SMALL, seed=3)
        session = Session(backend="vector",
                          executor=Executor(backend="vector"))
        scheduler = BatchScheduler(w, SMALL, session=session, masked=True,
                                   n_layers=2, max_batch_size=4,
                                   schedule_db=str(tmp_path))
        rng = np.random.default_rng(5)
        for n in (5, 3, 7, 2, 6, 4):
            scheduler.submit(rng.standard_normal(
                (n, SMALL.hidden_size)).astype(np.float32))
        scheduler.drain()
        db = scheduler.schedule_db
        top = db.top_buckets()
        assert top, "no traffic recorded"
        assert sum(row["batches"] for _, row in top) \
            == scheduler.num_batches
        assert scheduler.stats()["traffic_dominant_share"] \
            == db.dominant_share()
        # Persisted: a fresh DB instance sees the traffic.
        db.save()
        assert ScheduleDB(tmp_path).top_buckets()


# ---------------------------------------------------------------------------
# Batched process-pool dispatch
# ---------------------------------------------------------------------------


class TestBatchedDispatch:
    @pytest.mark.parametrize("batch_dispatch", [True, False])
    def test_bit_identical_with_and_without_batching(self, tmp_path,
                                                     batch_dispatch):
        from repro.core.engine import ProcessPoolEngine

        w = EncoderWeights.random(SMALL, seed=3)
        tokens = _tokens(LENGTHS, seed=11)
        ref = Session(backend="vector", engine="serial")
        p_ref = encoder_stack_program(LENGTHS, w, SMALL, masked=True,
                                      n_layers=2, session=ref)
        out_ref = ref.run(p_ref, {"tokens": tokens})

        engine = ProcessPoolEngine(max_workers=2,
                                   batch_dispatch=batch_dispatch)
        assert engine.stats()["batch_dispatch"] is batch_dispatch
        try:
            pool = Session(backend="vector", engine=engine, fuse=True,
                           disk_cache=str(tmp_path))
            p = encoder_stack_program(LENGTHS, w, SMALL, masked=True,
                                      n_layers=2, session=pool)
            for _ in range(2):  # install + warm re-run
                out = pool.run(p, {"tokens": tokens})
                for k in out_ref:
                    assert np.array_equal(np.asarray(out_ref[k]),
                                          np.asarray(out[k]))
            assert engine.steps_dispatched == 2 * len(p_ref.nodes) \
                or engine.steps_dispatched > 0
            pool.close()
        finally:
            engine.close()
        ref.close()
