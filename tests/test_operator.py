"""Tests for the Ragged API operator description."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar, Reduce
from repro.core.operator import (
    compute,
    input_tensor,
    max_reduce,
    reduce_axis,
    sum_reduce,
)


def figure1_operator(lengths=(5, 2, 3)):
    batch, seq = Dim("batch"), Dim("seq")
    lens = np.asarray(lengths)
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: 2.0 * A[o, i])
    return op, A, batch, seq


class TestInputTensor:
    def test_basic(self):
        a, b = Dim("a"), Dim("b")
        t = input_tensor("X", [a, b], [2, 3])
        assert t.name == "X"
        assert t.ndim == 2

    def test_arity_checked(self):
        with pytest.raises(LoweringError):
            input_tensor("X", [Dim("a")], [2, 3])

    def test_indexing_builds_access(self):
        a, b = Dim("a"), Dim("b")
        t = input_tensor("X", [a, b], [2, 3])
        access = t[a, b]
        assert access.tensor is t
        assert len(access.indices) == 2

    def test_indexing_wrong_arity(self):
        a, b = Dim("a"), Dim("b")
        t = input_tensor("X", [a, b], [2, 3])
        with pytest.raises(LoweringError):
            t[a]


class TestCompute:
    def test_figure1_structure(self):
        op, A, batch, seq = figure1_operator()
        assert op.name == "B"
        assert op.ndim == 2
        assert op.vloops() == [1]
        assert not op.is_vloop(0)
        assert [t.name for t in op.inputs] == ["A"]

    def test_body_is_expression_tree(self):
        op, *_ = figure1_operator()
        from repro.core.ir import BinOp, tensor_reads

        assert isinstance(op.body, BinOp)
        assert len(tensor_reads(op.body)) == 1

    def test_storage_extents_default_to_loop_extents(self):
        op, *_ = figure1_operator()
        assert op.storage_extents == op.loop_extents

    def test_vloop_must_depend_on_outer_loop(self):
        batch, seq, other = Dim("batch"), Dim("seq"), Dim("other")
        with pytest.raises(LoweringError):
            compute("B", [batch, seq],
                    [ConstExtent(3), VarExtent(other, [1, 2, 3])],
                    lambda o, i: o + i)

    def test_vloop_cannot_depend_on_inner_loop(self):
        batch, seq = Dim("batch"), Dim("seq")
        with pytest.raises(LoweringError):
            compute("B", [seq, batch],
                    [VarExtent(batch, [1, 2]), ConstExtent(2)],
                    lambda i, o: o + i)

    def test_dims_extents_mismatch(self):
        with pytest.raises(LoweringError):
            compute("B", [Dim("a")], [1, 2], lambda i: i)

    def test_output_layout(self):
        op, *_ = figure1_operator()
        layout = op.output_layout()
        assert layout.is_ragged
        assert layout.total_size() == 10

    def test_repr_marks_vloops(self):
        op, *_ = figure1_operator()
        assert ":v" in repr(op)


class TestReductions:
    def _matmul(self):
        batch, seq, j, h = Dim("batch"), Dim("seq"), Dim("j"), Dim("h")
        lens = np.array([3, 2])
        A = input_tensor("A", [batch, seq, h],
                         [ConstExtent(2), VarExtent(batch, lens), ConstExtent(4)])
        W = input_tensor("W", [Dim("k_in"), j], [ConstExtent(4), ConstExtent(3)])
        k = reduce_axis(4, "k")
        op = compute(
            "C", [batch, seq, j],
            [ConstExtent(2), VarExtent(batch, lens), ConstExtent(3)],
            lambda b, i, jj: sum_reduce(A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k),
        )
        return op, k

    def test_reduction_axes_discovered(self):
        op, k = self._matmul()
        axes = op.reduction_axes()
        assert len(axes) == 1
        assert axes[0].dim is k.dim

    def test_sum_reduce_node(self):
        red = sum_reduce(LoopVar(Dim("x")), reduce_axis(3))
        assert isinstance(red, Reduce)
        assert red.combiner == "sum"
        assert red.init == 0.0

    def test_max_reduce_node(self):
        red = max_reduce(LoopVar(Dim("x")), reduce_axis(3))
        assert red.combiner == "max"
        assert red.init == -np.inf

    def test_inputs_discovered(self):
        op, _ = self._matmul()
        assert sorted(t.name for t in op.inputs) == ["A", "W"]
