"""Tests for the dimension graph (dgraph)."""

import numpy as np
import pytest

from repro.core.dgraph import DimensionGraph
from repro.core.dims import Dim
from repro.core.errors import StorageError
from repro.core.extents import ConstExtent, VarExtent


def attention_layout_dims(lengths):
    """The 4-D attention tensor of Figure 8: [batch, seq1, heads, seq2]."""
    batch, seq1, heads, seq2 = Dim("batch"), Dim("seq1"), Dim("heads"), Dim("seq2")
    dims = (batch, seq1, heads, seq2)
    extents = (
        ConstExtent(len(lengths)),
        VarExtent(batch, lengths),
        ConstExtent(2),
        VarExtent(batch, lengths),
    )
    return dims, extents


class TestStructure:
    def test_edges_of_attention_tensor(self):
        dims, extents = attention_layout_dims([1, 2])
        g = DimensionGraph.from_layout(dims, extents)
        assert g.outgoing(0) == [1, 3]
        assert g.incoming(1) == [0]
        assert g.incoming(3) == [0]
        assert g.incoming(2) == []

    def test_vdims_and_cdims(self):
        dims, extents = attention_layout_dims([1, 2])
        g = DimensionGraph.from_layout(dims, extents)
        assert g.vdims() == [1, 3]
        assert g.cdims() == [0, 2]

    def test_transitive_outgoing(self):
        dims, extents = attention_layout_dims([1, 2])
        g = DimensionGraph.from_layout(dims, extents)
        assert g.transitive_outgoing(0) == {1, 3}
        assert g.transitive_outgoing(2) == set()

    def test_index_of_unknown_dim(self):
        dims, extents = attention_layout_dims([1, 2])
        g = DimensionGraph.from_layout(dims, extents)
        with pytest.raises(StorageError):
            g.index_of(Dim("other"))

    def test_repr_mentions_kinds(self):
        dims, extents = attention_layout_dims([1, 2])
        g = DimensionGraph.from_layout(dims, extents)
        assert "batch" in repr(g)


class TestValidation:
    def test_outermost_must_be_cdim(self):
        b = Dim("b")
        with pytest.raises(StorageError):
            DimensionGraph.from_layout((b,), (VarExtent(b, [1]),))

    def test_mismatched_lengths(self):
        with pytest.raises(StorageError):
            DimensionGraph.from_layout((Dim("a"),), (ConstExtent(1), ConstExtent(2)))

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            DimensionGraph.from_layout((), ())

    def test_vdim_depending_on_inner_dim_rejected(self):
        batch, seq = Dim("batch"), Dim("seq")
        # seq's extent depends on a dimension that appears *after* it.
        with pytest.raises(StorageError):
            DimensionGraph.from_layout(
                (batch, seq, Dim("post")),
                (ConstExtent(2), VarExtent(Dim("post"), [1, 2]), ConstExtent(2)),
            )


class TestAuxAccounting:
    def test_cora_scheme_constant_in_inner_sizes(self):
        lengths = np.array([3, 5, 2, 7])
        dims, extents = attention_layout_dims(lengths)
        g = DimensionGraph.from_layout(dims, extents)
        # One cumulative array over the governing (batch) dimension.
        assert g.cora_aux_entries(len(lengths)) == len(lengths) + 1

    def test_sparse_scheme_grows_with_slices(self):
        lengths = np.array([30, 50, 20, 70])
        dims, extents = attention_layout_dims(lengths)
        g = DimensionGraph.from_layout(dims, extents)
        sparse = g.sparse_scheme_aux_entries(lengths)
        cora = g.cora_aux_entries(len(lengths))
        # The CSF-style scheme stores roughly s1 + s3 * sum(s) entries;
        # CoRa's dgraph-aware scheme only needs one (s1 + 1)-entry array.
        expected = (len(lengths) + 1) + (2 * int(lengths.sum()) + 1)
        assert sparse == expected
        assert sparse > 10 * cora
