"""SLO-aware serving: admission control, adaptive tolerance, and the
deadline/accounting regression fixes.

Four families of guarantees are pinned down here:

* the three PR-9 bugfix regressions, each on a deterministic injected
  clock: a deadline expiring *mid-backoff* resolves ``TIMED_OUT``
  without burning another execution attempt (and the backoff sleep is
  capped by ``max_backoff_s`` and by the time to deadline); a demux
  double-fault rolls back *all* of the batch accounting so
  padding/throughput stats match delivered results; ``stats()`` and
  ``fusion_stats()`` perform zero program builds;
* the admission layer: FIFO stays bit-identical to the seed scheduler,
  priority + EDF reorder batch membership (never slot canonicalisation),
  the starvation bound holds, and a faulty policy falls back to FIFO via
  the ``admission`` injection point;
* the adaptive ``bucket_tolerance`` controller: bounded power-of-two
  moves driven by window hit-rate/overhead, masked-only above 1;
* a hypothesis property: goodput accounting matches the terminal-state
  census exactly-once under random fault schedules on simulated time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ExecutionError
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import (
    AdaptiveTolerance,
    BatchScheduler,
    FailedResult,
    FaultInjector,
    FifoAdmission,
    LatencyHistogram,
    PriorityDeadlineAdmission,
    Request,
    RequestQueue,
    RequestState,
    SimulatedClock,
    get_admission_policy,
)

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

WEIGHTS = EncoderWeights.random(SMALL, seed=0)

LENGTHS = (3, 7, 5, 2, 9, 6, 4, 8)


def _requests(lengths=LENGTHS, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), SMALL.hidden_size))
            .astype(np.float32) for n in lengths]


def _scheduler(injector=None, *, engine="serial", **kwargs):
    session = Session(backend="vector", engine=engine,
                      fault_injector=injector)
    kwargs.setdefault("max_batch_size", 4)
    kwargs.setdefault("bucket_tolerance", 2)
    return BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                          **kwargs)


def _pending_request(request_id, *, priority=1, deadline=None, skips=0,
                     length=4):
    return Request(request_id=request_id,
                   hidden=np.zeros((length, SMALL.hidden_size),
                                   dtype=np.float32),
                   priority=priority, deadline=deadline, skips=skips)


# ---------------------------------------------------------------------------
# Regression: deadline vs. backoff sleep (_resolve_singleton)
# ---------------------------------------------------------------------------


class TestBackoffDeadlineRegression:
    def test_deadline_expiring_mid_backoff_times_out_without_extra_attempt(
            self):
        clock = SimulatedClock()
        injector = FaultInjector(seed=0)
        injector.add("run", request_id=0, error=ExecutionError,
                     max_fires=None)
        scheduler = _scheduler(injector, clock=clock, sleeper=clock.advance,
                               retry_backoff_s=1.0)
        rid = scheduler.submit(_requests((5,))[0], deadline_s=1.5,
                               max_retries=2)
        results = scheduler.drain()
        result = results[rid]
        assert isinstance(result, FailedResult)
        assert result.state is RequestState.TIMED_OUT
        # attempt 1 at t=0 fails; backoff sleeps 1.0s; attempt 2 at t=1.0
        # fails; the next backoff (nominally 2.0s) is capped at the 0.5s
        # to deadline, and the post-sleep re-check resolves TIMED_OUT --
        # the buggy version slept the full 2.0s and burned attempt 3.
        assert result.attempts == 2
        assert clock.now() == pytest.approx(1.5)
        assert scheduler.stats()["timed_out_requests"] == 1

    def test_backoff_is_capped_by_max_backoff_s(self):
        clock = SimulatedClock()
        injector = FaultInjector(seed=0)
        injector.add("run", request_id=0, error=ExecutionError,
                     max_fires=None)
        scheduler = _scheduler(injector, clock=clock, sleeper=clock.advance,
                               retry_backoff_s=1.0, max_backoff_s=2.0)
        rid = scheduler.submit(_requests((5,))[0], max_retries=3)
        results = scheduler.drain()
        result = results[rid]
        assert isinstance(result, FailedResult)
        assert result.state is RequestState.FAILED
        assert result.attempts == 4
        # sleeps 1 + 2 + 2 (capped), not the uncapped 1 + 2 + 4.
        assert clock.now() == pytest.approx(5.0)

    def test_backoff_sleeps_through_the_injectable_sleeper(self):
        slept = []
        clock = SimulatedClock()

        def sleeper(dt):
            slept.append(dt)
            clock.advance(dt)

        injector = FaultInjector(seed=0)
        injector.add("run", request_id=0, error=ExecutionError,
                     max_fires=None)
        scheduler = _scheduler(injector, clock=clock, sleeper=sleeper,
                               retry_backoff_s=0.5, max_backoff_s=8.0)
        scheduler.submit(_requests((5,))[0], max_retries=2)
        scheduler.drain()
        assert slept == [0.5, 1.0]

    def test_invalid_max_backoff_rejected(self):
        with pytest.raises(ValueError):
            _scheduler(max_backoff_s=0.0)


# ---------------------------------------------------------------------------
# Regression: demux double-fault rollback
# ---------------------------------------------------------------------------


class TestDemuxRollbackRegression:
    def test_double_fault_rolls_back_all_batch_accounting(self):
        injector = FaultInjector(seed=8)
        injector.add("demux", error=ExecutionError, max_fires=None)
        scheduler = _scheduler(injector, overlap_demux=True)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        assert all(isinstance(results[r], FailedResult) for r in ids)
        stats = scheduler.stats()
        # Nothing was delivered, so none of the batch accounting sticks:
        # the buggy rollback only decremented num_completed, leaving
        # num_batches/valid_tokens/padded_tokens (and padding_overhead)
        # describing batches whose outputs were never delivered.
        assert stats["num_completed"] == 0
        assert stats["num_batches"] == 0
        assert stats["valid_tokens"] == 0
        assert stats["padded_tokens"] == 0
        assert stats["padding_overhead"] == 0.0
        assert stats["failed_requests"] == len(ids)
        scheduler.close()

    def test_double_fault_counts_each_request_once(self):
        # One demux-poisoned batch among healthy ones: only that batch's
        # requests fail, and failed_requests matches the failed set
        # exactly (no double counting of already-terminal requests).
        injector = FaultInjector(seed=8)
        injector.add("demux", error=ExecutionError, calls={0, 1},
                     max_fires=None)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        failed = [r for r in ids if isinstance(results[r], FailedResult)]
        stats = scheduler.stats()
        assert stats["failed_requests"] == len(failed)
        assert stats["num_completed"] == len(ids) - len(failed)
        # Delivered tokens only: valid_tokens counts the completed
        # requests' rows, nothing from the rolled-back batch.
        delivered_tokens = sum(results[r].shape[0] for r in ids
                               if not isinstance(results[r], FailedResult))
        assert stats["valid_tokens"] == delivered_tokens


# ---------------------------------------------------------------------------
# Regression: stats() performs zero program builds
# ---------------------------------------------------------------------------


class TestStatsZeroBuildsRegression:
    def test_stats_and_fusion_stats_build_no_programs(self, monkeypatch):
        scheduler = _scheduler()
        scheduler.submit_many(_requests())
        scheduler.drain()
        compiles_before = scheduler.session.stats()["program_compiles"]

        import repro.serving.scheduler as sched_mod

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("stats() built an encoder program")

        monkeypatch.setattr(sched_mod, "encoder_stack_program", _boom)
        stats = scheduler.stats()
        assert "fusion_by_signature" not in stats
        fusion = scheduler.stats(include_fusion=True)["fusion_by_signature"]
        assert fusion  # the drained signatures are all reported ...
        assert set(fusion) <= set(scheduler._program_uids)
        direct = scheduler.fusion_stats()
        assert set(direct) == set(fusion)
        # ... and nothing compiled or built along the way.
        assert scheduler.session.stats()["program_compiles"] \
            == compiles_before

    def test_fusion_stats_reports_dispatch_counts(self):
        scheduler = _scheduler()
        scheduler.submit_many(_requests())
        scheduler.drain()
        for info in scheduler.fusion_stats().values():
            assert info["kernel_dispatches"] >= 1
            assert info["host_dispatches"] >= 0


# ---------------------------------------------------------------------------
# Admission policies
# ---------------------------------------------------------------------------


class TestAdmissionPolicies:
    def test_get_admission_policy_resolution(self):
        assert isinstance(get_admission_policy("fifo"), FifoAdmission)
        assert isinstance(get_admission_policy(None), FifoAdmission)
        assert isinstance(get_admission_policy("priority_edf"),
                          PriorityDeadlineAdmission)
        policy = PriorityDeadlineAdmission(arrival_window=4)
        assert get_admission_policy(policy) is policy
        with pytest.raises(ValueError):
            get_admission_policy("nonsense")
        with pytest.raises(ValueError):
            PriorityDeadlineAdmission(arrival_window=0)
        with pytest.raises(ValueError):
            PriorityDeadlineAdmission(starvation_limit=0)

    def test_fifo_admission_matches_seed_scheduler_bit_for_bit(self):
        plain = _scheduler()
        ids_a = plain.submit_many(_requests())
        ref = plain.drain()
        fifo = _scheduler(admission="fifo")
        ids_b = fifo.submit_many(_requests())
        out = fifo.drain()
        for a, b in zip(ids_a, ids_b):
            assert np.array_equal(ref[a], out[b])
        assert fifo.stats()["admission"] == "fifo"

    def test_priority_classes_jump_the_queue(self):
        queue = RequestQueue()
        for i in range(6):
            queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32),
                         priority=2)
        interactive = queue.submit(
            np.zeros((4, SMALL.hidden_size), dtype=np.float32), priority=0)
        policy = PriorityDeadlineAdmission(arrival_window=32)
        chosen = policy.select(queue, 4, now=0.0)
        assert interactive in [r.request_id for r in chosen]

    def test_earliest_deadline_first_within_a_class(self):
        queue = RequestQueue(clock=lambda: 0.0)
        ids = [queue.submit(np.zeros((4, SMALL.hidden_size),
                                     dtype=np.float32),
                            deadline_s=d)
               for d in (9.0, 1.0, 5.0, 3.0)]
        policy = PriorityDeadlineAdmission()
        chosen = policy.select(queue, 2, now=0.0)
        assert [r.request_id for r in chosen] == [ids[1], ids[3]]

    def test_starvation_bound_promotes_passed_over_requests(self):
        queue = RequestQueue()
        batch_rid = queue.submit(
            np.zeros((4, SMALL.hidden_size), dtype=np.float32), priority=2)
        policy = PriorityDeadlineAdmission(starvation_limit=2)
        rounds_passed_over = 0
        for _ in range(8):
            queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32),
                         priority=0)
            chosen = policy.select(queue, 1, now=0.0)
            if chosen[0].request_id == batch_rid:
                break
            rounds_passed_over += 1
        else:
            pytest.fail("low-priority request starved past the bound")
        # Passed over exactly starvation_limit rounds, then served ahead
        # of the fresh interactive request.
        assert rounds_passed_over == 2

    def test_selection_window_bounds_reordering(self):
        queue = RequestQueue()
        first = queue.submit(np.zeros((4, SMALL.hidden_size),
                                      dtype=np.float32), priority=2)
        queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32),
                     priority=2)
        # The urgent request sits outside a window of 2: it cannot jump.
        queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32),
                     priority=0)
        policy = PriorityDeadlineAdmission(arrival_window=2)
        chosen = policy.select(queue, 1, now=0.0)
        assert chosen[0].request_id == first

    def test_edf_scheduler_results_match_fifo_per_request(self):
        fifo = _scheduler()
        ids_a = fifo.submit_many(_requests())
        ref = fifo.drain()
        edf = _scheduler(admission="priority_edf")
        ids_b = [edf.submit(h, priority=i % 3)
                 for i, h in enumerate(_requests())]
        out = edf.drain()
        # Reordering changes batch membership, never per-request math.
        for a, b in zip(ids_a, ids_b):
            assert np.array_equal(ref[a], out[b])

    def test_faulty_admission_policy_falls_back_to_fifo(self):
        injector = FaultInjector(seed=3)
        injector.add("admission", error=ExecutionError, max_fires=1)
        scheduler = _scheduler(injector, admission="priority_edf")
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        assert all(isinstance(results[r], np.ndarray) for r in ids)
        assert scheduler.stats()["admission_fallbacks"] >= 1

    def test_shed_low_priority_evicts_least_valuable(self):
        clock = SimulatedClock()
        scheduler = _scheduler(queue_capacity=2,
                               shed_policy="shed_low_priority", clock=clock)
        stream = _requests((4, 4, 4))
        keep = scheduler.submit(stream[0], priority=0, deadline_s=10.0)
        victim = scheduler.submit(stream[1], priority=2)
        urgent = scheduler.submit(stream[2], priority=0, deadline_s=1.0)
        results = scheduler.drain()
        assert isinstance(results[victim], FailedResult)
        assert results[victim].state is RequestState.REJECTED
        assert isinstance(results[keep], np.ndarray)
        assert isinstance(results[urgent], np.ndarray)

    def test_shed_low_priority_rejects_newcomer_when_least_valuable(self):
        queue = RequestQueue(capacity=1, shed_policy="shed_low_priority")
        queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32),
                     priority=0)
        rid = queue.submit(np.zeros((4, SMALL.hidden_size),
                                    dtype=np.float32), priority=2)
        shed = queue.drain_shed()
        assert [r.request_id for r in shed] == [rid]
        assert shed[0].state is RequestState.REJECTED


# ---------------------------------------------------------------------------
# Request-queue primitives backing admission
# ---------------------------------------------------------------------------


class TestQueuePrimitives:
    def test_peek_does_not_remove(self):
        queue = RequestQueue()
        ids = [queue.submit(np.zeros((4, SMALL.hidden_size),
                                     dtype=np.float32)) for _ in range(3)]
        window = queue.peek(2)
        assert [r.request_id for r in window] == ids[:2]
        assert len(queue) == 3

    def test_take_removes_by_identity_preserving_order(self):
        queue = RequestQueue()
        ids = [queue.submit(np.zeros((4, SMALL.hidden_size),
                                     dtype=np.float32)) for _ in range(4)]
        window = queue.peek(4)
        queue.take([window[1], window[3]])
        assert [r.request_id for r in queue.peek(4)] == [ids[0], ids[2]]
        assert queue.popped == 2

    def test_take_rejects_unknown_requests(self):
        queue = RequestQueue()
        queue.submit(np.zeros((4, SMALL.hidden_size), dtype=np.float32))
        with pytest.raises(ValueError):
            queue.take([_pending_request(99)])


# ---------------------------------------------------------------------------
# Adaptive bucket tolerance
# ---------------------------------------------------------------------------


class TestAdaptiveTolerance:
    def test_propose_widens_on_poor_hit_rate(self):
        ctl = AdaptiveTolerance(max_tolerance=16, target_hit_rate=0.5,
                                max_padding_overhead=0.25)
        assert ctl.propose(2, hit_rate=0.1, padding_overhead=0.1) == 4
        assert ctl.propose(16, hit_rate=0.1, padding_overhead=0.1) == 16

    def test_propose_narrows_on_padding_overrun(self):
        ctl = AdaptiveTolerance(max_tolerance=16, max_padding_overhead=0.25)
        assert ctl.propose(8, hit_rate=0.9, padding_overhead=0.4) == 4
        assert ctl.propose(1, hit_rate=0.9, padding_overhead=0.4) == 1

    def test_propose_holds_in_band(self):
        ctl = AdaptiveTolerance()
        assert ctl.propose(4, hit_rate=0.9, padding_overhead=0.1) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTolerance(min_tolerance=0)
        with pytest.raises(ValueError):
            AdaptiveTolerance(min_tolerance=4, max_tolerance=2)
        with pytest.raises(ValueError):
            AdaptiveTolerance(interval=0)
        with pytest.raises(ValueError):
            AdaptiveTolerance(target_hit_rate=1.5)
        with pytest.raises(ValueError):
            AdaptiveTolerance(max_padding_overhead=-0.1)

    def test_unmasked_scheduler_rejects_widening_controller(self):
        session = Session(backend="vector")
        with pytest.raises(ValueError):
            BatchScheduler(WEIGHTS, SMALL, session=session, masked=False,
                           adaptive_tolerance=AdaptiveTolerance(
                               max_tolerance=8))

    def test_unmasked_true_shorthand_is_capped_at_one(self):
        session = Session(backend="vector")
        scheduler = BatchScheduler(WEIGHTS, SMALL, session=session,
                                   masked=False, adaptive_tolerance=True)
        assert scheduler.adaptive_tolerance.max_tolerance == 1

    def test_scheduler_widens_under_length_diverse_traffic(self):
        ctl = AdaptiveTolerance(interval=2, target_hit_rate=0.9,
                                max_padding_overhead=10.0)
        scheduler = _scheduler(bucket_tolerance=1, max_batch_size=2,
                               adaptive_tolerance=ctl)
        rng = np.random.default_rng(2)
        # Every batch a fresh signature: hit rate stays low, so the
        # controller widens the tolerance step by step.
        for n in (3, 5, 7, 9, 11, 13, 6, 10, 14, 4, 8, 12):
            scheduler.submit(rng.standard_normal(
                (n, SMALL.hidden_size)).astype(np.float32))
        scheduler.drain()
        assert scheduler.bucket_tolerance > 1
        assert scheduler.stats()["tolerance_adjustments"] >= 1
        assert ctl.trajectory
        for a, b in zip(ctl.trajectory, ctl.trajectory[1:]):
            wide, narrow = max(a["tolerance"], b["tolerance"]), \
                min(a["tolerance"], b["tolerance"])
            assert wide % narrow == 0  # divisibility chain

    def test_adaptation_preserves_results(self):
        plain = _scheduler(bucket_tolerance=1)
        ids_a = plain.submit_many(_requests())
        ref = plain.drain()
        adaptive = _scheduler(bucket_tolerance=1, log_batches=True,
                              adaptive_tolerance=AdaptiveTolerance(
                                  interval=1, target_hit_rate=0.99))
        ids_b = adaptive.submit_many(_requests())
        out = adaptive.drain()
        assert adaptive.replay_bit_identical(out)
        for a, b in zip(ids_a, ids_b):
            assert np.array_equal(ref[a], out[b])


# ---------------------------------------------------------------------------
# Observability: timestamps, histograms, simulated clock
# ---------------------------------------------------------------------------


class TestObservability:
    def test_lifecycle_timestamps_are_ordered(self):
        clock = SimulatedClock()
        scheduler = _scheduler(clock=clock, log_batches=True,
                               service_model=lambda b: 0.25)
        scheduler.submit_many(_requests())
        scheduler.drain()
        seen = 0
        for batch in scheduler.batch_log:
            for request in batch.requests:
                assert request.t_submitted is not None
                assert request.t_formed is not None
                assert request.t_executed is not None
                assert request.t_delivered is not None
                assert (request.t_submitted <= request.t_formed
                        <= request.t_executed <= request.t_delivered)
                seen += 1
        assert seen == len(LENGTHS)

    def test_latency_histograms_by_priority_class(self):
        clock = SimulatedClock()
        scheduler = _scheduler(clock=clock, service_model=lambda b: 0.1)
        for i, h in enumerate(_requests()):
            scheduler.submit(h, priority=i % 2)
        scheduler.drain()
        latency = scheduler.stats()["latency_by_priority"]
        assert set(latency) == {0, 1}
        for hists in latency.values():
            assert set(hists) == {"queue", "execute", "total"}
            assert hists["total"]["count"] >= 1
            assert hists["total"]["p99_s"] >= hists["total"]["p50_s"] >= 0.0

    def test_goodput_counts_deadline_met_completions(self):
        clock = SimulatedClock()
        scheduler = _scheduler(clock=clock, service_model=lambda b: 1.0,
                               max_batch_size=2)
        stream = _requests((4, 4, 4, 4))
        on_time = [scheduler.submit(h, deadline_s=100.0) for h in stream[:2]]
        late = [scheduler.submit(h, deadline_s=1.5) for h in stream[2:]]
        results = scheduler.drain()
        stats = scheduler.stats()
        # The second batch executes after ~1s of service time for the
        # first; its 1.5s deadline passes mid-service, so it completes
        # late (deadlines only *drop* requests at formation time).
        completed = [r for r in on_time + late
                     if isinstance(results[r], np.ndarray)]
        assert stats["goodput_requests"] + stats["late_completions"] \
            == len(completed)
        assert stats["late_completions"] >= 1

    def test_drop_doomed_sheds_infeasible_requests_without_executing(self):
        clock = SimulatedClock()
        scheduler = _scheduler(clock=clock, service_model=lambda b: 1.0,
                               max_batch_size=2, drop_doomed=True)
        stream = _requests((4, 4, 4))
        warm = [scheduler.submit(h, deadline_s=100.0) for h in stream[:2]]
        scheduler.drain()  # seeds the service-time EWMA at 1.0s
        # 0.5s of slack against a ~1s estimated service: predicted to
        # miss, shed at formation, zero execution attempts spent.
        doomed = scheduler.submit(stream[2], deadline_s=0.5)
        results = scheduler.drain()
        assert isinstance(results[doomed], FailedResult)
        assert results[doomed].state is RequestState.TIMED_OUT
        assert results[doomed].attempts == 0
        stats = scheduler.stats()
        assert stats["doomed_dropped"] == 1
        assert all(isinstance(r, int) for r in warm)

    def test_drop_doomed_off_by_default_executes_late(self):
        clock = SimulatedClock()
        scheduler = _scheduler(clock=clock, service_model=lambda b: 1.0,
                               max_batch_size=2)
        stream = _requests((4, 4, 4))
        for h in stream[:2]:
            scheduler.submit(h, deadline_s=100.0)
        scheduler.drain()
        late = scheduler.submit(stream[2], deadline_s=0.5)
        results = scheduler.drain()
        # Without drop_doomed the request executes and completes late.
        assert isinstance(results[late], np.ndarray)
        assert scheduler.stats()["late_completions"] == 1
        assert scheduler.stats()["doomed_dropped"] == 0

    def test_histogram_percentiles_bound_the_data(self):
        hist = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]
        for v in values:
            hist.record(v)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["max_s"] == pytest.approx(0.1)
        assert summary["p50_s"] >= 0.05 * 0.74  # within one log bucket
        assert summary["p50_s"] <= 0.05 * 1.35
        assert summary["p99_s"] <= summary["max_s"]
        assert hist.percentile(0.0) >= 0.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_histogram_edges_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=1.0, max_s=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)

    def test_simulated_clock(self):
        clock = SimulatedClock(start=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5
        clock.advance_to(7.0)  # no going backwards
        assert clock.now() == 7.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)


# ---------------------------------------------------------------------------
# Property: goodput accounting matches the terminal-state census
# ---------------------------------------------------------------------------


class TestGoodputCensus:
    @settings(max_examples=10, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=8),
           point=st.sampled_from(["compile", "run", "demux", "admission"]),
           target=st.integers(min_value=0, max_value=7),
           deadline=st.sampled_from([None, 0.05, 1.0, 100.0]),
           seed=st.integers(min_value=0, max_value=3))
    def test_goodput_matches_census_exactly_once(self, lengths, point,
                                                 target, deadline, seed):
        clock = SimulatedClock()
        injector = FaultInjector(seed=seed)
        if point == "run":
            injector.add(point, error=ExecutionError,
                         request_id=target % len(lengths), max_fires=None)
        else:
            injector.add(point, error=ExecutionError, calls={0},
                         max_fires=1)
        scheduler = _scheduler(
            injector, clock=clock, sleeper=clock.advance,
            admission="priority_edf", max_retries=seed % 2,
            retry_backoff_s=0.01,
            service_model=lambda b: 0.01 * sum(b.padded_lengths))
        ids = [scheduler.submit(h, priority=i % 3, deadline_s=deadline)
               for i, h in enumerate(_requests(lengths, seed=seed))]
        results = scheduler.drain()

        # Exactly once: every id resolves to rows or a terminal failure.
        assert sorted(results) == sorted(ids)
        assert scheduler.pending == 0
        completed = [r for r in ids if isinstance(results[r], np.ndarray)]
        by_state = {state: 0 for state in RequestState}
        for rid in ids:
            value = results[rid]
            if isinstance(value, FailedResult):
                assert value.state.terminal
                by_state[value.state] += 1
            else:
                by_state[RequestState.COMPLETED] += 1

        stats = scheduler.stats()
        # Goodput accounting is a partition of the completions ...
        assert stats["goodput_requests"] + stats["late_completions"] \
            == len(completed)
        assert stats["num_completed"] == len(completed)
        # ... and the failure counters are a census of the terminal
        # failure states, each counted exactly once.
        assert stats["failed_requests"] == by_state[RequestState.FAILED]
        assert stats["timed_out_requests"] \
            == by_state[RequestState.TIMED_OUT]
        assert stats["rejected_requests"] \
            == by_state[RequestState.REJECTED]
        assert by_state[RequestState.COMPLETED] \
            + by_state[RequestState.FAILED] \
            + by_state[RequestState.TIMED_OUT] \
            + by_state[RequestState.REJECTED] == len(ids)
