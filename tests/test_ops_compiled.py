"""Differential tests for the executor-backed (compiled) operator library.

Every op that gains a vector backend is checked against (a) its numeric
reference implementation and (b) the scalar backend, on random ragged
batches, under both backends.
"""

import numpy as np
import pytest

from repro.core.executor import Executor
from repro.models.config import TransformerConfig
from repro.ops.attention import (
    attnv_compiled,
    attnv_slices,
    qkt_compiled,
    qkt_slices,
    sdpa_compiled,
    sdpa_slices,
    random_qkv,
)
from repro.ops.softmax import softmax_compiled, softmax_slices
from repro.ops.trmm import make_lower_triangular, trmm_compiled, trmm_reference
from repro.ops.vgemm import (
    VgemmProblem,
    random_instances,
    vgemm_compiled,
    vgemm_reference,
)

BACKENDS = ("scalar", "vector")

SMALL_CONFIG = TransformerConfig(hidden_size=8, num_heads=2, head_size=4,
                                 ff_size=16, num_layers=2)


def _allclose_lists(xs, ys, atol=1e-3):
    return all(np.allclose(x, y, atol=atol, rtol=1e-4) for x, y in zip(xs, ys))


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestVgemmCompiled:
    def test_matches_reference(self, backend):
        problem = VgemmProblem(ms=np.array([5, 3, 7, 2]),
                               ns=np.array([4, 6, 2, 5]),
                               ks=np.array([3, 5, 4, 6]))
        a_list, b_list = random_instances(problem, seed=1)
        outs, report = vgemm_compiled(a_list, b_list, backend=backend)
        assert _allclose_lists(outs, vgemm_reference(a_list, b_list))
        assert report.flops == pytest.approx(problem.ragged_flops())

    def test_scalar_and_vector_agree(self):
        problem = VgemmProblem(ms=np.array([4, 2]), ns=np.array([3, 5]),
                               ks=np.array([2, 4]))
        a_list, b_list = random_instances(problem, seed=2)
        scalar, _ = vgemm_compiled(a_list, b_list, backend="scalar")
        vector, _ = vgemm_compiled(a_list, b_list, backend="vector")
        assert _allclose_lists(scalar, vector, atol=1e-5)


class TestTrmmCompiled:
    def test_matches_reference(self, backend):
        n = 9
        lower = make_lower_triangular(n, seed=1)
        dense = np.random.default_rng(2).standard_normal((n, n)).astype(np.float32)
        out, report = trmm_compiled(lower, dense, backend=backend)
        assert np.allclose(out, trmm_reference(lower, dense), atol=1e-3)
        # Triangular flops: row r reduces over r + 1 columns.
        assert report.flops == sum(2 * n * (r + 1) for r in range(n))

    def test_scalar_and_vector_agree(self):
        n = 7
        lower = make_lower_triangular(n, seed=3)
        dense = np.random.default_rng(4).standard_normal((n, n)).astype(np.float32)
        scalar, _ = trmm_compiled(lower, dense, backend="scalar")
        vector, _ = trmm_compiled(lower, dense, backend="vector")
        assert np.allclose(scalar, vector, atol=1e-5)


class TestSoftmaxCompiled:
    def test_matches_reference(self, backend):
        rng = np.random.default_rng(5)
        scores = [rng.standard_normal((2, s, s)).astype(np.float32)
                  for s in (5, 2, 4)]
        probs, reports = softmax_compiled(scores, backend=backend)
        assert _allclose_lists(probs, softmax_slices(scores), atol=1e-4)
        assert len(reports) == 4
        for p in probs:
            assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-4)

    def test_scalar_and_vector_agree(self):
        rng = np.random.default_rng(6)
        scores = [rng.standard_normal((3, s, s)).astype(np.float32)
                  for s in (4, 3)]
        scalar, _ = softmax_compiled(scores, backend="scalar")
        vector, _ = softmax_compiled(scores, backend="vector")
        assert _allclose_lists(scalar, vector, atol=1e-5)

    def test_zero_length_sequence(self, backend):
        """A batch containing an empty sequence must not crash (the prelude
        records a (heads, 0, 0) slice shape the slice views must honour)."""
        rng = np.random.default_rng(8)
        scores = [rng.standard_normal((2, 3, 3)).astype(np.float32),
                  np.zeros((2, 0, 0), dtype=np.float32)]
        probs, _ = softmax_compiled(scores, backend=backend)
        assert probs[1].shape == (2, 0, 0)
        assert _allclose_lists(probs[:1], softmax_slices(scores[:1]), atol=1e-4)


class TestAttentionCompiled:
    def _qkv(self, lengths=(5, 3, 4)):
        return random_qkv(list(lengths), config=SMALL_CONFIG, seed=7)

    def test_qkt_matches_reference(self, backend):
        qkv = self._qkv()
        scores, _ = qkt_compiled(qkv["q"], qkv["k"], scale=0.5, backend=backend)
        refs = qkt_slices(qkv["q"], qkv["k"], scale=0.5)
        assert _allclose_lists(scores, refs)

    def test_attnv_matches_reference(self, backend):
        qkv = self._qkv()
        attn = qkt_slices(qkv["q"], qkv["k"], scale=0.5)
        out, _ = attnv_compiled(attn, qkv["v"], backend=backend)
        refs = attnv_slices(attn, qkv["v"])
        assert _allclose_lists(out, refs)

    def test_sdpa_chain_matches_reference(self, backend):
        qkv = self._qkv((4, 2, 3))
        out = sdpa_compiled(qkv["q"], qkv["k"], qkv["v"],
                            head_size=SMALL_CONFIG.head_size, backend=backend)
        refs = sdpa_slices(qkv["q"], qkv["k"], qkv["v"],
                           head_size=SMALL_CONFIG.head_size)
        assert _allclose_lists(out, refs)

    def test_sdpa_kernels_all_vectorize(self):
        qkv = self._qkv((4, 2))
        executor = Executor(backend="vector")
        sdpa_compiled(qkv["q"], qkv["k"], qkv["v"],
                      head_size=SMALL_CONFIG.head_size, executor=executor)
        assert executor.fallback_count == 0
        assert executor.vectorized_count == 6  # qkt + 4 softmax + attnv
        assert executor.codegen_stats()["fallback_reasons"] == {}

    def test_masked_sdpa_matches_reference(self, backend):
        qkv = self._qkv((5, 2, 4))
        out = sdpa_compiled(qkv["q"], qkv["k"], qkv["v"],
                            head_size=SMALL_CONFIG.head_size, backend=backend,
                            masked=True)
        refs = sdpa_slices(qkv["q"], qkv["k"], qkv["v"],
                           head_size=SMALL_CONFIG.head_size, masked=True)
        assert _allclose_lists(out, refs)

    def test_masked_sdpa_kernels_all_vectorize(self):
        """Acceptance: zero fallbacks on the masked encoder SDPA chain."""
        qkv = self._qkv((5, 3))
        executor = Executor(backend="vector")
        sdpa_compiled(qkv["q"], qkv["k"], qkv["v"],
                      head_size=SMALL_CONFIG.head_size, executor=executor,
                      masked=True)
        assert executor.fallback_count == 0
        # qkt + mask + 4 softmax + attnv
        assert executor.vectorized_count == 7

    def test_split_attnv_matches_plain(self):
        from repro.ops.attention import attnv_split_compiled

        qkv = self._qkv((5, 3, 4))
        attn = qkt_slices(qkv["q"], qkv["k"], scale=0.5)
        refs = attnv_slices(attn, qkv["v"])
        for remap in (False, True):
            executor = Executor(backend="vector")
            out, _ = attnv_split_compiled(attn, qkv["v"], tile=2,
                                          executor=executor, remap=remap)
            assert _allclose_lists(out, refs)
            assert executor.fallback_count == 0

    def test_split_attnv_scalar_and_vector_agree(self):
        from repro.ops.attention import attnv_split_compiled

        qkv = self._qkv((5, 2, 3))
        attn = qkt_slices(qkv["q"], qkv["k"], scale=0.5)
        scalar, _ = attnv_split_compiled(attn, qkv["v"], tile=4,
                                         backend="scalar")
        vector, _ = attnv_split_compiled(attn, qkv["v"], tile=4,
                                         backend="vector")
        assert _allclose_lists(scalar, vector, atol=1e-5)


class TestEncoderLayerBackend:
    def test_compiled_attention_matches_numeric(self):
        from repro.models.transformer import (
            EncoderWeights,
            run_encoder_layer_numeric,
            run_encoder_layer_opbyop,
        )

        weights = EncoderWeights.random(SMALL_CONFIG, seed=0)
        rng = np.random.default_rng(1)
        hidden = [rng.standard_normal((s, SMALL_CONFIG.hidden_size))
                  .astype(np.float32) for s in (5, 3, 4)]
        # The pure-NumPy op-by-op path stays the differential oracle; the
        # session-backed path is compared against it for both backends.
        ref = run_encoder_layer_opbyop(hidden, weights, SMALL_CONFIG)
        for backend in BACKENDS:
            got = run_encoder_layer_numeric(hidden, weights, SMALL_CONFIG,
                                            backend=backend)
            assert _allclose_lists(got.hidden, ref.hidden)

    def test_masked_encoder_layer_matches_numeric(self):
        """run_encoder_layer_numeric(masked=True, backend=...) end to end."""
        from repro.models.transformer import (
            EncoderWeights,
            run_encoder_layer_numeric,
            run_encoder_layer_opbyop,
        )

        weights = EncoderWeights.random(SMALL_CONFIG, seed=0)
        rng = np.random.default_rng(2)
        hidden = [rng.standard_normal((s, SMALL_CONFIG.hidden_size))
                  .astype(np.float32) for s in (5, 3, 4)]
        ref = run_encoder_layer_opbyop(hidden, weights, SMALL_CONFIG,
                                       masked=True)
        for backend in BACKENDS:
            got = run_encoder_layer_numeric(hidden, weights, SMALL_CONFIG,
                                            masked=True, backend=backend)
            assert _allclose_lists(got.hidden, ref.hidden)

    def test_masked_encoder_layer_zero_fallbacks(self):
        from repro.models.transformer import (
            EncoderWeights,
            run_encoder_layer_numeric,
        )

        weights = EncoderWeights.random(SMALL_CONFIG, seed=0)
        rng = np.random.default_rng(3)
        hidden = [rng.standard_normal((s, SMALL_CONFIG.hidden_size))
                  .astype(np.float32) for s in (4, 2)]
        executor = Executor(backend="vector")
        run_encoder_layer_numeric(hidden, weights, SMALL_CONFIG, masked=True,
                                  executor=executor)
        stats = executor.codegen_stats()
        assert stats["fallbacks"] == 0, stats["fallback_reasons"]
        assert stats["vectorized"] == 7
