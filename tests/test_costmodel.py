"""Tests for the simulated devices and the analytical cost model."""

import numpy as np
import pytest

from repro.substrates.costmodel import (
    CostModel,
    KernelLaunch,
    Workload,
    gemm_flops,
    layernorm_flops,
    rank_workloads,
    softmax_flops,
)
from repro.substrates.device import arm_cpu_8core, arm_cpu_64core, intel_cpu, v100_gpu


def launch(flops=1e9, **kw):
    defaults = dict(name="k", flops=flops, bytes_moved=flops / 100.0,
                    parallel_tasks=1 << 20)
    defaults.update(kw)
    return KernelLaunch(**defaults)


class TestDevices:
    def test_presets_sane(self):
        gpu, cpu = v100_gpu(), intel_cpu()
        assert gpu.is_gpu and not cpu.is_gpu
        assert gpu.peak_gflops > cpu.peak_gflops
        assert gpu.parallel_units > 1

    def test_arm_thread_scaling(self):
        assert arm_cpu_64core().peak_gflops > arm_cpu_8core().peak_gflops
        assert arm_cpu_64core(threads=16).parallel_units == 16

    def test_copy_time_zero_on_cpu(self):
        assert intel_cpu().copy_time(1 << 20) == 0.0
        assert v100_gpu().copy_time(1 << 20) > 0.0

    def test_efficiency_classes_ordered(self):
        gpu = v100_gpu()
        assert gpu.efficiency_of("vendor") >= gpu.efficiency_of("handopt")
        assert gpu.efficiency_of("handopt") >= gpu.efficiency_of("compiler")


class TestKernelSeconds:
    def test_monotone_in_flops(self):
        model = CostModel(v100_gpu())
        assert model.kernel_seconds(launch(2e9)) > model.kernel_seconds(launch(1e9))

    def test_memory_bound_kernel(self):
        model = CostModel(v100_gpu())
        small_compute = launch(flops=1e3, bytes_moved=1e9)
        t = model.kernel_seconds(small_compute, include_launch=False)
        assert t == pytest.approx(1e9 / (900.0 * 1e9))

    def test_launch_overhead_only_on_gpu(self):
        gpu = CostModel(v100_gpu())
        cpu = CostModel(intel_cpu())
        k = launch(flops=1.0, bytes_moved=1.0)
        assert gpu.kernel_seconds(k) >= 6e-6
        # CPUs pay no kernel-launch overhead, only the (smaller) thread-pool
        # fork/join cost.
        cpu_dev = intel_cpu()
        expected_sync = cpu_dev.sync_overhead_us_per_unit * cpu_dev.parallel_units * 1e-6
        assert cpu.kernel_seconds(k) == pytest.approx(expected_sync, rel=0.05)

    def test_low_occupancy_penalised(self):
        model = CostModel(v100_gpu())
        full = launch(parallel_tasks=10_000)
        narrow = launch(parallel_tasks=4)
        assert model.kernel_seconds(narrow) > model.kernel_seconds(full)

    def test_indirect_access_overhead(self):
        model = CostModel(v100_gpu())
        plain = launch()
        indirect = launch(indirect_access_overhead=0.5)
        ratio = (model.kernel_seconds(indirect, include_launch=False)
                 / model.kernel_seconds(plain, include_launch=False))
        assert ratio == pytest.approx(1.5, rel=0.05)

    def test_balanced_beats_unbalanced(self):
        """Thread remapping (heavy tasks first) reduces the finish time."""
        model = CostModel(v100_gpu())
        rng = np.random.default_rng(0)
        work = rng.integers(1, 1000, size=200).astype(float)
        # Adversarial order: heaviest tasks last.
        work_sorted_asc = np.sort(work)
        balanced = launch(flops=work.sum(), task_work=work_sorted_asc, balanced=True,
                          parallel_tasks=work.size)
        unbalanced = launch(flops=work.sum(), task_work=work_sorted_asc, balanced=False,
                            parallel_tasks=work.size)
        assert (model.kernel_seconds(balanced, include_launch=False)
                <= model.kernel_seconds(unbalanced, include_launch=False))

    def test_task_work_subsumes_occupancy(self):
        """Few huge tasks cannot use the whole device."""
        model = CostModel(v100_gpu())
        work = np.array([1e9, 1e9])
        k = launch(flops=2e9, task_work=work, parallel_tasks=2)
        dense = launch(flops=2e9)
        assert model.kernel_seconds(k) > model.kernel_seconds(dense)


class TestWorkloads:
    def test_total_is_sum_plus_overheads(self):
        model = CostModel(v100_gpu())
        wl = Workload(name="w", kernels=[launch(), launch()], h2d_bytes=1 << 20,
                      prelude_time_s=1e-3)
        breakdown = model.evaluate(wl)
        assert breakdown.total_s > 2 * model.kernel_seconds(launch(), include_launch=False)
        assert breakdown.copy_s > 0
        assert breakdown.prelude_s == pytest.approx(1e-3)

    def test_dispatch_overhead_scales_with_kernels(self):
        model = CostModel(intel_cpu())
        wl2 = Workload(name="w", kernels=[launch(1e6), launch(1e6)],
                       dispatch_overhead_us=10.0)
        wl4 = Workload(name="w", kernels=[launch(1e6)] * 4,
                       dispatch_overhead_us=10.0)
        assert model.evaluate(wl4).dispatch_s > model.evaluate(wl2).dispatch_s

    def test_hfusion_saves_launches_and_hides_short_kernel(self):
        model = CostModel(v100_gpu())
        big = launch(flops=5e9, parallel_tasks=40, name="big")
        small = launch(flops=1e8, parallel_tasks=10, name="small")
        separate = Workload(name="sep", kernels=[big, small])
        fused_big = launch(flops=5e9, parallel_tasks=40, name="big", hfused_with="g")
        fused_small = launch(flops=1e8, parallel_tasks=10, name="small", hfused_with="g")
        fused = Workload(name="fused", kernels=[fused_big, fused_small])
        assert model.latency_ms(fused) < model.latency_ms(separate)

    def test_hfusion_no_gain_on_cpu(self):
        model = CostModel(arm_cpu_64core())
        a = launch(flops=5e9, parallel_tasks=400, name="a")
        b = launch(flops=5e9, parallel_tasks=400, name="b")
        separate = Workload(name="sep", kernels=[a, b])
        fa = launch(flops=5e9, parallel_tasks=400, name="a", hfused_with="g")
        fb = launch(flops=5e9, parallel_tasks=400, name="b", hfused_with="g")
        fused = Workload(name="fused", kernels=[fa, fb])
        assert model.latency_ms(fused) == pytest.approx(model.latency_ms(separate), rel=1e-6)

    def test_per_kernel_breakdown_keys(self):
        model = CostModel(v100_gpu())
        wl = Workload(name="w", kernels=[launch(name="x"), launch(name="y")])
        breakdown = model.evaluate(wl)
        assert set(breakdown.per_kernel_s) == {"x", "y"}

    def test_workload_totals(self):
        wl = Workload(name="w", kernels=[launch(1e6), launch(2e6)])
        assert wl.total_flops() == pytest.approx(3e6)
        assert wl.total_bytes() > 0


class TestTunerMonotonicity:
    """The monotone relationships the autotuner's analytical pruning
    stage (:func:`rank_workloads`) relies on: skewing per-task work at
    constant total raises latency, exposing more parallelism never
    raises it, and fewer launches (horizontal fusion) lowers it."""

    def test_more_imbalance_higher_latency(self):
        model = CostModel(intel_cpu())
        total = 1.6e9
        even = np.full(160, total / 160)
        # Same total work concentrated on a handful of tasks.
        skewed = np.zeros(160)
        skewed[:4] = total / 4
        t_even = model.kernel_seconds(
            launch(flops=total, task_work=even, parallel_tasks=160,
                   balanced=False), include_launch=False)
        t_skewed = model.kernel_seconds(
            launch(flops=total, task_work=skewed, parallel_tasks=160,
                   balanced=False), include_launch=False)
        assert t_skewed > t_even

    def test_imbalance_monotone_in_skew(self):
        """Progressively steeper work distributions never get faster."""
        model = CostModel(v100_gpu())
        total = 8e9
        n = 320
        times = []
        for alpha in (0.0, 0.5, 1.0, 2.0, 4.0):
            work = np.linspace(1.0, 1.0 + alpha, n)
            work = work / work.sum() * total
            times.append(model.kernel_seconds(
                launch(flops=total, task_work=work, parallel_tasks=n,
                       balanced=False), include_launch=False))
        assert all(b >= a * (1 - 1e-12)
                   for a, b in zip(times, times[1:]))

    def test_latency_non_increasing_in_parallel_tasks(self):
        model = CostModel(v100_gpu())
        times = [model.kernel_seconds(launch(parallel_tasks=p),
                                      include_launch=False)
                 for p in (1, 4, 16, 64, 80, 1024)]
        assert all(b <= a for a, b in zip(times, times[1:]))

    def test_fewer_launches_lower_latency(self):
        """Splitting one kernel's work across N launches costs (N-1)
        extra launch overheads on the GPU."""
        model = CostModel(v100_gpu())
        one = Workload(name="one", kernels=[launch(flops=4e9)])
        four = Workload(name="four", kernels=[
            launch(flops=1e9, bytes_moved=1e9 / 100.0, name=f"k{i}")
            for i in range(4)])
        assert model.evaluate(four).launch_s > model.evaluate(one).launch_s
        assert model.latency_ms(four) > model.latency_ms(one)

    def test_launch_seconds_counts_groups(self):
        """launch_s is exactly n_groups x launch_overhead_us."""
        device = v100_gpu()
        model = CostModel(device)
        fused = Workload(name="f", kernels=[
            launch(name="a", hfused_with="g"),
            launch(name="b", hfused_with="g"),
            launch(name="c"),
        ])
        assert model.evaluate(fused).launch_s == pytest.approx(
            2 * device.launch_overhead_us * 1e-6)

    def test_rank_workloads_orders_by_latency(self):
        device = v100_gpu()
        slow = Workload(name="slow", kernels=[launch(8e9)])
        fast = Workload(name="fast", kernels=[launch(1e9)])
        mid = Workload(name="mid", kernels=[launch(4e9)])
        order = rank_workloads([slow, fast, mid], device)
        assert order == [1, 2, 0]

    def test_rank_workloads_stable_on_ties(self):
        device = intel_cpu()
        same = [Workload(name=f"w{i}", kernels=[launch(1e9)])
                for i in range(4)]
        assert rank_workloads(same, device) == [0, 1, 2, 3]

    def test_rank_workloads_default_device(self):
        order = rank_workloads([Workload(name="a", kernels=[launch(2e9)]),
                                Workload(name="b", kernels=[launch(1e9)])])
        assert order == [1, 0]


class TestFlopHelpers:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_softmax_and_layernorm_positive(self):
        assert softmax_flops(10, 20) > 0
        assert layernorm_flops(10, 20) > 0
