"""End-to-end tests: schedule -> lowering -> generated Python kernel -> results."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.errors import ExecutionError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.executor import Executor
from repro.core.ir import LoopVar, exp, relu
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout

LENGTHS = np.array([5, 2, 3])


def elementwise_setup():
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                 lambda o, i: 2.0 * A[o, i])
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
    data = RaggedTensor.random(layout, seed=1)
    return op, batch, seq, data


class TestElementwise:
    def test_plain_schedule_correct(self):
        op, batch, seq, data = elementwise_setup()
        out, report = Executor().build_and_run(Schedule(op), {"A": data})
        assert all(np.allclose(out.valid_slice(b), 2 * data.valid_slice(b))
                   for b in range(3))
        assert report.flops > 0

    def test_padding_waste_reported(self):
        op, batch, seq, data = elementwise_setup()
        _, report = Executor().build_and_run(Schedule(op), {"A": data})
        # ragged flops = 10 points, dense = 15 points
        assert report.padding_waste == pytest.approx(1.5)

    def test_generated_source_has_no_guard_for_plain_loops(self):
        op, batch, seq, data = elementwise_setup()
        compiled = Executor().compile(Schedule(op))
        assert "if " not in compiled.source

    def test_missing_input_raises(self):
        op, batch, seq, data = elementwise_setup()
        compiled = Executor().compile(Schedule(op))
        with pytest.raises(ExecutionError):
            Executor().run(compiled, {})

    def test_wrong_size_input_raises(self):
        op, batch, seq, data = elementwise_setup()
        compiled = Executor().compile(Schedule(op))
        with pytest.raises(ExecutionError):
            Executor().run(compiled, {"A": np.zeros(3, dtype=np.float32)})


class TestFusedAndPadded:
    def test_fused_loop_kernel_correct(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        out, _ = Executor().build_and_run(sch, {"A": data})
        assert out.allclose(RaggedTensor(data.layout, 2 * data.data))

    def test_fused_source_uses_fusion_maps(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        compiled = Executor().compile(sch)
        assert "ffo" in compiled.source
        assert "row" in compiled.source

    def test_padded_fused_kernel_correct(self):
        op, batch, seq, _ = elementwise_setup()
        sch = Schedule(op)
        sch.pad_loop(seq, 2)
        sch.pad_dimension(seq, 4)
        sch.pad_input_dimension("A", seq, 2)
        sch.fuse_loops(batch, seq)
        compiled = Executor().compile(sch)
        padded_layout = RaggedLayout(
            [op.dims[0], op.dims[1]],
            [ConstExtent(3), VarExtent(op.dims[0], LENGTHS)],
            storage_padding={op.dims[1]: 2},
        )
        data = RaggedTensor.random(padded_layout, seed=3)
        out, _ = Executor().run(compiled, {"A": data})
        for b in range(3):
            valid = int(LENGTHS[b])
            assert np.allclose(out.valid_slice(b)[:valid],
                               2 * data.valid_slice(b)[:valid])

    def test_fused_dims_store_uses_flat_index(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        sch.fuse_dimensions(batch, seq)
        compiled = Executor().compile(sch)
        out, _ = Executor().run(compiled, {"A": data})
        # The output layout is flat; compare against the packed input.
        assert np.allclose(out.data, 2 * data.data)


class TestSplitAndRemap:
    def test_split_vloop_kernel_correct(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.split(seq, 4)
        out, _ = Executor().build_and_run(sch, {"A": data})
        assert out.allclose(RaggedTensor(data.layout, 2 * data.data))

    def test_split_scalar_source_contains_guard(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.split(seq, 4)
        compiled = Executor(backend="scalar").compile(sch)
        assert "if " in compiled.source

    def test_split_vector_source_has_no_guard(self):
        """The vector backend turns the guard into a trailing slice."""
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.split(seq, 4)
        compiled = Executor(backend="vector").compile(sch)
        assert compiled.backend_name == "vector"
        assert "if " not in compiled.source

    def test_thread_remap_preserves_results(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.parallel(batch)
        sch.thread_remap(batch, "sort_desc")
        out, _ = Executor().build_and_run(sch, {"A": data})
        assert all(np.allclose(out.valid_slice(b), 2 * data.valid_slice(b))
                   for b in range(3))

    def test_remap_source_indexes_permutation(self):
        op, batch, seq, data = elementwise_setup()
        sch = Schedule(op)
        sch.thread_remap(batch, "sort_desc")
        compiled = Executor().compile(sch)
        assert "remap" in compiled.source


class TestReductionsAndIntrinsics:
    def test_ragged_matmul(self):
        batch, seq, j, h = Dim("batch"), Dim("seq"), Dim("j"), Dim("h")
        lens = np.array([4, 2, 3])
        A = input_tensor("A", [batch, seq, h],
                         [ConstExtent(3), VarExtent(batch, lens), ConstExtent(6)])
        W = input_tensor("W", [Dim("k_in"), j], [ConstExtent(6), ConstExtent(5)])
        k = reduce_axis(6, "k")
        op = compute("C", [batch, seq, j],
                     [ConstExtent(3), VarExtent(batch, lens), ConstExtent(5)],
                     lambda b, i, jj: sum_reduce(
                         A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
        layout_a = RaggedLayout([batch, seq, h],
                                [ConstExtent(3), VarExtent(batch, lens), ConstExtent(6)])
        ta = RaggedTensor.random(layout_a, seed=2)
        w = np.random.default_rng(5).standard_normal((6, 5)).astype(np.float32)
        out, report = Executor().build_and_run(Schedule(op), {"A": ta, "W": w})
        for b in range(3):
            ref = ta.valid_slice(b) @ w
            assert np.allclose(out.valid_slice(b), ref, atol=1e-4)
        assert report.flops > report.dense_flops * 0.5

    def test_variable_reduction_triangular(self):
        """The reduction bound is a function of the row index (trmm-style)."""
        row, col = Dim("row"), Dim("col")
        n = 6
        L = input_tensor("L", [row, Dim("rk")], [ConstExtent(n), ConstExtent(n)])
        B = input_tensor("Bm", [Dim("rk2"), col], [ConstExtent(n), ConstExtent(n)])
        k = reduce_axis(VarExtent(row, lambda r: r + 1), "k")
        op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                     lambda r, c: sum_reduce(
                         L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))
        rng = np.random.default_rng(0)
        lower = np.tril(rng.standard_normal((n, n))).astype(np.float32)
        dense = rng.standard_normal((n, n)).astype(np.float32)
        out, _ = Executor().build_and_run(Schedule(op), {"L": lower, "Bm": dense})
        ref = lower @ dense
        assert np.allclose(out.to_dense(), ref, atol=1e-4)

    def test_intrinsics_exp_relu(self):
        batch, seq = Dim("batch"), Dim("seq")
        lens = np.array([3, 2])
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(2), VarExtent(batch, lens)])
        op = compute("E", [batch, seq],
                     [ConstExtent(2), VarExtent(batch, lens)],
                     lambda o, i: exp(A[o, i]) + relu(A[o, i] - 1.0))
        layout = RaggedLayout([batch, seq], [ConstExtent(2), VarExtent(batch, lens)])
        data = RaggedTensor.random(layout, seed=9)
        out, _ = Executor().build_and_run(Schedule(op), {"A": data})
        for b in range(2):
            v = data.valid_slice(b)
            ref = np.exp(v) + np.maximum(v - 1.0, 0.0)
            assert np.allclose(out.valid_slice(b), ref, atol=1e-4)

    def test_device_latency_reported_when_device_given(self):
        from repro.substrates.device import v100_gpu

        op, batch, seq, data = elementwise_setup()
        _, report = Executor(device=v100_gpu()).build_and_run(Schedule(op), {"A": data})
        assert report.device_latency_s is not None
        assert report.device_latency_s > 0
