"""Planner-level fusion and the persistent AOT cache.

Two claims are proven here, mirroring the fusion issue's acceptance
criteria:

* ``plan_program(fuse=True)`` executes the encoder with far fewer kernel
  dispatches and a smaller arena, **bit-identically** to the unfused
  plan -- over random ragged batches, masked and unmasked, stack depths
  {1, 2, 4}, on the vector backend (zero fused-emission fallbacks) and
  on the scalar backend (grouped fallback).
* With a warm ``Session(disk_cache=...)`` a *fresh process* rebuilds a
  previously-seen (program, signature) pair with ``lower_count == 0``,
  and the cache degrades safely: corrupt entries are misses, callables
  are :class:`Uncacheable` and skip the disk tier, fingerprints are
  stable across independently built schedules.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aotcache import (
    AOTCache,
    Uncacheable,
    kernel_cache_key,
    stable_schedule_fingerprint,
)
from repro.core.dims import Dim
from repro.core.executor import Executor
from repro.core.extents import ConstExtent, VarExtent
from repro.core.fusion import FusedKernelNode
from repro.core.operator import compute, input_tensor
from repro.core.planner import plan_program
from repro.core.schedule import Schedule
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_program,
    build_encoder_stack_program,
)

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

LENGTHS = (5, 3, 7, 2)


def _tokens(lengths, seed=2, config=SMALL):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (sum(lengths), config.hidden_size)).astype(np.float32)


def _program(lengths, weights, masked, depth):
    if depth == 1:
        return build_encoder_program(lengths, weights, SMALL, masked=masked)
    return build_encoder_stack_program(lengths, weights, SMALL,
                                       masked=masked, n_layers=depth)


def _run_pair(program, tokens, backend="vector"):
    base = Session(backend=backend, executor=Executor(backend=backend))
    fused = Session(backend=backend, executor=Executor(backend=backend),
                    fuse=True)
    out_base = base.run(program, {"tokens": tokens})
    out_fused = fused.run(program, {"tokens": tokens})
    return base, fused, out_base, out_fused


# ---------------------------------------------------------------------------
# The fusion pass and its plan-level effects
# ---------------------------------------------------------------------------


class TestFusionPlan:
    def test_masked_layer_dispatch_reduction_and_arena_shrink(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        base, fused, out_base, out_fused = _run_pair(program,
                                                     _tokens(LENGTHS))
        cp_base = base.compiled_program(program)
        cp_fused = fused.compiled_program(program)
        # >= 30% fewer kernel dispatches is the acceptance floor; the
        # masked softmax chain + epilogues actually fuse 7 -> 1.
        assert cp_fused.kernel_dispatches <= 0.7 * cp_base.kernel_dispatches
        assert cp_fused.arena_bytes < cp_base.arena_bytes
        assert len(cp_fused.plan.order) < len(cp_base.plan.order)
        summary = cp_fused.fusion_summary()
        assert summary["regions"] >= 1
        assert summary["dispatches_eliminated"] >= 6
        assert cp_base.fusion_summary() is None
        for k in out_base:
            assert np.array_equal(np.asarray(out_base[k]),
                                  np.asarray(out_fused[k]))

    def test_zero_vector_fallbacks_on_fused_chains(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        for masked in (False, True):
            program = build_encoder_program(LENGTHS, weights, SMALL,
                                            masked=masked)
            _, fused, _, _ = _run_pair(program, _tokens(LENGTHS))
            stats = fused.executor.codegen_stats()
            assert stats["fused_regions"] >= 1
            assert stats["fused_fallbacks"] == 0, \
                stats["fused_fallback_reasons"]

    def test_unfused_plan_is_default_and_unchanged(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        plan = plan_program(program)
        assert plan.fused_program is None
        fused_plan = plan_program(program, fuse=True)
        assert fused_plan.fused_program is not None
        assert any(isinstance(n, FusedKernelNode)
                   for n in fused_plan.fused_program.nodes)
        assert fused_plan.fusion.regions >= 1

    def test_compiled_stats_report_fusion_counters(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        _, fused, _, _ = _run_pair(program, _tokens(LENGTHS))
        stats = fused.compiled_program(program).stats()
        assert stats["fused_kernels"] >= 1
        assert stats["kernel_dispatches"] == \
            fused.compiled_program(program).kernel_dispatches
        session_stats = fused.stats()
        assert session_stats["fuse"] is True


# ---------------------------------------------------------------------------
# Differential: fused == unfused bit for bit
# ---------------------------------------------------------------------------


class TestFusedDifferential:
    @settings(max_examples=15, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=5),
           masked=st.booleans(),
           depth=st.sampled_from([1, 2, 4]))
    def test_fused_bit_identical_over_random_batches(self, lengths, masked,
                                                     depth):
        lengths = tuple(lengths)
        weights = EncoderWeights.random(SMALL, seed=7)
        program = _program(lengths, weights, masked, depth)
        _, fused, out_base, out_fused = _run_pair(
            program, _tokens(lengths, seed=9))
        assert set(out_base) == set(out_fused)
        for k in out_base:
            assert np.array_equal(np.asarray(out_base[k]),
                                  np.asarray(out_fused[k])), (
                lengths, masked, depth, k)
        assert fused.executor.codegen_stats()["fused_fallbacks"] == 0

    def test_inplace_fused_bit_identical(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        tokens = _tokens(LENGTHS)
        ref = Session(backend="vector", executor=Executor(backend="vector"))
        ip = Session(backend="vector", executor=Executor(backend="vector"),
                     fuse=True, inplace=True)
        out_ref = ref.run(program, {"tokens": tokens})
        out_ip = ip.run(program, {"tokens": tokens})
        for k in out_ref:
            assert np.array_equal(np.asarray(out_ref[k]),
                                  np.asarray(out_ip[k]))

    def test_scalar_backend_uses_grouped_fallback_bit_identically(self):
        weights = EncoderWeights.random(SMALL, seed=0)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        tokens = _tokens(LENGTHS)
        _, fused, out_base, out_fused = _run_pair(program, tokens,
                                                  backend="scalar")
        stats = fused.executor.codegen_stats()
        assert stats["fused_fallbacks"] >= 1
        for k in out_base:
            assert np.array_equal(np.asarray(out_base[k]),
                                  np.asarray(out_fused[k]))


# ---------------------------------------------------------------------------
# Persistent AOT cache
# ---------------------------------------------------------------------------


class TestAOTCache:
    def test_second_session_compiles_with_zero_lowers(self, tmp_path):
        weights = EncoderWeights.random(SMALL, seed=0)
        tokens = _tokens(LENGTHS)
        s1 = Session(backend="vector", disk_cache=str(tmp_path), fuse=True)
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        out1 = s1.run(program, {"tokens": tokens}, signature=LENGTHS)
        assert s1.executor.lower_count > 0
        st1 = s1.stats()
        assert st1["cold_compiles"] == 1 and st1["disk_hits"] == 0
        assert st1["signature_misses"] == 1

        # A brand-new session + private executor + *independently built*
        # program: everything in-memory is cold, only the disk is warm.
        s2 = Session(backend="vector", disk_cache=str(tmp_path), fuse=True)
        program2 = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        out2 = s2.run(program2, {"tokens": tokens}, signature=LENGTHS)
        assert s2.executor.lower_count == 0
        st2 = s2.stats()
        assert st2["cold_compiles"] == 0 and st2["disk_hits"] == 1
        # a disk-served compile counts as a signature HIT, not a miss
        assert st2["signature_hits"] == 1 and st2["signature_misses"] == 0
        for k in out1:
            assert np.array_equal(np.asarray(out1[k]), np.asarray(out2[k]))

    def test_corrupt_entries_degrade_to_misses(self, tmp_path):
        weights = EncoderWeights.random(SMALL, seed=0)
        tokens = _tokens(LENGTHS)
        s1 = Session(backend="vector", disk_cache=str(tmp_path))
        program = build_encoder_program(LENGTHS, weights, SMALL, masked=True)
        out1 = s1.run(program, {"tokens": tokens})
        entries = list(tmp_path.glob("kernels/*/*.pkl"))
        assert entries
        for i, path in enumerate(entries):
            # truncation and garbage, the two real-world corruption modes
            path.write_bytes(b"" if i % 2 == 0 else b"\x80garbage")
        s2 = Session(backend="vector", disk_cache=str(tmp_path))
        out2 = s2.run(build_encoder_program(LENGTHS, weights, SMALL,
                                            masked=True), {"tokens": tokens})
        assert s2.executor.lower_count > 0  # recompiled, no crash
        assert s2.executor.disk_cache.misses >= len(entries)
        for k in out1:
            assert np.array_equal(np.asarray(out1[k]), np.asarray(out2[k]))

    def test_callable_extents_are_uncacheable_but_still_compile(self, tmp_path):
        batch, seq = Dim("batch"), Dim("seq")
        table = np.array([5, 2, 3])
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(3), VarExtent(batch, lambda i: table[i])])
        op = compute("B", [batch, seq],
                     [ConstExtent(3), VarExtent(batch, lambda i: table[i])],
                     lambda o, i: 2.0 * A[o, i])
        with pytest.raises(Uncacheable):
            stable_schedule_fingerprint(Schedule(op))
        executor = Executor(backend="vector", disk_cache=str(tmp_path))
        executor.compile(Schedule(op))  # skips the disk tier, no error
        assert executor.disk_cache.stores == 0
        assert executor.lower_count == 1

    def test_fingerprint_stable_across_independent_builds(self):
        def build():
            batch, seq = Dim("batch"), Dim("seq")
            A = input_tensor("A", [batch, seq],
                             [ConstExtent(3), VarExtent(batch, [5, 2, 3])])
            op = compute("B", [batch, seq],
                         [ConstExtent(3), VarExtent(batch, [5, 2, 3])],
                         lambda o, i: 2.0 * A[o, i])
            return Schedule(op)

        key_a = kernel_cache_key(build(), None, "vector")
        key_b = kernel_cache_key(build(), None, "vector")
        assert key_a == key_b  # Dim identities canonicalised away
        assert kernel_cache_key(build(), None, "scalar") != key_a
        padded = build()
        padded.pad_dimension(padded.operator.dims[1], 4)
        assert kernel_cache_key(padded, None, "vector") != key_a

    def test_store_failures_never_raise(self, tmp_path):
        cache = AOTCache(tmp_path / "not-writable" / "x")
        os.makedirs(tmp_path / "not-writable", mode=0o500, exist_ok=True)
        executor = Executor(backend="vector", disk_cache=cache)
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(3), VarExtent(batch, [5, 2, 3])])
        op = compute("B", [batch, seq],
                     [ConstExtent(3), VarExtent(batch, [5, 2, 3])],
                     lambda o, i: 2.0 * A[o, i])
        executor.compile(Schedule(op))  # store fails silently
        if os.getuid() != 0:  # root ignores mode bits; only assert non-root
            assert cache.store_failures >= 1


# ---------------------------------------------------------------------------
# Cross-process: a fresh interpreter with a warm cache lowers nothing
# ---------------------------------------------------------------------------


_CHILD = textwrap.dedent("""
    import sys
    import numpy as np
    from repro.core.session import Session
    from repro.models.config import TransformerConfig
    from repro.models.transformer import EncoderWeights, build_encoder_program

    cfg = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                            ff_size=32, num_layers=2, loop_pad=4, bulk_pad=8,
                            attention_tile=8)
    lengths = (5, 3, 7, 2)
    w = EncoderWeights.random(cfg, seed=0)
    program = build_encoder_program(lengths, w, cfg, masked=True)
    session = Session(backend="vector", disk_cache=sys.argv[1], fuse=True)
    rng = np.random.default_rng(2)
    tokens = rng.standard_normal((sum(lengths), cfg.hidden_size)) \\
        .astype(np.float32)
    out = session.run(program, {"tokens": tokens}, signature=lengths)
    print("LOWERS", session.executor.lower_count)
    np.save(sys.argv[2], np.asarray(out["out_tokens"]))
""")


class TestCrossProcessWarmCache:
    def test_fresh_process_lowers_zero_kernels(self, tmp_path):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        lowers = []
        outputs = []
        for i in range(2):
            out_npy = tmp_path / f"out{i}.npy"
            result = subprocess.run(
                [sys.executable, "-c", _CHILD, str(tmp_path / "cache"),
                 str(out_npy)],
                env=env, capture_output=True, text=True, timeout=120)
            assert result.returncode == 0, result.stderr
            line = [ln for ln in result.stdout.splitlines()
                    if ln.startswith("LOWERS ")][0]
            lowers.append(int(line.split()[1]))
            outputs.append(np.load(out_npy))
        assert lowers[0] > 0  # cold process really lowered
        assert lowers[1] == 0  # warm process served fully from disk
        assert np.array_equal(outputs[0], outputs[1])


# ---------------------------------------------------------------------------
# Serving + engine integration
# ---------------------------------------------------------------------------


class TestFusionIntegration:
    def test_scheduler_surfaces_fusion_stats_per_signature(self):
        from repro.serving.scheduler import BatchScheduler

        weights = EncoderWeights.random(SMALL, seed=3)
        session = Session(backend="vector",
                          executor=Executor(backend="vector"), fuse=True)
        scheduler = BatchScheduler(weights, SMALL, session=session,
                                   masked=True, n_layers=2, max_batch_size=4,
                                   bucket_tolerance=2)
        rng = np.random.default_rng(5)
        for n in (5, 3, 7, 2, 6, 4):
            scheduler.submit(rng.standard_normal(
                (n, SMALL.hidden_size)).astype(np.float32))
        scheduler.drain()
        stats = scheduler.stats(include_fusion=True)
        assert stats["fuse"] is True
        assert stats["fusion_by_signature"]
        for info in stats["fusion_by_signature"].values():
            assert info["fusion"]["regions"] >= 1
            assert info["kernel_dispatches"] < info["fusion"]["nodes_fused"]

    def test_process_pool_runs_fused_programs_bit_identically(self, tmp_path):
        from repro.core.engine import ProcessPoolEngine
        from repro.models.transformer import encoder_stack_program

        weights = EncoderWeights.random(SMALL, seed=3)
        tokens = _tokens(LENGTHS, seed=11)
        engine = ProcessPoolEngine(max_workers=2)
        try:
            ref = Session(backend="vector", engine="serial")
            p_ref = encoder_stack_program(LENGTHS, weights, SMALL,
                                          masked=True, n_layers=2,
                                          session=ref)
            out_ref = ref.run(p_ref, {"tokens": tokens})

            fused = Session(backend="vector", engine=engine, fuse=True,
                            disk_cache=str(tmp_path))
            p_fused = encoder_stack_program(LENGTHS, weights, SMALL,
                                            masked=True, n_layers=2,
                                            session=fused)
            for _ in range(2):  # install + warm re-run
                out_fused = fused.run(p_fused, {"tokens": tokens})
                for k in out_ref:
                    assert np.array_equal(np.asarray(out_ref[k]),
                                          np.asarray(out_fused[k]))
            ref.close()
            fused.close()
        finally:
            engine.close()
