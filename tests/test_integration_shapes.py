"""Integration tests asserting the *shape* of the paper's headline results.

These tests run the same workload builders the benchmark harness uses and
check the qualitative claims of the evaluation section: who wins, by roughly
what factor, and where crossovers fall.  Absolute latencies are simulated
and not expected to match the paper.
"""

import numpy as np
import pytest

from repro.baselines.microbatch import microbatched_latency
from repro.core.prelude import PreludeBuilder, build_sparse_scheme_aux
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.storage import RaggedLayout
from repro.data.datasets import dataset_names, sample_lengths
from repro.models.transformer import encoder_layer_workload, mha_workload
from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_64core, v100_gpu


def geomean(values):
    return float(np.exp(np.mean(np.log(values))))


class TestHeadlineResults:
    def test_encoder_speedup_over_pytorch_on_gpu(self):
        """Abstract: ~1.6x geomean speedup over PyTorch on the GPU."""
        model = CostModel(v100_gpu())
        speedups = []
        for ds in dataset_names():
            for bs in (32, 64, 128):
                lengths = sample_lengths(ds, bs)
                pt = model.latency_ms(encoder_layer_workload(lengths, "pytorch"))
                cora = model.latency_ms(encoder_layer_workload(lengths, "cora"))
                speedups.append(pt / cora)
        assert 1.3 <= geomean(speedups) <= 2.0

    def test_encoder_competitive_with_ft_eff(self):
        """Table 4: CoRa is competitive with the hand-optimized FT-Eff."""
        model = CostModel(v100_gpu())
        ratios = []
        for ds in dataset_names():
            lengths = sample_lengths(ds, 128)
            fteff = model.latency_ms(encoder_layer_workload(lengths, "ft-eff"))
            cora = model.latency_ms(encoder_layer_workload(lengths, "cora"))
            ratios.append(cora / fteff)
        assert 0.8 <= geomean(ratios) <= 1.25

    def test_encoder_beats_plain_ft_on_long_datasets(self):
        model = CostModel(v100_gpu())
        for ds in ("RACE", "SQuAD", "MNLI"):
            lengths = sample_lengths(ds, 128)
            ft = model.latency_ms(encoder_layer_workload(lengths, "ft"))
            cora = model.latency_ms(encoder_layer_workload(lengths, "cora"))
            assert cora < ft

    def test_mha_speedup_over_tensorflow_on_arm(self):
        """Abstract: ~1.37x geomean speedup over TF-UB, ~1.5x over TF."""
        model = CostModel(arm_cpu_64core())
        vs_tf, vs_tfub = [], []
        for ds in dataset_names():
            for bs in (32, 64, 128):
                lengths = sample_lengths(ds, bs)
                cora = model.latency_ms(mha_workload(lengths, "cora"))
                tf = model.latency_ms(mha_workload(lengths, "tf"))
                tfub = microbatched_latency(
                    lengths,
                    lambda chunk: model.latency_ms(mha_workload(chunk, "tf")),
                ).best_latency_ms
                vs_tf.append(tf / cora)
                vs_tfub.append(tfub / cora)
        assert geomean(vs_tf) > 1.25
        assert geomean(vs_tfub) > 1.05
        assert geomean(vs_tf) >= geomean(vs_tfub)

    def test_prelude_overhead_is_a_small_fraction(self):
        """Section 7.4: prelude overheads are 0.7%-7% of the layer latency."""
        model = CostModel(v100_gpu())
        for ds, bs in (("CoLA", 32), ("RACE", 128)):
            lengths = sample_lengths(ds, bs)
            workload = encoder_layer_workload(lengths, "cora")
            breakdown = model.evaluate(workload)
            overhead = breakdown.copy_s + breakdown.prelude_s
            assert overhead / breakdown.total_s < 0.12

    def test_cora_prelude_much_cheaper_than_sparse_scheme(self):
        """Tables 7-8: CoRa's storage aux data is orders of magnitude smaller."""
        lengths = sample_lengths("RACE", 128)
        batch, s1, heads, s2 = Dim("b"), Dim("s1"), Dim("h"), Dim("s2")
        attention = RaggedLayout(
            [batch, s1, heads, s2],
            [ConstExtent(len(lengths)), VarExtent(batch, lengths),
             ConstExtent(8), VarExtent(batch, lengths)],
        )
        cora = PreludeBuilder().build({"X": attention}, copy_to_device=False)
        sparse = build_sparse_scheme_aux(attention)
        assert sparse.memory_bytes > 100 * cora.storage_memory_bytes

    def test_smaller_batches_less_opportunity(self):
        """Figure 2 / Section 7.2: less padding waste at small batch sizes,
        hence smaller CoRa gains."""
        model = CostModel(v100_gpu())
        lengths_small = sample_lengths("RACE", 2)
        lengths_large = sample_lengths("RACE", 128)
        gain_small = (model.latency_ms(encoder_layer_workload(lengths_small, "pytorch"))
                      / model.latency_ms(encoder_layer_workload(lengths_small, "cora")))
        gain_large = (model.latency_ms(encoder_layer_workload(lengths_large, "pytorch"))
                      / model.latency_ms(encoder_layer_workload(lengths_large, "cora")))
        assert gain_large > gain_small
