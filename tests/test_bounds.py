"""Tests for bounds inference and fused-vloop range translation (Figure 7)."""

import numpy as np
import pytest

from repro.core.bounds import (
    Range,
    check_fusion_axioms,
    fused_range_of,
    infer_input_regions,
    infer_loop_ranges,
    inner_range_of,
    outer_range_of,
)
from repro.core.dims import Dim
from repro.core.errors import BoundsError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.prelude import build_fusion_maps

LENGTHS = [5, 2, 3]


class TestRange:
    def test_extent(self):
        assert Range(2, 5).extent == 4

    def test_inverted_rejected(self):
        with pytest.raises(BoundsError):
            Range(3, 2)

    def test_union_contains(self):
        a, b = Range(0, 3), Range(2, 6)
        assert a.union(b) == Range(0, 6)
        assert Range(0, 10).contains(a)
        assert not a.contains(b)


class TestFigure7Rules:
    def setup_method(self):
        self.maps = build_fusion_maps(LENGTHS)

    def test_fused_range_of_full_space(self):
        f = fused_range_of(Range(0, 2), Range(0, 2), self.maps)
        assert f == Range(0, 9)

    def test_outer_range_of(self):
        assert outer_range_of(Range(0, 4), self.maps) == Range(0, 0)
        assert outer_range_of(Range(3, 6), self.maps) == Range(0, 1)
        assert outer_range_of(Range(0, 9), self.maps) == Range(0, 2)

    def test_inner_range_single_row(self):
        # Fused indices 5..6 all lie in row 1 -> i in [0, 1]
        assert inner_range_of(Range(5, 6), self.maps) == Range(0, 1)

    def test_inner_range_multi_row_needs_lengths(self):
        with pytest.raises(BoundsError):
            inner_range_of(Range(0, 9), self.maps)
        r = inner_range_of(Range(0, 9), self.maps, lengths=LENGTHS)
        assert r == Range(0, 4)

    def test_roundtrip_consistency(self):
        """fused(outer, inner) then back recovers a covering range."""
        f = fused_range_of(Range(1, 2), Range(0, 1), self.maps)
        back = outer_range_of(f, self.maps)
        assert back.contains(Range(1, 2))

    def test_axioms_hold(self):
        assert check_fusion_axioms(self.maps)
        assert check_fusion_axioms(build_fusion_maps([1, 7, 0, 2]))


class TestRegionInference:
    def _op(self):
        batch, seq = Dim("batch"), Dim("seq")
        lens = np.asarray(LENGTHS)
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(3), VarExtent(batch, lens)])
        op = compute("B", [batch, seq],
                     [ConstExtent(3), VarExtent(batch, lens)],
                     lambda o, i: 2.0 * A[o, i])
        return op, batch, seq

    def test_identity_access_regions(self):
        op, batch, seq = self._op()
        regions = infer_input_regions(op, {batch: Range(0, 2), seq: Range(0, 4)})
        assert regions["A"] == [Range(0, 2), Range(0, 4)]

    def test_partial_output_region(self):
        op, batch, seq = self._op()
        regions = infer_input_regions(op, {batch: Range(1, 1), seq: Range(0, 1)})
        assert regions["A"] == [Range(1, 1), Range(0, 1)]

    def test_shifted_access(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq], [ConstExtent(3), ConstExtent(8)])
        op = compute("B", [batch, seq], [ConstExtent(3), ConstExtent(6)],
                     lambda o, i: A[o, i + 2])
        regions = infer_input_regions(op, {batch: Range(0, 2), seq: Range(0, 5)})
        assert regions["A"][1] == Range(2, 7)

    def test_reduction_region_covers_axis(self):
        batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
        lens = np.asarray(LENGTHS)
        A = input_tensor("A", [batch, seq], [ConstExtent(3), VarExtent(batch, lens)])
        k = reduce_axis(VarExtent(batch, lens), "k")
        op = compute("C", [batch, j], [ConstExtent(3), ConstExtent(4)],
                     lambda b, jj: sum_reduce(A[b, LoopVar(k.dim)] * 1.0, k))
        regions = infer_input_regions(op, {batch: Range(0, 0), j: Range(0, 3)})
        assert regions["A"] == [Range(0, 0), Range(0, 4)]

    def test_missing_range_raises(self):
        op, batch, seq = self._op()
        with pytest.raises(BoundsError):
            infer_input_regions(op, {batch: Range(0, 2)})

    def test_infer_loop_ranges(self):
        op, batch, seq = self._op()
        full = infer_loop_ranges(op)
        assert full[batch] == Range(0, 2)
        assert full[seq] == Range(0, 4)
        per_row = infer_loop_ranges(op, governing_index=1)
        assert per_row[seq] == Range(0, 1)
