"""Tests for extents (constant, variable, padded)."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.errors import CoraError
from repro.core.extents import (
    ConstExtent,
    PaddedExtent,
    VarExtent,
    as_extent,
    ceil_to,
    loop_padding_of,
    unpadded,
)


class TestCeilTo:
    def test_exact_multiple(self):
        assert ceil_to(64, 32) == 64

    def test_rounds_up(self):
        assert ceil_to(65, 32) == 96

    def test_zero(self):
        assert ceil_to(0, 8) == 0

    def test_array(self):
        out = ceil_to(np.array([1, 8, 9]), 8)
        assert list(out) == [8, 8, 16]

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            ceil_to(5, 0)


class TestConstExtent:
    def test_call(self):
        assert ConstExtent(7)() == 7

    def test_is_constant(self):
        assert ConstExtent(7).is_constant

    def test_max_value(self):
        assert ConstExtent(7).max_value() == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstExtent(-1)

    def test_equality(self):
        assert ConstExtent(3) == ConstExtent(3)
        assert ConstExtent(3) != ConstExtent(4)

    def test_values_and_total(self):
        e = ConstExtent(5)
        assert list(e.values()) == [5]
        assert e.total() == 5


class TestVarExtent:
    def test_from_table(self):
        b = Dim("b")
        e = VarExtent(b, [3, 1, 4])
        assert e(0) == 3 and e(2) == 4
        assert not e.is_constant
        assert e.max_value() == 4

    def test_vectorised_call(self):
        b = Dim("b")
        e = VarExtent(b, np.array([3, 1, 4]))
        out = e(np.array([0, 1, 2]))
        assert list(out) == [3, 1, 4]

    def test_from_callable(self):
        b = Dim("b")
        e = VarExtent(b, lambda i: i + 1)
        assert e(4) == 5

    def test_callable_max_value_raises(self):
        e = VarExtent(Dim("b"), lambda i: i + 1)
        with pytest.raises(CoraError):
            e.max_value()

    def test_total(self):
        e = VarExtent(Dim("b"), [3, 1, 4])
        assert e.total(3) == 8

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            VarExtent(Dim("b"), [3, -1])

    def test_wrong_arity(self):
        e = VarExtent(Dim("b"), [3, 1])
        with pytest.raises(CoraError):
            e(1, 2)

    def test_dep_must_be_dim(self):
        with pytest.raises(TypeError):
            VarExtent("b", [1, 2])


class TestPaddedExtent:
    def test_pads_constant(self):
        assert ConstExtent(5).padded(4)() == 8

    def test_pads_variable(self):
        b = Dim("b")
        e = VarExtent(b, [5, 2, 8]).padded(4)
        assert e(0) == 8 and e(1) == 4 and e(2) == 8

    def test_pad_one_is_identity(self):
        e = ConstExtent(5)
        assert e.padded(1) is e

    def test_nested_padding_lcm(self):
        e = ConstExtent(5).padded(2).padded(3)
        assert isinstance(e, PaddedExtent)
        assert e.multiple == 6
        assert e() == 6

    def test_max_value_padded(self):
        e = VarExtent(Dim("b"), [5, 2, 7]).padded(4)
        assert e.max_value() == 8

    def test_helpers(self):
        base = VarExtent(Dim("b"), [5, 2])
        padded = base.padded(4)
        assert loop_padding_of(padded) == 4
        assert loop_padding_of(base) == 1
        assert unpadded(padded) is base


class TestAsExtent:
    def test_int_coerced(self):
        assert as_extent(4) == ConstExtent(4)

    def test_extent_passthrough(self):
        e = ConstExtent(4)
        assert as_extent(e) is e

    def test_invalid(self):
        with pytest.raises(TypeError):
            as_extent("four")
