"""Tests for the executor's kernel cache, the memoized FLOP estimates and
the prelude memoization."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.errors import ExecutionError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.executor import (
    Executor,
    estimate_dense_flops,
    estimate_flops,
    schedule_signature,
)
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.prelude import PreludeCache
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout

LENGTHS = np.array([5, 2, 3])


def elementwise_op():
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                 lambda o, i: 2.0 * A[o, i])
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
    return op, RaggedTensor.random(layout, seed=1)


def matmul_op(lens=np.array([4, 2, 3]), inner=6, out=5):
    batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
    A = input_tensor("A", [batch, seq, Dim("h")],
                     [ConstExtent(len(lens)), VarExtent(batch, lens),
                      ConstExtent(inner)])
    W = input_tensor("W", [Dim("ki"), j], [ConstExtent(inner), ConstExtent(out)])
    k = reduce_axis(inner, "k")
    op = compute("C", [batch, seq, j],
                 [ConstExtent(len(lens)), VarExtent(batch, lens),
                  ConstExtent(out)],
                 lambda b, i, jj: sum_reduce(
                     A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
    layout = RaggedLayout([batch, seq, Dim("h")],
                          [ConstExtent(len(lens)), VarExtent(batch, lens),
                           ConstExtent(inner)])
    ta = RaggedTensor.random(layout, seed=2)
    w = np.random.default_rng(5).standard_normal((inner, out)).astype(np.float32)
    return op, {"A": ta, "W": w}


class TestKernelCache:
    def test_second_build_and_run_hits_cache(self):
        op, data = elementwise_op()
        executor = Executor()
        schedule = Schedule(op)
        executor.build_and_run(schedule, {"A": data})
        assert executor.lower_count == 1
        out, _ = executor.build_and_run(schedule, {"A": data})
        # Zero re-lowers: the second call is a pure cache hit.
        assert executor.lower_count == 1
        assert executor.cache_hits == 1
        assert executor.cache_misses == 1
        assert np.allclose(out.data, 2 * data.data, atol=1e-5)

    def test_equivalent_fresh_schedule_hits_cache(self):
        op, data = elementwise_op()
        executor = Executor()
        executor.build_and_run(Schedule(op), {"A": data})
        executor.build_and_run(Schedule(op), {"A": data})
        assert executor.lower_count == 1

    def test_mutated_schedule_recompiles(self):
        op, data = elementwise_op()
        executor = Executor()
        schedule = Schedule(op)
        executor.build_and_run(schedule, {"A": data})
        schedule.no_load_hoisting()
        out, _ = executor.build_and_run(schedule, {"A": data})
        assert executor.lower_count == 2
        assert np.allclose(out.data, 2 * data.data, atol=1e-5)

    def test_mutated_padding_recompiles(self):
        op, _ = elementwise_op()
        executor = Executor()
        schedule = Schedule(op)
        sig_before = schedule_signature(schedule)
        schedule.pad_loop(op.dims[1], 2)
        schedule.pad_dimension(op.dims[1], 2)
        assert schedule_signature(schedule) != sig_before

    def test_different_operators_do_not_collide(self):
        op1, data = elementwise_op()
        op2, inputs2 = matmul_op()
        executor = Executor()
        executor.build_and_run(Schedule(op1), {"A": data})
        executor.build_and_run(Schedule(op2), inputs2)
        assert executor.lower_count == 2

    def test_signature_depends_on_lengths(self):
        op1, _ = elementwise_op()
        sig1 = schedule_signature(Schedule(op1))
        sig1b = schedule_signature(Schedule(op1))
        assert sig1 == sig1b

    def test_cache_disabled(self):
        op, data = elementwise_op()
        executor = Executor(cache=False)
        executor.build_and_run(Schedule(op), {"A": data})
        executor.build_and_run(Schedule(op), {"A": data})
        assert executor.lower_count == 2

    def test_clear_cache(self):
        op, data = elementwise_op()
        executor = Executor()
        schedule = Schedule(op)
        executor.build_and_run(schedule, {"A": data})
        executor.clear_cache()
        executor.build_and_run(schedule, {"A": data})
        assert executor.lower_count == 2

    def test_lru_eviction_bounds_cache(self):
        from repro.ops.trmm import make_lower_triangular, trmm_compiled

        executor = Executor(cache_capacity=2)
        for n in (3, 4, 5, 6):
            trmm_compiled(make_lower_triangular(n),
                          np.eye(n, dtype=np.float32), executor=executor)
        assert len(executor._kernel_cache) == 2
        assert executor.lower_count == 4

    def test_ops_wrappers_hit_cache_across_calls(self):
        """The memoized schedule builders make repeated compiled-op calls
        with equal problems pure cache hits on a shared executor."""
        from repro.ops.vgemm import random_instances, vgemm_compiled, VgemmProblem

        problem = VgemmProblem(ms=np.array([5, 3]), ns=np.array([4, 6]),
                               ks=np.array([3, 5]))
        a, b = random_instances(problem, seed=1)
        executor = Executor()
        for _ in range(3):
            outs, _ = vgemm_compiled(a, b, executor=executor)
        assert executor.lower_count == 1
        assert executor.cache_hits == 2
        assert len(executor._kernel_cache) == 1


class TestFlopsMemoization:
    def test_estimates_computed_once_across_runs(self, monkeypatch):
        import repro.core.executor as executor_mod

        op, inputs = matmul_op()
        executor = Executor()
        schedule = Schedule(op)
        calls = {"n": 0}
        real = executor_mod.estimate_flops

        def counting(lowered):
            calls["n"] += 1
            return real(lowered)

        monkeypatch.setattr(executor_mod, "estimate_flops", counting)
        executor.build_and_run(schedule, inputs)
        executor.build_and_run(schedule, inputs)
        executor.build_and_run(schedule, inputs)
        assert calls["n"] == 1

    def test_reports_unchanged_by_memoization(self):
        op, inputs = matmul_op()
        executor = Executor()
        schedule = Schedule(op)
        _, first = executor.build_and_run(schedule, inputs)
        _, second = executor.build_and_run(schedule, inputs)
        assert first.flops == second.flops
        assert first.dense_flops == second.dense_flops


class TestEstimateRegression:
    def brute_force_flops(self, lens, j_extent, k_extent):
        """Count loop-nest iterations the way the generated kernel runs them:
        2 flops (multiply + accumulate) per innermost iteration."""
        total = 0
        for b in range(len(lens)):
            for _i in range(int(lens[b])):
                for _j in range(j_extent):
                    for _k in range(k_extent):
                        total += 2
        return total

    def test_ragged_matmul_matches_brute_force(self):
        lens = np.array([4, 2, 3])
        op, _ = matmul_op(lens)
        lowered = Schedule(op).lower()
        assert estimate_flops(lowered) == self.brute_force_flops(lens, 5, 6)

    def test_constant_bounds_match_brute_force(self):
        row, col = Dim("row"), Dim("col")
        n = 4
        L = input_tensor("L", [row, Dim("rk")], [ConstExtent(n), ConstExtent(n)])
        B = input_tensor("Bm", [Dim("rk2"), col], [ConstExtent(n), ConstExtent(n)])
        k = reduce_axis(ConstExtent(n), "k")
        op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                     lambda r, c: sum_reduce(
                         L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))
        lowered = Schedule(op).lower()
        assert estimate_flops(lowered) == 2 * n * n * n
        # Ragged == dense when nothing is ragged.
        assert estimate_flops(lowered) == estimate_dense_flops(lowered)

    def test_variable_reduction_matches_brute_force(self):
        row, col = Dim("row"), Dim("col")
        n = 5
        L = input_tensor("L", [row, Dim("rk")], [ConstExtent(n), ConstExtent(n)])
        B = input_tensor("Bm", [Dim("rk2"), col], [ConstExtent(n), ConstExtent(n)])
        k = reduce_axis(VarExtent(row, np.arange(1, n + 1)), "k")
        op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                     lambda r, c: sum_reduce(
                         L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))
        lowered = Schedule(op).lower()
        expected = sum(2 * n * (r + 1) for r in range(n))
        assert estimate_flops(lowered) == expected


class TestBoundTableMismatch:
    def test_short_bound_table_raises(self):
        op, _ = elementwise_op()
        lowered = Schedule(op).lower()
        name = next(n for n in lowered.aux_arrays if n.startswith("len_"))
        lowered.aux_arrays[name] = lowered.aux_arrays[name][:-1]
        with pytest.raises(ExecutionError, match="bound table"):
            estimate_flops(lowered)

    def test_long_bound_table_raises(self):
        op, _ = elementwise_op()
        lowered = Schedule(op).lower()
        name = next(n for n in lowered.aux_arrays if n.startswith("len_"))
        table = lowered.aux_arrays[name]
        lowered.aux_arrays[name] = np.concatenate([table, table[:1]])
        with pytest.raises(ExecutionError, match="bound table"):
            estimate_flops(lowered)

    def test_mismatched_reduction_table_raises(self):
        op, _ = matmul_op(lens=np.array([4, 2, 3]))
        lowered = Schedule(op).lower()
        # Make the (ragged) loop table inconsistent with the outer extent.
        name = next(n for n in lowered.aux_arrays if n.startswith("len_"))
        lowered.aux_arrays[name] = lowered.aux_arrays[name][:1]
        with pytest.raises(ExecutionError):
            estimate_flops(lowered)


class TestPreludeCache:
    def test_fusion_maps_memoized(self):
        cache = PreludeCache()
        lens = np.array([5, 2, 3])
        first = cache.fusion_maps(lens, pad=2)
        second = cache.fusion_maps(lens.copy(), pad=2)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        third = cache.fusion_maps(lens, pad=4)
        assert third is not first
        assert cache.misses == 2

    def test_row_offsets_memoized(self):
        cache = PreludeCache()
        lens = [3, 1, 4]
        first = cache.row_offsets(lens, pad=2, inner_factor=8)
        second = cache.row_offsets(list(lens), pad=2, inner_factor=8)
        assert first is second
        assert np.array_equal(
            first, np.cumsum([0] + [((s + 1) // 2) * 2 * 8 for s in lens]))

    def test_transformer_prelude_memoized_per_minibatch(self):
        from repro.models.transformer import (
            clear_prelude_memo,
            encoder_layer_workload,
            prelude_memo_stats,
        )

        clear_prelude_memo()
        lengths = [5, 3, 7]
        encoder_layer_workload(lengths, "cora")
        encoder_layer_workload(lengths, "cora")
        encoder_layer_workload([2, 2], "cora")
        stats = prelude_memo_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
