"""Tests for the transformer encoder layer (numeric + workload builders)."""

import numpy as np
import pytest

from repro.baselines.ft import ft_eff_workload, ft_workload, kernel_count
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    encoder_layer_workload,
    encoder_operator_breakdown,
    mha_workload,
    run_encoder_layer_dense_reference,
    run_encoder_layer_numeric,
)
from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_64core, v100_gpu

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8, attention_tile=8)
LENGTHS = [7, 3, 5]


class TestConfig:
    def test_paper_config(self):
        cfg = PAPER_BASE_CONFIG
        assert cfg.hidden_size == 512
        assert cfg.num_heads == 8
        assert cfg.ff_size == 2048
        assert cfg.qkv_size == 1536

    def test_invalid_head_split_rejected(self):
        with pytest.raises(ValueError):
            TransformerConfig(hidden_size=512, num_heads=7, head_size=64)


class TestNumericForward:
    def _inputs(self, masked=False):
        rng = np.random.default_rng(0)
        hidden = [rng.standard_normal((n, SMALL.hidden_size)).astype(np.float32)
                  for n in LENGTHS]
        weights = EncoderWeights.random(SMALL, seed=1)
        return hidden, weights

    def test_ragged_matches_dense_reference(self):
        hidden, weights = self._inputs()
        ragged = run_encoder_layer_numeric(hidden, weights, SMALL)
        max_len = max(LENGTHS)
        dense_in = np.zeros((len(LENGTHS), max_len, SMALL.hidden_size), np.float32)
        for b, h in enumerate(hidden):
            dense_in[b, :h.shape[0]] = h
        dense = run_encoder_layer_dense_reference(dense_in, LENGTHS, weights, SMALL)
        for b, n in enumerate(LENGTHS):
            assert np.allclose(ragged.hidden[b], dense[b, :n], atol=1e-3)

    def test_masked_forward_differs_from_unmasked(self):
        hidden, weights = self._inputs()
        plain = run_encoder_layer_numeric(hidden, weights, SMALL, masked=False)
        masked = run_encoder_layer_numeric(hidden, weights, SMALL, masked=True)
        assert not np.allclose(plain.hidden[0], masked.hidden[0], atol=1e-3)

    def test_masked_matches_dense_reference(self):
        hidden, weights = self._inputs()
        ragged = run_encoder_layer_numeric(hidden, weights, SMALL, masked=True)
        max_len = max(LENGTHS)
        dense_in = np.zeros((len(LENGTHS), max_len, SMALL.hidden_size), np.float32)
        for b, h in enumerate(hidden):
            dense_in[b, :h.shape[0]] = h
        dense = run_encoder_layer_dense_reference(dense_in, LENGTHS, weights, SMALL,
                                                  masked=True)
        for b, n in enumerate(LENGTHS):
            assert np.allclose(ragged.hidden[b], dense[b, :n], atol=1e-3)

    def test_output_shapes_preserved(self):
        hidden, weights = self._inputs()
        out = run_encoder_layer_numeric(hidden, weights, SMALL)
        assert [h.shape for h in out.hidden] == [(n, SMALL.hidden_size) for n in LENGTHS]
        dense = out.as_dense(max(LENGTHS))
        assert dense.shape == (len(LENGTHS), max(LENGTHS), SMALL.hidden_size)


class TestWorkloadStructure:
    def test_cora_has_nine_kernels(self):
        wl = encoder_layer_workload(np.array([100, 80, 60]), "cora")
        assert len(wl.kernels) == 9

    def test_ft_has_twelve_kernels(self):
        lengths = np.array([100, 80, 60])
        assert kernel_count(ft_workload(lengths)) == 12
        assert kernel_count(ft_eff_workload(lengths)) == 12

    def test_cora_prelude_amortised_over_layers(self):
        lengths = np.array([100, 80, 60])
        one = encoder_layer_workload(lengths, "cora", num_layers=1)
        six = encoder_layer_workload(lengths, "cora", num_layers=6)
        assert six.prelude_time_s < one.prelude_time_s or one.prelude_time_s == 0
        assert six.h2d_bytes == pytest.approx(one.h2d_bytes / 6)

    def test_unfused_pad_change_adds_kernels(self):
        lengths = np.array([100, 80, 60])
        fused = encoder_layer_workload(lengths, "cora", fuse_pad_change=True)
        unfused = encoder_layer_workload(lengths, "cora", fuse_pad_change=False)
        assert len(unfused.kernels) > len(fused.kernels)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            encoder_layer_workload([10], "bogus")
        with pytest.raises(ValueError):
            mha_workload([10], "bogus")

    def test_ft_eff_less_flops_than_ft(self):
        lengths = np.random.default_rng(0).integers(40, 512, size=32)
        assert ft_eff_workload(lengths).total_flops() < ft_workload(lengths).total_flops()

    def test_cora_flops_least(self):
        lengths = np.random.default_rng(0).integers(40, 512, size=32)
        cora = encoder_layer_workload(lengths, "cora").total_flops()
        fteff = ft_eff_workload(lengths).total_flops()
        ft = ft_workload(lengths).total_flops()
        assert cora < ft
        # CoRa only pays small partial padding over FT-Eff's SDPA-only padding.
        assert cora < 1.1 * fteff


class TestBreakdown:
    def test_groups_cover_known_kernels(self):
        lengths = np.array([100, 80, 60])
        model = CostModel(v100_gpu())
        breakdown = model.evaluate(encoder_layer_workload(lengths, "ft-eff"))
        grouped = encoder_operator_breakdown(breakdown.per_kernel_s)
        assert "other" not in grouped
        assert set(grouped) == {"Proj1", "QKT", "Softmax", "AttnV", "Proj2", "FF1", "FF2"}
        assert sum(grouped.values()) == pytest.approx(sum(breakdown.per_kernel_s.values()))

    def test_cora_wins_sdpa_ops(self):
        """Figure 13: CoRa beats FT-Eff on the SDPA operators (QKT/Softmax/AttnV)."""
        lengths = np.random.default_rng(0).integers(80, 512, size=128)
        model = CostModel(v100_gpu())
        cora = encoder_operator_breakdown(
            model.evaluate(encoder_layer_workload(lengths, "cora")).per_kernel_s)
        fteff = encoder_operator_breakdown(
            model.evaluate(encoder_layer_workload(lengths, "ft-eff")).per_kernel_s)
        for op in ("QKT", "Softmax", "AttnV"):
            assert cora[op] < fteff[op]


class TestMhaWorkloads:
    def test_cora_faster_than_tf_on_arm(self):
        lengths = np.random.default_rng(0).integers(9, 128, size=64)
        model = CostModel(arm_cpu_64core())
        tf = model.latency_ms(mha_workload(lengths, "tf"))
        cora = model.latency_ms(mha_workload(lengths, "cora"))
        assert cora < tf

    def test_cpu_cora_has_explicit_pad_change(self):
        lengths = np.array([100, 80, 60])
        cpu = mha_workload(lengths, "cora", on_gpu=False)
        gpu = mha_workload(lengths, "cora", on_gpu=True)
        assert any(k.name == "PadChange" for k in cpu.kernels)
        assert not any(k.name == "PadChange" for k in gpu.kernels)
