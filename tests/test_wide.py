"""Wide execution: program fusion, batch-dim sharding, process pool.

Covers the four layers of the wide-execution stack and their
differential guarantees:

* ``merge_programs`` -- namespacing, constant sharing by array identity,
  merge roots, planner width, rebuild recipes;
* ``plan_shards`` / ``shard_program`` / ``Session.run_sharded`` --
  contiguous token-balanced shards reassembled bit-identically;
* ``ProcessPoolEngine`` -- shared-memory dispatch bit-identical to
  serial, achieved width, close/reuse semantics (the engine-ownership
  regression tests), fault injection at ``process_worker``;
* ``BatchScheduler(wide_batches=K)`` -- fused serving dispatch
  bit-identical to narrow dispatch, with per-batch fallback on failure.

Every comparison is ``np.array_equal`` -- no tolerances anywhere.  The
hypothesis differential at the bottom is the satellite-task contract:
fusion + sharding + process pool vs K independent serial runs over
random ragged batches, masked and unmasked, depths 1 and 2, with zero
vector-backend fallbacks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    PipelinedEngine,
    ProcessPoolEngine,
    SerialEngine,
    get_engine,
)
from repro.core.planner import plan_program, plan_shards
from repro.core.program import (
    ProgramError,
    build_from_recipe,
    merge_programs,
)
from repro.core.session import Session, shard_program
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_stack_program,
    build_encoder_wide_program,
    encoder_stack_program,
    encoder_wide_program,
)
from repro.serving.faults import FaultInjector
from repro.serving.scheduler import BatchScheduler

# Small dims keep every matmul's inner dimension below the BLAS
# row-blocking threshold, so even *sliced* operands reduce in one block
# and sharded execution stays bit-exact (see test_program_runtime).
SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)


def _hidden(lengths, seed=0, config=SMALL):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _packed(lengths, seed=0, config=SMALL):
    return np.concatenate(_hidden(lengths, seed=seed, config=config), axis=0)


@pytest.fixture(scope="module")
def weights():
    return EncoderWeights.random(SMALL, seed=3)


@pytest.fixture(scope="module")
def serial_session():
    session = Session(backend="vector", engine="serial")
    yield session
    session.close()


@pytest.fixture(scope="module")
def process_engine():
    engine = ProcessPoolEngine(max_workers=4)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def process_session(process_engine):
    session = Session(backend="vector", engine=process_engine)
    yield session
    session.close()


def _serial_reference(groups, weights, masked=False, n_layers=2,
                      session=None, seed=11):
    """Per-group encoder outputs through independent serial runs."""
    outs = []
    for i, lengths in enumerate(groups):
        program = encoder_stack_program(
            tuple(lengths), weights, SMALL, masked=masked,
            n_layers=n_layers, session=session)
        packed = _packed(lengths, seed=seed + i)
        outs.append(session.run(program, {"tokens": packed})["out_tokens"])
    return outs


# ---------------------------------------------------------------------------
# merge_programs
# ---------------------------------------------------------------------------


class TestMergePrograms:
    def test_namespacing_and_info(self, weights):
        groups = [(3, 5), (4,), (2, 2, 2)]
        parts = [build_encoder_stack_program(g, weights, SMALL, masked=False,
                                             n_layers=1) for g in groups]
        merged = merge_programs(parts)
        info = merged.merge_info
        assert info.num_parts == 3
        assert info.prefixes == ("R0.", "R1.", "R2.")
        for i in range(3):
            assert info.input_name(i, "tokens") == f"R{i}.tokens"
            assert info.output_name(i, "out_tokens") == f"R{i}.out_tokens"
            assert f"R{i}.tokens" in merged.values
            assert f"R{i}.out_tokens" in merged.outputs
        # parts stay disjoint: every node's inputs live in its own group
        assert len(merged.nodes) == sum(len(p.nodes) for p in parts)

    def test_constants_shared_by_array_identity(self, weights):
        parts = [build_encoder_stack_program((4,), weights, SMALL,
                                             n_layers=1) for _ in range(3)]
        merged = merge_programs(parts, share="constants")
        separate = merge_programs(parts, share=None)
        n_const = lambda p: sum(1 for v in p.values.values()
                                if v.array is not None)
        # all three parts reference the same weight arrays -> declared once
        assert n_const(merged) == n_const(parts[0])
        assert n_const(separate) == 3 * n_const(parts[0])
        assert merged.merge_info.shared_constants > 0

    def test_same_program_object_repeated(self, weights):
        part = build_encoder_stack_program((3, 4), weights, SMALL, n_layers=1)
        merged = merge_programs([part, part, part])
        assert merged.merge_info.num_parts == 3
        merged.validate()

    def test_merge_roots_give_planner_width(self, weights):
        k = 4
        parts = [build_encoder_stack_program((3,), weights, SMALL,
                                             n_layers=2) for _ in range(k)]
        single_plan = plan_program(parts[0])
        assert single_plan.max_width == 1  # the chain finding of PR 5
        merged = merge_programs(parts)
        plan = plan_program(merged)
        assert plan.max_width >= k
        assert len(plan.ready_steps) >= k
        # every part's root is in merge_roots and gets a fresh slab
        assert len(merged.merge_roots) >= k

    def test_fused_arena_below_k_times_single(self, weights):
        k = 4
        parts = [build_encoder_stack_program((6, 5), weights, SMALL,
                                             n_layers=2) for _ in range(k)]
        single = plan_program(parts[0]).arena_bytes
        fused = plan_program(merge_programs(parts)).arena_bytes
        assert fused < k * single

    def test_stagger_trades_width_for_arena(self, weights):
        parts = [build_encoder_stack_program((4,), weights, SMALL,
                                             n_layers=1) for _ in range(4)]
        lockstep = plan_program(merge_programs(parts, stagger=1))
        concat = plan_program(
            merge_programs(parts, stagger=len(parts[0].nodes)))
        assert lockstep.arena_bytes >= concat.arena_bytes
        assert lockstep.max_width >= concat.max_width

    def test_validation_errors(self, weights):
        part = build_encoder_stack_program((3,), weights, SMALL, n_layers=1)
        with pytest.raises(ProgramError):
            merge_programs([])
        with pytest.raises(ProgramError):
            merge_programs([part], share="everything")
        with pytest.raises(ProgramError):
            merge_programs([part, part], stagger=0)

    def test_wide_recipe_round_trip(self, weights):
        groups = ((3, 5), (4,), (2, 6))
        wide = build_encoder_wide_program(groups, weights, SMALL,
                                          masked=True, n_layers=2)
        assert wide.recipe is not None
        rebuilt = build_from_recipe(wide.recipe)
        plan_a, plan_b = plan_program(wide), plan_program(rebuilt)
        assert plan_a.order == plan_b.order
        assert plan_a.slab_elements == plan_b.slab_elements
        assert plan_a.ready_steps == plan_b.ready_steps

    def test_bad_recipe_rejected(self):
        with pytest.raises(ProgramError):
            build_from_recipe(("builder", "repro.models.transformer",
                               "no_such_builder", {}))
        with pytest.raises(ProgramError):
            build_from_recipe(("what",))

    def test_fused_bit_identical_to_serial_parts(self, weights,
                                                 serial_session):
        groups = [(3, 5), (4, 2), (6,)]
        refs = _serial_reference(groups, weights, masked=True,
                                 session=serial_session)
        wide = encoder_wide_program(groups, weights, SMALL, masked=True,
                                    n_layers=2, session=serial_session)
        info = wide.merge_info
        bound = {info.input_name(i, "tokens"): _packed(g, seed=11 + i)
                 for i, g in enumerate(groups)}
        outs = serial_session.run(wide, bound)
        for i, ref in enumerate(refs):
            assert np.array_equal(outs[info.output_name(i, "out_tokens")],
                                  ref)


# ---------------------------------------------------------------------------
# plan_shards
# ---------------------------------------------------------------------------


class TestPlanShards:
    def test_contiguous_and_complete(self):
        lengths = [5, 3, 7, 2, 4, 3, 6]
        shards = plan_shards(lengths, 3)
        assert shards[0].seq_start == 0
        assert shards[-1].seq_stop == len(lengths)
        assert shards[-1].token_stop == sum(lengths)
        for a, b in zip(shards, shards[1:]):
            assert a.seq_stop == b.seq_start
            assert a.token_stop == b.token_start
        for s in shards:
            assert s.lengths == tuple(lengths[s.seq_start:s.seq_stop])
            assert s.num_tokens == sum(s.lengths)

    def test_token_balanced(self):
        lengths = [10] * 8
        shards = plan_shards(lengths, 4)
        assert [s.num_tokens for s in shards] == [20, 20, 20, 20]

    def test_caps_at_num_sequences(self):
        shards = plan_shards([4, 4], 7)
        assert len(shards) == 2
        assert all(s.num_sequences == 1 for s in shards)

    def test_single_shard(self):
        (shard,) = plan_shards([3, 1, 2], 1)
        assert shard.lengths == (3, 1, 2)

    def test_errors(self):
        with pytest.raises(ProgramError):
            plan_shards([], 2)
        with pytest.raises(ProgramError):
            plan_shards([3], 0)


# ---------------------------------------------------------------------------
# shard_program / run_sharded
# ---------------------------------------------------------------------------


class TestSharding:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_unfused_bit_identical(self, weights, serial_session, n_shards):
        lengths = [5, 3, 7, 2, 4, 3, 6]
        program = encoder_stack_program(tuple(lengths), weights, SMALL,
                                        masked=True, n_layers=2,
                                        session=serial_session)
        ref = serial_session.run(
            program, {"tokens": _packed(lengths)})["out_tokens"]
        build = lambda ls: build_encoder_stack_program(
            ls, weights, SMALL, masked=True, n_layers=2)
        sharded = shard_program(build, lengths, n_shards)
        out = serial_session.run_sharded(
            sharded, {"tokens": _packed(lengths)})
        assert np.array_equal(out["out_tokens"], ref)

    def test_fused_shards_bit_identical(self, weights, serial_session,
                                        process_session):
        lengths = [5, 3, 7, 2, 4, 3, 6]
        program = encoder_stack_program(tuple(lengths), weights, SMALL,
                                        masked=True, n_layers=2,
                                        session=serial_session)
        ref = serial_session.run(
            program, {"tokens": _packed(lengths)})["out_tokens"]
        build = lambda ls: build_encoder_stack_program(
            ls, weights, SMALL, masked=True, n_layers=2)
        # generic merge (weights shared across shards; no rebuild recipe)
        sharded = shard_program(build, lengths, 3, fused=True)
        assert sharded.fused.merge_info.num_parts == 3
        out = serial_session.run_sharded(sharded, {"tokens": _packed(lengths)})
        assert np.array_equal(out["out_tokens"], ref)
        # model-provided wide builder: recipe-capable, process-pool ready
        wide = shard_program(
            build, lengths, 3,
            build_fused=lambda groups: build_encoder_wide_program(
                groups, weights, SMALL, masked=True, n_layers=2))
        assert wide.fused.recipe is not None
        for session in (serial_session, process_session):
            out = session.run_sharded(wide, {"tokens": _packed(lengths)})
            assert np.array_equal(out["out_tokens"], ref)

    def test_missing_input_rejected(self, weights, serial_session):
        build = lambda ls: build_encoder_stack_program(
            ls, weights, SMALL, n_layers=1)
        sharded = shard_program(build, [3, 4], 2)
        with pytest.raises(ProgramError):
            serial_session.run_sharded(sharded, {"nope": _packed([3, 4])})


# ---------------------------------------------------------------------------
# ProcessPoolEngine
# ---------------------------------------------------------------------------


class TestProcessPoolEngine:
    def test_bit_identical_and_width(self, weights, serial_session,
                                     process_engine, process_session):
        groups = [(3, 5), (4,), (2, 6), (5,)]
        refs = _serial_reference(groups, weights, masked=False,
                                 session=serial_session)
        wide = encoder_wide_program(groups, weights, SMALL, masked=False,
                                    n_layers=2, session=process_session)
        info = wide.merge_info
        bound = {info.input_name(i, "tokens"): _packed(g, seed=11 + i)
                 for i, g in enumerate(groups)}
        process_engine.reset_stats()
        outs = process_session.run(wide, bound)
        for i, ref in enumerate(refs):
            assert np.array_equal(outs[info.output_name(i, "out_tokens")],
                                  ref)
        stats = process_engine.stats()
        assert stats["max_inflight"] >= min(len(groups),
                                            process_engine.max_workers)
        assert stats["installs"] >= 1

    def test_repeat_runs_reuse_install(self, weights, process_engine,
                                       process_session):
        program = encoder_stack_program((4, 3), weights, SMALL,
                                        n_layers=1, session=process_session)
        process_session.run(program, {"tokens": _packed([4, 3])})
        installs = process_engine.stats()["installs"]
        process_session.run(program, {"tokens": _packed([4, 3], seed=5)})
        assert process_engine.stats()["installs"] == installs

    def test_requires_context(self, weights, serial_session, process_engine):
        program = encoder_stack_program((3,), weights, SMALL, n_layers=1,
                                        session=serial_session)
        compiled = serial_session.compile(program)
        with pytest.raises(ValueError):
            process_engine.execute(compiled._steps, compiled.plan)

    def test_requires_recipe(self, weights, process_session):
        program = build_encoder_stack_program((3,), weights, SMALL,
                                              n_layers=1)
        program.recipe = None
        with pytest.raises(ValueError):
            process_session.run(program, {"tokens": _packed([3])})

    def test_fault_injection_point(self, weights):
        injector = FaultInjector()
        injector.add("process_worker", "raise", max_fires=1)
        engine = ProcessPoolEngine(max_workers=2)
        session = Session(backend="vector", engine=engine,
                          fault_injector=injector)
        try:
            program = encoder_stack_program((3, 4), weights, SMALL,
                                            n_layers=1, session=session)
            with pytest.raises(Exception):
                session.run(program, {"tokens": _packed([3, 4])})
            # the fault burnt out: the pool recovers on the next run
            out = session.run(program, {"tokens": _packed([3, 4])})
            assert "out_tokens" in out
        finally:
            session.close()
            engine.close()

    def test_eviction_at_capacity(self, weights):
        engine = ProcessPoolEngine(max_workers=2, program_capacity=1)
        session = Session(backend="vector", engine=engine)
        try:
            for lengths in ((3,), (4,)):
                program = encoder_stack_program(lengths, weights, SMALL,
                                                n_layers=1, session=session)
                session.run(program, {"tokens": _packed(lengths)})
            stats = engine.stats()
            assert stats["evictions"] >= 1
            assert stats["installed_programs"] == 1
        finally:
            session.close()
            engine.close()


class TestEngineOwnership:
    """The close()/reuse regression tests of the satellite bugfix."""

    def test_engine_double_close(self):
        engine = ProcessPoolEngine(max_workers=2)
        engine.warm_up()
        engine.close()
        engine.close()  # idempotent

    def test_engine_close_then_reuse(self, weights):
        engine = ProcessPoolEngine(max_workers=2)
        session = Session(backend="vector", engine=engine)
        try:
            program = encoder_stack_program((3,), weights, SMALL,
                                            n_layers=1, session=session)
            a = session.run(program, {"tokens": _packed([3])})["out_tokens"]
            engine.close()
            # the pool respawns lazily; same program, same answer
            b = session.run(program, {"tokens": _packed([3])})["out_tokens"]
            assert np.array_equal(a, b)
        finally:
            session.close()
            engine.close()

    def test_instance_engine_shared_across_sessions(self, weights):
        engine = ProcessPoolEngine(max_workers=2)
        s1 = Session(backend="vector", engine=engine)
        s2 = Session(backend="vector", engine=engine)
        try:
            p1 = encoder_stack_program((3,), weights, SMALL, n_layers=1,
                                       session=s1)
            a = s1.run(p1, {"tokens": _packed([3])})["out_tokens"]
            # closing one session must not tear down the caller's engine
            s1.close()
            s1.close()  # session close is idempotent too
            p2 = encoder_stack_program((3,), weights, SMALL, n_layers=1,
                                       session=s2)
            b = s2.run(p2, {"tokens": _packed([3])})["out_tokens"]
            assert np.array_equal(a, b)
        finally:
            s2.close()
            engine.close()

    def test_session_owned_engine_closed_by_session(self, weights):
        session = Session(backend="vector", engine="pipelined")
        program = encoder_stack_program((3,), weights, SMALL, n_layers=1,
                                        session=session)
        session.run(program, {"tokens": _packed([3])})
        session.close()
        session.close()


# ---------------------------------------------------------------------------
# PipelinedEngine serial shortcut (satellite perf fix)
# ---------------------------------------------------------------------------


class TestSerialShortcut:
    def test_chain_takes_shortcut_without_pool(self, weights):
        engine = PipelinedEngine(max_workers=2)
        session = Session(backend="vector", engine=engine)
        try:
            program = encoder_stack_program((4, 3), weights, SMALL,
                                            n_layers=2, session=session)
            session.run(program, {"tokens": _packed([4, 3])})
            assert engine.stats()["serial_shortcuts"] == 1
            assert engine._pool is None  # the thread-pool tax was skipped
            assert engine.stats()["max_inflight"] == 1
        finally:
            session.close()

    def test_wide_program_uses_pool(self, weights):
        engine = PipelinedEngine(max_workers=2)
        session = Session(backend="vector", engine=engine)
        groups = [(3, 4), (4,), (2, 2), (5,)]
        try:
            wide = encoder_wide_program(groups, weights, SMALL,
                                        n_layers=2, session=session)
            bound = {f"R{i}.tokens": _packed(g, seed=i)
                     for i, g in enumerate(groups)}
            session.run(wide, bound)
            assert engine.stats()["serial_shortcuts"] == 0
            assert engine._pool is not None
            assert engine.stats()["max_inflight"] >= 2
        finally:
            session.close()

    def test_shortcut_can_be_disabled(self, weights):
        engine = PipelinedEngine(max_workers=2, serial_shortcut=False)
        session = Session(backend="vector", engine=engine)
        try:
            program = encoder_stack_program((4,), weights, SMALL,
                                            n_layers=1, session=session)
            session.run(program, {"tokens": _packed([4])})
            assert engine.stats()["serial_shortcuts"] == 0
            assert engine._pool is not None
        finally:
            session.close()

    def test_shortcut_bit_identical(self, weights, serial_session):
        program_args = ((5, 3), weights, SMALL)
        ref_prog = encoder_stack_program(*program_args, masked=True,
                                         n_layers=2, session=serial_session)
        ref = serial_session.run(
            ref_prog, {"tokens": _packed([5, 3])})["out_tokens"]
        session = Session(backend="vector", engine="pipelined")
        try:
            program = encoder_stack_program(*program_args, masked=True,
                                            n_layers=2, session=session)
            out = session.run(program,
                              {"tokens": _packed([5, 3])})["out_tokens"]
            assert np.array_equal(out, ref)
        finally:
            session.close()


# ---------------------------------------------------------------------------
# BatchScheduler wide dispatch
# ---------------------------------------------------------------------------


def _requests(n, seed=21, low=2, high=9):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(k), SMALL.hidden_size))
            .astype(np.float32)
            for k in rng.integers(low, high, size=n)]


class TestSchedulerWide:
    def _drain(self, session, reqs, **kwargs):
        scheduler = BatchScheduler(kwargs.pop("weights"), SMALL,
                                   session=session, masked=True, n_layers=2,
                                   max_batch_size=3, **kwargs)
        ids = scheduler.submit_many(reqs)
        results = scheduler.drain()
        scheduler.close()
        return [results[i] for i in ids], scheduler.stats()

    def test_wide_bit_identical_to_narrow(self, weights, process_engine):
        reqs = _requests(12)
        ref_session = Session(backend="vector", engine="serial")
        narrow, _ = self._drain(ref_session, reqs, weights=weights)
        ref_session.close()
        wide_session = Session(backend="vector", engine=process_engine)
        wide, stats = self._drain(wide_session, reqs, weights=weights,
                                  wide_batches=4)
        wide_session.close()
        assert all(np.array_equal(a, b) for a, b in zip(narrow, wide))
        assert stats["wide_dispatches"] >= 1
        assert stats["wide_fallbacks"] == 0
        assert stats["max_width_achieved"] == 4
        assert stats["engine_max_inflight"] >= 4
        assert stats["num_completed"] == len(reqs)

    def test_wide_overlap_drain_bit_identical(self, weights):
        reqs = _requests(8, seed=5)
        ref_session = Session(backend="vector", engine="serial")
        narrow, _ = self._drain(ref_session, reqs, weights=weights)
        ref_session.close()
        session = Session(backend="vector", engine="pipelined")
        wide, stats = self._drain(session, reqs, weights=weights,
                                  wide_batches=2, overlap_demux=True)
        session.close()
        assert all(np.array_equal(a, b) for a, b in zip(narrow, wide))
        assert stats["wide_dispatches"] >= 1
        assert stats["overlapped_batches"] == stats["num_batches"]

    def test_wide_failure_falls_back_per_batch(self, weights):
        reqs = _requests(6, seed=9)
        ref_session = Session(backend="vector", engine="serial")
        narrow, _ = self._drain(ref_session, reqs, weights=weights)
        ref_session.close()
        injector = FaultInjector()
        # fire exactly once, on the fused wide run
        injector.add("run", "raise", max_fires=1)
        session = Session(backend="vector", engine="serial",
                          fault_injector=injector)
        wide, stats = self._drain(session, reqs, weights=weights,
                                  wide_batches=2)
        session.close()
        # every request resolves exactly once, to the narrow answer
        assert all(np.array_equal(a, b) for a, b in zip(narrow, wide))
        assert stats["wide_fallbacks"] >= 1
        assert stats["num_completed"] == len(reqs)

    def test_wide_single_batch_stays_narrow(self, weights):
        reqs = _requests(3, seed=2)
        session = Session(backend="vector", engine="serial")
        out, stats = self._drain(session, reqs, weights=weights,
                                 wide_batches=4)
        session.close()
        # one batch only: nothing to fuse, narrow path, no fallback noise
        assert stats["wide_dispatches"] == 0
        assert stats["wide_fallbacks"] == 0
        assert all(isinstance(o, np.ndarray) for o in out)

    def test_wide_batches_validated(self, weights):
        with pytest.raises(ValueError):
            BatchScheduler(weights, SMALL, wide_batches=0)

    def test_replay_bit_identical_under_wide(self, weights, process_engine):
        reqs = _requests(10, seed=13)
        session = Session(backend="vector", engine=process_engine)
        scheduler = BatchScheduler(weights, SMALL, session=session,
                                   masked=True, n_layers=2, max_batch_size=3,
                                   wide_batches=3, log_batches=True)
        ids = scheduler.submit_many(reqs)
        results = scheduler.drain()
        assert scheduler.replay_bit_identical(results)
        scheduler.close()
        session.close()


# ---------------------------------------------------------------------------
# The hypothesis differential (satellite test-coverage task)
# ---------------------------------------------------------------------------


lengths_strategy = st.lists(st.integers(min_value=1, max_value=9),
                            min_size=2, max_size=6)


class TestWideDifferential:
    @settings(max_examples=10, deadline=None)
    @given(lengths=lengths_strategy,
           masked=st.booleans(),
           depth=st.sampled_from([1, 2]),
           n_shards=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_fusion_sharding_process_pool_bit_identical(
            self, weights, serial_session, process_session, lengths,
            masked, depth, n_shards, seed):
        """Fused + sharded + process-pool execution == K independent
        serial runs, bit for bit, with zero vector fallbacks."""
        rng = np.random.default_rng(seed)
        packed = np.concatenate(
            [rng.standard_normal((n, SMALL.hidden_size)).astype(np.float32)
             for n in lengths], axis=0)
        fallbacks_before = serial_session.stats()["codegen"]["fallbacks"]

        # reference: each sequence as its own independent serial run
        refs = []
        offset = 0
        for n in lengths:
            program = encoder_stack_program((n,), weights, SMALL,
                                            masked=masked, n_layers=depth,
                                            session=serial_session)
            refs.append(serial_session.run(
                program, {"tokens": packed[offset:offset + n]})["out_tokens"])
            offset += n
        ref = np.concatenate(refs, axis=0)

        # single-sequence shards, fused, through the process pool: the
        # parts of the merged program are exactly the per-request
        # programs above, so equality is structural, not numerical luck.
        build = lambda ls: build_encoder_stack_program(
            ls, weights, SMALL, masked=masked, n_layers=depth)
        sharded = shard_program(
            build, lengths, len(lengths),
            build_fused=lambda groups: build_encoder_wide_program(
                groups, weights, SMALL, masked=masked, n_layers=depth))
        for session in (serial_session, process_session):
            out = session.run_sharded(sharded, {"tokens": packed})
            assert np.array_equal(out["out_tokens"], ref)

        # coarser shards (sequences grouped) through the serial engine
        coarse = shard_program(build, lengths, n_shards)
        out = serial_session.run_sharded(coarse, {"tokens": packed})
        assert np.array_equal(out["out_tokens"], ref)

        assert serial_session.stats()["codegen"]["fallbacks"] == \
            fallbacks_before


class TestGetEngine:
    def test_process_engine_by_name(self):
        engine = get_engine("process")
        assert isinstance(engine, ProcessPoolEngine)
        engine.close()

    def test_instances_pass_through(self):
        engine = SerialEngine()
        assert get_engine(engine) is engine
