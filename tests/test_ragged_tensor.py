"""Tests for the RaggedTensor runtime object."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.ragged_tensor import RaggedTensor, ragged_from_lengths
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.storage import RaggedLayout


def layout_2d(lengths, pad=1):
    batch, seq = Dim("batch"), Dim("seq")
    return RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths, pad=pad)


class TestConstruction:
    def test_zeros(self):
        t = RaggedTensor.zeros(layout_2d([3, 1, 2]))
        assert t.nnz == 6
        assert float(np.abs(t.data).sum()) == 0.0

    def test_buffer_size_checked(self):
        with pytest.raises(StorageError):
            RaggedTensor(layout_2d([3, 1]), np.zeros(3, dtype=np.float32))

    def test_from_slices_and_back(self):
        lengths = [3, 1, 2]
        slices = [np.arange(n, dtype=np.float32) for n in lengths]
        t = RaggedTensor.from_slices(layout_2d(lengths), slices)
        for b, expected in enumerate(slices):
            assert np.array_equal(t.valid_slice(b), expected)

    def test_from_slices_wrong_count(self):
        with pytest.raises(StorageError):
            RaggedTensor.from_slices(layout_2d([3, 1]), [np.zeros(3)])

    def test_from_dense_roundtrip(self):
        lengths = [3, 1, 2]
        dense = np.arange(9, dtype=np.float32).reshape(3, 3)
        t = RaggedTensor.from_dense(layout_2d(lengths), dense)
        back = t.to_dense(fill=0.0)
        for b, n in enumerate(lengths):
            assert np.array_equal(back[b, :n], dense[b, :n])
            assert np.all(back[b, n:] == 0.0)

    def test_random_reproducible(self):
        a = RaggedTensor.random(layout_2d([3, 2]), seed=7)
        b = RaggedTensor.random(layout_2d([3, 2]), seed=7)
        assert np.array_equal(a.data, b.data)

    def test_ragged_from_lengths_helper(self):
        t = ragged_from_lengths([3, 1, 2], inner_shape=(4,), pad=2, seed=1)
        assert t.valid_slice(0).shape == (3, 4)
        assert t.storage_slice_shape(1) == (2, 4)


class TestAccess:
    def test_getitem_setitem(self):
        t = RaggedTensor.zeros(layout_2d([3, 1, 2]))
        t[(1, 0)] = 5.0
        assert t[(1, 0)] == 5.0
        assert t[(0, 0)] == 0.0

    def test_slice_view_is_writable(self):
        t = RaggedTensor.zeros(layout_2d([3, 1, 2]))
        t.slice_view(0)[...] = 2.0
        assert t[(0, 2)] == 2.0

    def test_valid_vs_storage_shape_with_padding(self):
        t = RaggedTensor.zeros(layout_2d([3, 1, 2], pad=4))
        assert t.valid_slice_shape(1) == (1,)
        assert t.storage_slice_shape(1) == (4,)

    def test_set_slice_shape_checked(self):
        t = RaggedTensor.zeros(layout_2d([3, 1]))
        with pytest.raises(StorageError):
            t.set_slice(0, np.zeros(2, dtype=np.float32))

    def test_iter_slices(self):
        lengths = [3, 1, 2]
        t = RaggedTensor.random(layout_2d(lengths), seed=0)
        sizes = [v.shape[0] for _, v in t.iter_slices()]
        assert sizes == lengths


class TestComparison:
    def test_allclose_against_dense(self):
        lengths = [3, 2]
        dense = np.random.default_rng(0).standard_normal((2, 3)).astype(np.float32)
        t = RaggedTensor.from_dense(layout_2d(lengths), dense)
        assert t.allclose(dense)

    def test_allclose_ignores_padding_garbage(self):
        lengths = [3, 2]
        t = RaggedTensor.random(layout_2d(lengths, pad=4), seed=0)
        other = RaggedTensor.random(layout_2d(lengths, pad=1), seed=1)
        for b, v in t.iter_slices():
            other.valid_slice(b)[...] = v
        # storage padding differs and contains different garbage, but the
        # valid regions match.
        assert t.allclose(other)

    def test_allclose_detects_difference(self):
        lengths = [3, 2]
        a = RaggedTensor.random(layout_2d(lengths), seed=0)
        b = a.copy()
        b[(0, 0)] = b[(0, 0)] + 1.0
        assert not a.allclose(b)

    def test_max_abs_diff(self):
        lengths = [2, 2]
        a = RaggedTensor.zeros(layout_2d(lengths))
        b = a.copy()
        b[(1, 1)] = 3.0
        assert a.max_abs_diff(b) == pytest.approx(3.0)
