"""Fault tolerance: injection, isolation, degradation, deadlines, shed.

Three layers of guarantees are pinned down here:

* the :class:`FaultInjector` itself is deterministic (same seed, same
  schedule), transparent when disabled, and honours its matching rules;
* each recovery path of the serving stack -- compile degradation,
  poison-request bisection, serial-engine retry, demux recovery,
  deadline drops, backpressure shed -- produces structured results while
  every *other* request's output stays bit-identical to a fault-free run;
* the exactly-once property: under arbitrary single-fault schedules,
  every submitted request resolves to exactly one terminal answer (its
  output rows or one ``FailedResult``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    CompileError,
    CoraError,
    DeadlineExceeded,
    ExecutionError,
    QueueFull,
)
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import (
    BatchScheduler,
    FailedResult,
    Fault,
    FaultInjector,
    Request,
    RequestQueue,
    RequestState,
)
from repro.serving.faults import _corrupt

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

WEIGHTS = EncoderWeights.random(SMALL, seed=0)

LENGTHS = (3, 7, 5, 2, 9, 6, 4, 8)


def _requests(lengths=LENGTHS, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), SMALL.hidden_size))
            .astype(np.float32) for n in lengths]


def _scheduler(injector=None, *, engine="serial", **kwargs):
    session = Session(backend="vector", engine=engine,
                      fault_injector=injector)
    return BatchScheduler(WEIGHTS, SMALL, session=session, masked=True,
                          max_batch_size=4, bucket_tolerance=2, **kwargs)


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference drain over the shared stream."""
    scheduler = _scheduler()
    ids = scheduler.submit_many(_requests())
    return ids, scheduler.drain()


def _assert_bit_identical_except(baseline, ids, results, excluded=()):
    ref_ids, ref = baseline
    for a, b in zip(ref_ids, ids):
        if b in excluded:
            continue
        assert isinstance(results[b], np.ndarray)
        assert np.array_equal(ref[a], results[b])


# ---------------------------------------------------------------------------
# The injector itself
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_validates_points_and_actions(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.add("nonsense")
        with pytest.raises(ValueError):
            injector.add("run", action="explode")
        with pytest.raises(ValueError):
            Fault(point="run", probability=1.5)
        with pytest.raises(ValueError):
            Fault(point="run", delay_s=-1.0)
        with pytest.raises(ValueError):
            injector.fire("nonsense")

    def test_disabled_injector_is_transparent(self):
        injector = FaultInjector(enabled=False)
        injector.add("run", error=ExecutionError, max_fires=None)
        payload = {"x": np.zeros((3, 2))}
        assert injector.fire("run", payload) is payload
        assert injector.stats()["total_fires"] == 0
        assert injector.stats()["calls"]["run"] == 0

    def test_call_index_matching(self):
        injector = FaultInjector()
        injector.add("run", calls={1}, max_fires=None)
        injector.fire("run")  # call 0: no fire
        with pytest.raises(ExecutionError):
            injector.fire("run")  # call 1: fires
        injector.fire("run")  # call 2: no fire
        assert injector.fires["run"] == 1

    def test_max_fires_and_request_matching(self):
        injector = FaultInjector()
        fault = injector.add("run", request_id=7, max_fires=2)
        injector.fire("run", request_ids=frozenset({1, 2}))  # no match
        for _ in range(2):
            with pytest.raises(ExecutionError):
                injector.fire("run", request_ids=frozenset({7}))
        injector.fire("run", request_ids=frozenset({7}))  # budget spent
        assert fault.fired == 2

    def test_ambient_context_merging(self):
        injector = FaultInjector()
        injector.add("run", request_id=3, max_fires=None)
        injector.set_ambient(request_ids=frozenset({3}))
        with pytest.raises(ExecutionError):
            injector.fire("run")
        # Explicit context overrides the ambient one.
        injector.fire("run", request_ids=frozenset({4}))

    def test_probability_schedule_is_seed_deterministic(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed)
            injector.add("run", probability=0.5, max_fires=None)
            fired = []
            for _ in range(32):
                try:
                    injector.fire("run")
                    fired.append(False)
                except ExecutionError:
                    fired.append(True)
            return fired

        assert schedule(11) == schedule(11)
        assert any(schedule(11)) and not all(schedule(11))

    def test_reset_reproduces_schedule(self):
        injector = FaultInjector(seed=5)
        fault = injector.add("compile", error=CompileError, max_fires=1)
        with pytest.raises(CompileError):
            injector.fire("compile")
        injector.fire("compile")  # exhausted
        injector.reset()
        assert fault.fired == 0
        assert injector.stats()["total_fires"] == 0
        with pytest.raises(CompileError):
            injector.fire("compile")

    def test_delay_and_corrupt_actions(self):
        injector = FaultInjector()
        injector.add("demux", action="delay", delay_s=0.0)
        injector.add("demux", action="corrupt")
        out = injector.fire("demux", np.zeros((4, 2)))
        assert out.shape == (3, 2)

    def test_corrupt_helper_shapes(self):
        assert _corrupt(np.zeros((5, 3))).shape == (4, 3)
        corrupted = _corrupt({"a": np.zeros((2, 2)), "b": "str"})
        assert corrupted["a"].shape == (1, 2)
        assert corrupted["b"] == "str"
        assert _corrupt(None) is None


# ---------------------------------------------------------------------------
# Request lifecycle + bounded queue
# ---------------------------------------------------------------------------


class TestRequestLifecycle:
    def test_terminal_exactly_once(self):
        request = Request(request_id=0, hidden=np.zeros((2, 4), np.float32))
        assert request.state is RequestState.PENDING
        with pytest.raises(ValueError):
            request.mark(RequestState.PENDING)
        request.mark(RequestState.COMPLETED)
        with pytest.raises(CoraError):
            request.mark(RequestState.FAILED)
        with pytest.raises(CoraError):
            request.mark(RequestState.COMPLETED)

    def test_expiry(self):
        request = Request(request_id=0, hidden=np.zeros((2, 4), np.float32),
                          deadline=10.0)
        assert not request.expired(9.9)
        assert request.expired(10.0)
        no_deadline = Request(request_id=1,
                              hidden=np.zeros((2, 4), np.float32))
        assert not no_deadline.expired(1e9)

    def test_bounded_queue_reject_newest(self):
        queue = RequestQueue(capacity=2)
        first = [queue.submit(h) for h in _requests((2, 3))]
        rejected = queue.submit(_requests((4,))[0])
        assert len(queue) == 2
        assert rejected not in [r.request_id for r in queue.pop(5)]
        (shed,) = queue.drain_shed()
        assert shed.request_id == rejected
        assert shed.state is RequestState.REJECTED
        assert queue.rejected == 1
        assert queue.drain_shed() == []
        assert first == sorted(first)

    def test_bounded_queue_drop_expired_first(self):
        clock = {"t": 0.0}
        queue = RequestQueue(capacity=2, shed_policy="drop_expired_first",
                             clock=lambda: clock["t"])
        stale = queue.submit(_requests((2,))[0], deadline_s=1.0)
        queue.submit(_requests((3,))[0])
        clock["t"] = 5.0  # the first request is now expired
        fresh = queue.submit(_requests((4,))[0])
        pending = [r.request_id for r in queue.pop(5)]
        assert stale not in pending and fresh in pending
        (shed,) = queue.drain_shed()
        assert shed.request_id == stale
        assert shed.state is RequestState.TIMED_OUT
        assert queue.expired_dropped == 1

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)
        with pytest.raises(ValueError):
            RequestQueue(shed_policy="whatever")
        queue = RequestQueue()
        with pytest.raises(ValueError):
            queue.submit(np.zeros((2, 4), np.float32), deadline_s=-1.0)
        with pytest.raises(ValueError):
            queue.submit(np.zeros((2, 4), np.float32), max_retries=-1)


# ---------------------------------------------------------------------------
# Admission control at the scheduler
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_hidden_size_mismatch_rejected_at_submit(self):
        scheduler = _scheduler()
        with pytest.raises(ValueError, match="request must be"):
            scheduler.submit(
                np.zeros((4, SMALL.hidden_size + 1), np.float32))
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((4,), np.float32))
        assert scheduler.pending == 0

    def test_validate_finite_flag(self):
        bad = np.zeros((4, SMALL.hidden_size), np.float32)
        bad[1, 2] = np.nan
        lax = _scheduler()
        lax.submit(bad)  # accepted without the flag (seed behaviour)
        strict = _scheduler(validate_finite=True)
        with pytest.raises(ValueError, match="non-finite"):
            strict.submit(bad)
        bad[1, 2] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            strict.submit(bad)

    def test_scheduler_validates_new_parameters(self):
        with pytest.raises(ValueError):
            _scheduler(max_retries=-1)
        with pytest.raises(ValueError):
            _scheduler(retry_backoff_s=-0.1)

    def test_rejected_requests_resolve_as_failed_results(self):
        scheduler = _scheduler(queue_capacity=3)
        ids = scheduler.submit_many(_requests((2, 3, 4, 5, 6)))
        results = scheduler.drain()
        assert sorted(results) == sorted(ids)
        for rid in ids[3:]:
            failure = results[rid]
            assert isinstance(failure, FailedResult)
            assert failure.state is RequestState.REJECTED
            assert failure.error_type == QueueFull.__name__
        stats = scheduler.stats()
        assert stats["rejected_requests"] == 2
        assert stats["shed_rejected"] == 2
        assert stats["num_completed"] == 3


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_requests_dropped_at_batch_formation(self, baseline):
        clock = {"t": 0.0}
        scheduler = _scheduler(clock=lambda: clock["t"])
        stream = _requests()
        ids = scheduler.submit_many(stream[:4], deadline_s=1.0)
        late = scheduler.submit_many(stream[4:])  # no deadline
        clock["t"] = 2.0
        results = scheduler.drain()
        assert sorted(results) == sorted(ids + late)
        for rid in ids:
            assert isinstance(results[rid], FailedResult)
            assert results[rid].state is RequestState.TIMED_OUT
            assert results[rid].error_type == DeadlineExceeded.__name__
        for rid in late:
            assert isinstance(results[rid], np.ndarray)
        stats = scheduler.stats()
        assert stats["timed_out_requests"] == 4
        # No compute was wasted on the expired requests.
        assert stats["num_completed"] == len(late)

    def test_default_deadline_applies(self):
        clock = {"t": 0.0}
        scheduler = _scheduler(clock=lambda: clock["t"],
                               default_deadline_s=1.0)
        (rid,) = scheduler.submit_many(_requests((4,)))
        clock["t"] = 5.0
        results = scheduler.drain()
        assert results[rid].state is RequestState.TIMED_OUT


# ---------------------------------------------------------------------------
# The fault matrix: one recovery path per injection point
# ---------------------------------------------------------------------------


class TestFaultMatrix:
    def test_with_injector_attached_but_no_faults_bit_identical(self,
                                                                baseline):
        scheduler = _scheduler(FaultInjector(seed=0))
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        stats = scheduler.stats()
        assert stats["failed_requests"] == 0
        assert stats["degraded_batches"] == 0
        assert stats["isolation_runs"] == 0

    def test_disabled_injector_bit_identical(self, baseline):
        injector = FaultInjector(seed=0, enabled=False)
        injector.add("compile", error=CompileError, max_fires=None)
        injector.add("run", max_fires=None)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        assert injector.stats()["total_fires"] == 0

    def test_compile_fault_degrades_to_opbyop(self, baseline):
        injector = FaultInjector(seed=1)
        injector.add("compile", error=CompileError, max_fires=1)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        # Degradation recovered the whole batch: nothing failed, and the
        # op-by-op path (same codegen backend) is bit-identical.
        _assert_bit_identical_except(baseline, ids, results)
        stats = scheduler.stats()
        assert stats["degraded_batches"] == 1
        assert stats["failed_requests"] == 0
        assert injector.fires["compile"] == 1

    def test_poison_request_isolated_by_bisection(self, baseline):
        injector = FaultInjector(seed=2)
        injector.add("run", request_id=2, error=ExecutionError,
                     max_fires=None)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        poison = ids[2]
        failure = results[poison]
        assert isinstance(failure, FailedResult)
        assert failure.state is RequestState.FAILED
        assert failure.error_type == "ExecutionError"
        assert "injected" in failure.message
        assert failure.attempts >= 1
        _assert_bit_identical_except(baseline, ids, results,
                                     excluded={poison})
        stats = scheduler.stats()
        assert stats["failed_requests"] == 1
        assert stats["isolation_runs"] > 0
        assert stats["num_completed"] == len(ids) - 1

    def test_corrupted_output_detected_and_isolated(self, baseline):
        injector = FaultInjector(seed=3)
        injector.add("run", request_id=5, action="corrupt", max_fires=None)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        poison = ids[5]
        assert isinstance(results[poison], FailedResult)
        assert results[poison].error_type == "ExecutionError"
        assert "shape" in results[poison].message
        _assert_bit_identical_except(baseline, ids, results,
                                     excluded={poison})

    def test_retry_budget_recovers_transient_fault(self, baseline):
        # The fault fires three times -- full batch, bisected half, and
        # the first singleton attempt; a budget of three isolated retries
        # outlasts it, so the request completes instead of failing.
        injector = FaultInjector(seed=4)
        injector.add("run", request_id=1, error=ExecutionError, max_fires=3)
        scheduler = _scheduler(injector, max_retries=3)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        stats = scheduler.stats()
        assert stats["failed_requests"] == 0
        assert stats["retries"] >= 1

    def test_pipelined_worker_fault_retries_on_serial(self, baseline):
        injector = FaultInjector(seed=5)
        injector.add("pipelined_worker", error=ExecutionError, max_fires=1)
        scheduler = _scheduler(injector, engine="pipelined")
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        stats = scheduler.stats()
        assert stats["engine_fallbacks"] == 1
        assert stats["failed_requests"] == 0
        scheduler.session.close()

    def test_demux_fault_recovers_in_overlapped_drain(self, baseline):
        for action in ("raise", "corrupt"):
            injector = FaultInjector(seed=6)
            injector.add("demux", action=action, max_fires=1)
            scheduler = _scheduler(injector, overlap_demux=True)
            ids = scheduler.submit_many(_requests())
            results = scheduler.drain()
            _assert_bit_identical_except(baseline, ids, results)
            stats = scheduler.stats()
            assert stats["demux_recoveries"] == 1
            assert stats["failed_requests"] == 0
            scheduler.close()

    def test_demux_fault_recovers_in_synchronous_step(self, baseline):
        injector = FaultInjector(seed=7)
        injector.add("demux", max_fires=1)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        assert scheduler.stats()["demux_recoveries"] == 1

    def test_persistent_demux_fault_fails_batch_and_pool_survives(self):
        injector = FaultInjector(seed=8)
        injector.add("demux", error=ExecutionError, max_fires=None)
        scheduler = _scheduler(injector, overlap_demux=True)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        assert sorted(results) == sorted(ids)
        for rid in ids:
            assert isinstance(results[rid], FailedResult)
            assert results[rid].state is RequestState.FAILED
        # The pool is not wedged: close is idempotent and the scheduler
        # still drains cleanly afterwards.
        scheduler.close()
        scheduler.close()
        injector.enabled = False
        ids2 = scheduler.submit_many(_requests(seed=1))
        results2 = scheduler.drain()
        assert all(isinstance(results2[r], np.ndarray) for r in ids2)
        scheduler.close()

    def test_delay_fault_changes_nothing_but_time(self, baseline):
        injector = FaultInjector(seed=9)
        injector.add("run", action="delay", delay_s=0.001, max_fires=2)
        scheduler = _scheduler(injector)
        ids = scheduler.submit_many(_requests())
        results = scheduler.drain()
        _assert_bit_identical_except(baseline, ids, results)
        assert injector.fires["run"] == 2

    def test_stats_report_all_fault_counters(self):
        scheduler = _scheduler()
        stats = scheduler.stats()
        for key in ("failed_requests", "timed_out_requests",
                    "rejected_requests", "retries", "isolation_runs",
                    "degraded_batches", "engine_fallbacks",
                    "demux_recoveries", "shed_rejected", "shed_expired"):
            assert stats[key] == 0


# ---------------------------------------------------------------------------
# Exactly-once delivery under random single-fault schedules
# ---------------------------------------------------------------------------


class TestExactlyOnce:
    @settings(max_examples=12, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=8),
           point=st.sampled_from(["compile", "run", "demux"]),
           action=st.sampled_from(["raise", "corrupt"]),
           call=st.integers(min_value=0, max_value=2),
           target=st.integers(min_value=0, max_value=7),
           seed=st.integers(min_value=0, max_value=3))
    def test_every_request_reaches_exactly_one_terminal_state(
            self, lengths, point, action, call, target, seed):
        injector = FaultInjector(seed=seed)
        if point == "run":
            # Anchor run faults to a request so the poison is stable
            # under bisection; compile/demux faults are call-indexed.
            injector.add(point, action=action,
                         request_id=target % len(lengths), max_fires=None)
        else:
            injector.add(point, action=action,
                         error=CompileError if point == "compile"
                         else ExecutionError,
                         calls={call}, max_fires=1)
        scheduler = _scheduler(injector, max_retries=seed % 2)
        ids = scheduler.submit_many(_requests(lengths, seed=seed))
        results = scheduler.drain()

        # Exactly once: every id resolves exactly once, to rows or to a
        # structured failure in a terminal state; nothing is pending.
        assert sorted(results) == sorted(ids)
        assert scheduler.pending == 0
        assert scheduler.step() == {}
        for rid in ids:
            value = results[rid]
            assert isinstance(value, (np.ndarray, FailedResult))
            if isinstance(value, FailedResult):
                assert value.state.terminal
                assert value.error_type
        # Accounting is consistent: completed + failed covers every id.
        stats = scheduler.stats()
        n_failed = sum(isinstance(results[r], FailedResult) for r in ids)
        assert stats["num_completed"] == len(ids) - n_failed
