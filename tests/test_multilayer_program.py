"""Differential suite for N-layer stacked encoder programs.

The whole-model compilation boundary must not change numerics: an N-layer
stack declared as *one* program (single arena plan spanning every layer)
must be bit-identical to N sequential ``Session.run`` calls over per-layer
programs and to N passes of the op-by-op compiled path, for masked and
unmasked SDPA and N in {1, 2, 4}, with zero vector-backend fallbacks.
Alongside, regression tests pin the cross-layer arena reuse: layer k+1
must recycle layer k's dead slabs (stacked peak strictly below the sum of
per-layer plans) while the double-buffer rule still holds at layer
boundaries.
"""

import numpy as np
import pytest

from repro.core.executor import Executor
from repro.core.planner import plan_program
from repro.core.program import ProgramError
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_program,
    build_encoder_stack_program,
    encoder_program,
    encoder_stack_program,
    run_encoder_layer_opbyop,
    run_encoder_stack_numeric,
)

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)

LENGTHS = (7, 3, 5)


def _hidden(lengths, seed=0, config=SMALL):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _layer_weights(n, base_seed=0):
    return [EncoderWeights.random(SMALL, seed=base_seed + i) for i in range(n)]


def _bit_identical(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# Differential: one stacked program vs N sequential runs vs op-by-op
# ---------------------------------------------------------------------------


class TestStackDifferential:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("n_layers", [1, 2, 4])
    def test_stack_bit_identical_to_sequential_and_opbyop(self, n_layers,
                                                          masked):
        hidden = _hidden(LENGTHS, seed=1)
        weights = _layer_weights(n_layers)
        session = Session(backend="vector",
                          executor=Executor(backend="vector"))

        stacked = run_encoder_stack_numeric(hidden, weights, SMALL,
                                            masked=masked, session=session)

        # N sequential Session.run calls over per-layer programs.
        programs = [encoder_program(LENGTHS, w, SMALL, masked=masked,
                                    session=session) for w in weights]
        sequential = session.run_stack(
            programs, {"tokens": np.concatenate(hidden)})["out_tokens"]

        # N passes of the op-by-op compiled path.
        opbyop = hidden
        for w in weights:
            opbyop = run_encoder_layer_opbyop(opbyop, w, SMALL, masked=masked,
                                              backend="vector").hidden

        assert np.array_equal(np.concatenate(stacked.hidden), sequential)
        assert _bit_identical(stacked.hidden, opbyop)
        stats = session.stats()["codegen"]
        assert stats["fallbacks"] == 0, stats["fallback_reasons"]

    @pytest.mark.parametrize("masked", [False, True])
    def test_shared_weights_stack_matches_repeated_layer(self, masked):
        hidden = _hidden((4, 6), seed=2)
        weights = EncoderWeights.random(SMALL, seed=2)
        session = Session(backend="vector")
        stacked = run_encoder_stack_numeric(hidden, weights, SMALL,
                                            masked=masked, n_layers=3,
                                            session=session)
        ref = hidden
        for _ in range(3):
            ref = run_encoder_layer_opbyop(ref, weights, SMALL, masked=masked,
                                           backend="vector").hidden
        assert _bit_identical(stacked.hidden, ref)

    def test_stack_program_memoized_per_signature(self):
        weights = _layer_weights(2)
        session = Session(backend="vector")
        first = encoder_stack_program(LENGTHS, weights, SMALL,
                                      session=session)
        again = encoder_stack_program(list(LENGTHS), weights, SMALL,
                                      session=session)
        assert first is again
        other = encoder_stack_program((7, 3, 6), weights, SMALL,
                                      session=session)
        assert other is not first

    def test_weight_count_must_match_n_layers(self):
        with pytest.raises(ValueError):
            build_encoder_stack_program(LENGTHS, _layer_weights(2), SMALL,
                                        n_layers=3)
        with pytest.raises(ValueError):
            build_encoder_stack_program(LENGTHS, [], SMALL)
        with pytest.raises(ValueError):
            build_encoder_stack_program(LENGTHS, EncoderWeights.zeros(SMALL),
                                        SMALL, n_layers=0)

    def test_shared_weights_default_depth_is_config_num_layers(self):
        # A single weight set with no explicit n_layers builds the
        # MODEL's depth (config.num_layers), not a silent single layer.
        program = build_encoder_stack_program(
            LENGTHS, EncoderWeights.zeros(SMALL), SMALL)
        assert SMALL.num_layers == 2
        assert "L1.ln2" in {n.name for n in program.nodes}
        assert "L2.ln2" not in {n.name for n in program.nodes}

    def test_run_stack_requires_programs_and_pipeable_shapes(self):
        session = Session(backend="vector")
        with pytest.raises(ProgramError):
            session.run_stack([], {"tokens": np.zeros((1, 1), np.float32)})


# ---------------------------------------------------------------------------
# Cross-layer arena reuse regression
# ---------------------------------------------------------------------------


class TestCrossLayerArenaReuse:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("n_layers", [2, 4])
    def test_stacked_peak_below_sum_of_per_layer_plans(self, n_layers,
                                                       masked):
        weights = EncoderWeights.zeros(SMALL)
        stacked = plan_program(build_encoder_stack_program(
            LENGTHS, weights, SMALL, masked=masked, n_layers=n_layers))
        per_layer = plan_program(build_encoder_program(
            LENGTHS, weights, SMALL, masked=masked))
        assert stacked.arena_bytes < n_layers * per_layer.arena_bytes
        # Cross-layer reuse keeps the stack near ONE layer's working set,
        # not N of them: allow headroom for the boundary double buffer.
        assert stacked.arena_bytes < 2 * per_layer.arena_bytes
        # The greedy packing never reserves less than the liveness bound.
        assert stacked.arena_bytes >= stacked.peak_live_bytes

    def test_layer_k_plus_1_reuses_layer_k_dead_slabs(self):
        plan = plan_program(build_encoder_stack_program(
            LENGTHS, EncoderWeights.zeros(SMALL), SMALL, n_layers=2))
        slabs_l0 = {slab for name, slab in plan.slab_of.items()
                    if name.startswith("L0.")}
        slabs_l1 = {slab for name, slab in plan.slab_of.items()
                    if name.startswith("L1.")}
        # Layer 1 lives almost entirely in layer 0's recycled slabs; the
        # only new slab it may open is the boundary double buffer (the
        # residual input L0.out_tokens pins its slab until L1.resid1).
        assert slabs_l1 & slabs_l0
        assert len(slabs_l1 - slabs_l0) <= 1

    def test_double_buffer_rule_at_layer_boundary(self):
        program = build_encoder_stack_program(
            LENGTHS, EncoderWeights.zeros(SMALL), SMALL, n_layers=2)
        plan = plan_program(program)
        # The boundary value L0.out_tokens feeds layer 1's first
        # projection AND its first residual add, so it must stay live
        # until L1.resid1 executes ...
        step_of = {program.nodes[idx].name: step
                   for step, idx in enumerate(plan.order)}
        birth, death = plan.liveness["L0.out_tokens"]
        assert birth == step_of["L0.ln2"]
        assert death == step_of["L1.resid1"]
        # ... and during that overlap it may not share a slab with any
        # value layer 1 produces while it is still live (double buffering
        # across the layer boundary).
        boundary_slab = plan.slab_of["L0.out_tokens"]
        for name, (b, d) in plan.liveness.items():
            if name.startswith("L1.") and b <= death:
                assert plan.slab_of[name] != boundary_slab, name

    def test_memory_report_exposes_cross_layer_savings(self):
        from repro.analysis.memory import intermediate_memory_report

        report = intermediate_memory_report(LENGTHS, SMALL, n_layers=4)
        assert report["arena_bytes"] < report["per_layer_sum_bytes"]
        assert report["cross_layer_savings"] > 0.4
        assert report["peak_live_bytes"] <= report["arena_bytes"]
        single = intermediate_memory_report(LENGTHS, SMALL)
        assert single["per_layer_sum_bytes"] == single["arena_bytes"]
