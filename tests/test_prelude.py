"""Tests for prelude generation (storage offsets, fusion maps, bulk padding)."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.prelude import (
    PreludeBuilder,
    build_fusion_maps,
    build_row_offsets,
    build_sparse_scheme_aux,
    bulk_pad_lengths,
)
from repro.core.storage import RaggedLayout


class TestRowOffsets:
    def test_basic(self):
        offsets = build_row_offsets([5, 2, 3])
        assert list(offsets) == [0, 5, 7, 10]

    def test_with_padding_matches_figure4(self):
        # Figure 4: output rows padded to a multiple of 4 -> 0, 8, 12, 16
        offsets = build_row_offsets([5, 2, 3], pad=4)
        assert list(offsets) == [0, 8, 12, 16]

    def test_inner_factor(self):
        offsets = build_row_offsets([2, 3], inner_factor=4)
        assert list(offsets) == [0, 8, 20]


class TestFusionMaps:
    def test_figure4_example(self):
        # Lengths [5, 2, 3] with loop padding 2 -> padded [6, 2, 4]
        maps = build_fusion_maps([5, 2, 3], pad=2)
        assert maps.fused_extent == 12
        assert list(maps.foif_row) == [0, 6, 8]
        assert maps.ffo[0] == 0 and maps.ffo[6] == 1 and maps.ffo[8] == 2
        assert maps.ffi[7] == 1

    def test_inverse_axioms(self):
        maps = build_fusion_maps([4, 1, 0, 3])
        assert maps.check_inverses()

    def test_foif(self):
        maps = build_fusion_maps([3, 2])
        assert maps.foif(1, 1) == 4
        assert maps.ffo[maps.foif(1, 1)] == 1
        assert maps.ffi[maps.foif(1, 1)] == 1

    def test_zero_length_rows(self):
        maps = build_fusion_maps([0, 3, 0, 2])
        assert maps.fused_extent == 5
        assert maps.check_inverses()

    def test_memory_accounting(self):
        maps = build_fusion_maps([5, 5, 5])
        assert maps.memory_bytes == maps.ffo.nbytes + maps.ffi.nbytes + maps.foif_row.nbytes


class TestBulkPadding:
    def test_no_padding_needed(self):
        lens, extra = bulk_pad_lengths([32, 32], 64)
        assert extra == 0
        assert list(lens) == [32, 32]

    def test_padding_sequence_appended(self):
        lens, extra = bulk_pad_lengths([30, 30], 64)
        assert extra == 4
        assert list(lens) == [30, 30, 4]
        assert int(lens.sum()) % 64 == 0

    def test_relative_padding_small_for_large_batches(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(50, 500, size=128)
        padded, extra = bulk_pad_lengths(lengths, 64)
        assert extra / lengths.sum() < 0.01


class TestPreludeBuilder:
    def _layouts(self, lengths):
        batch, seq = Dim("batch"), Dim("seq")
        return {
            "A": RaggedLayout([batch, seq],
                              [ConstExtent(len(lengths)), VarExtent(batch, lengths)]),
        }

    def test_builds_storage_and_fusion(self):
        lengths = [5, 2, 3]
        result = PreludeBuilder().build(self._layouts(lengths),
                                        fused_loops={"tokens": (lengths, 1)})
        assert "A" in result.storage_aux
        assert list(result.storage_aux["A"]) == [0, 5, 7, 10]
        assert result.fusion_maps["tokens"].fused_extent == 10
        assert result.total_memory_bytes > 0
        assert result.total_time_s >= 0

    def test_copy_time_only_for_device(self):
        lengths = [5, 2, 3]
        with_copy = PreludeBuilder().build(self._layouts(lengths), copy_to_device=True)
        without = PreludeBuilder().build(self._layouts(lengths), copy_to_device=False)
        assert with_copy.copy_time_s > 0
        assert without.copy_time_s == 0

    def test_cora_storage_cheaper_than_sparse_scheme(self):
        """The core claim of Section 7.4 / Tables 7-8."""
        lengths = np.random.default_rng(0).integers(80, 512, size=128)
        batch, s1, heads, s2 = Dim("b"), Dim("s1"), Dim("h"), Dim("s2")
        attention = RaggedLayout(
            [batch, s1, heads, s2],
            [ConstExtent(len(lengths)), VarExtent(batch, lengths),
             ConstExtent(8), VarExtent(batch, lengths)],
        )
        cora = PreludeBuilder().build({"X": attention}, copy_to_device=False)
        sparse = build_sparse_scheme_aux(attention)
        assert sparse.memory_bytes > 50 * cora.storage_memory_bytes
        assert sparse.entries > cora.storage_aux["X"].size
