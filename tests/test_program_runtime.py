"""Tests for the ragged program graph runtime (program / planner / session).

Covers the program IR's validation, the liveness + arena planner, the
Session's AOT compile/run path -- including the differential guarantee
that ``Session.run`` is *bit-identical* to op-by-op execution for the
masked and unmasked encoder layers with zero vector-backend fallbacks --
and plan reuse across raggedness signatures (hypothesis property).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import Executor
from repro.core.planner import plan_program, topological_order
from repro.core.program import Program, ProgramError
from repro.core.session import Session, default_session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_program,
    encoder_program,
    run_encoder_layer_numeric,
    run_encoder_layer_opbyop,
)

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)


def _hidden(lengths, seed=0, config=SMALL):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _bit_identical(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a.hidden, b.hidden))


# ---------------------------------------------------------------------------
# Program IR
# ---------------------------------------------------------------------------


class TestProgramIR:
    def test_duplicate_value_rejected(self):
        p = Program("p")
        p.add_input("x", shape=(4,))
        with pytest.raises(ProgramError):
            p.add_input("x", shape=(4,))

    def test_undeclared_input_rejected(self):
        p = Program("p")
        with pytest.raises(ProgramError):
            p.add_host("n", lambda out, x: None, ["missing"],
                       output_shapes={"y": (4,)})

    def test_value_needs_exactly_one_of_layout_shape(self):
        p = Program("p")
        with pytest.raises(ProgramError):
            p.add_input("x")

    def test_output_must_be_produced(self):
        p = Program("p")
        p.add_input("x", shape=(4,))
        with pytest.raises(ProgramError):
            p.mark_output("x")
        with pytest.raises(ProgramError):
            p.mark_output("nope")

    def test_validate_requires_outputs(self):
        p = Program("p")
        p.add_input("x", shape=(4,))
        p.add_host("n", lambda out, x: None, ["x"],
                   output_shapes={"y": (4,)})
        with pytest.raises(ProgramError):
            p.validate()
        p.mark_output("y")
        p.validate()

    def test_kernel_binding_names_validated_at_compile(self):
        from repro.ops.trmm import make_trmm_schedule
        from repro.core.storage import RaggedLayout
        from repro.core.dims import Dim

        p = Program("p")
        p.add_input("L", shape=(4, 4))
        p.add_input("B", shape=(4, 4))
        layout = RaggedLayout([Dim("r"), Dim("c")], [4, 4])
        # Binds the wrong tensor name ("X" instead of "L").
        p.add_kernel("t", make_trmm_schedule(4), {"X": "L", "B": "B"}, layout)
        p.mark_output("t")
        with pytest.raises(ProgramError):
            Session(backend="vector").compile(p)


# ---------------------------------------------------------------------------
# Planner: topological order, liveness, arena assignment
# ---------------------------------------------------------------------------


def _chain_program(n_steps=5, size=64):
    """x -> n0 -> n1 -> ... (each step consumes only the previous value)."""
    p = Program("chain")
    prev = p.add_input("x", shape=(size,))
    for i in range(n_steps):
        (prev,) = p.add_host(f"n{i}", lambda out, a: None, [prev],
                             output_shapes={f"v{i}": (size,)})
    p.mark_output(f"v{n_steps - 1}")
    return p


class TestPlanner:
    def test_topological_order_is_insertion_order(self):
        p = _chain_program()
        assert topological_order(p) == list(range(len(p.nodes)))

    def test_chain_liveness_and_double_buffering(self):
        p = _chain_program(n_steps=5)
        plan = plan_program(p)
        # v0 is born at step 0 and last consumed at step 1.
        assert plan.liveness["v0"] == (0, 1)
        # A node's output never shares a slab with its direct input
        # (producer/consumer lifetimes overlap -> double buffering).
        for i in range(1, 5):
            assert plan.slab_of[f"v{i}"] != plan.slab_of[f"v{i - 1}"]

    def test_chain_reuses_two_slabs(self):
        # A pure chain needs exactly two ping-pong slabs, not five buffers.
        plan = plan_program(_chain_program(n_steps=5))
        assert plan.num_slabs == 2
        assert plan.arena_bytes == pytest.approx(plan.naive_bytes * 2 / 5)

    def test_output_survives_to_program_end(self):
        p = _chain_program(n_steps=3)
        plan = plan_program(p)
        assert plan.liveness["v2"] == (2, 2)
        assert plan.reuse_savings > 0

    def test_fanout_keeps_value_live(self):
        # y is consumed by the *last* node: it must stay live throughout
        # and never share a slab with the values born in between.
        p = Program("fanout")
        x = p.add_input("x", shape=(8,))
        (y,) = p.add_host("produce", lambda out, a: None, [x],
                          output_shapes={"y": (8,)})
        (z,) = p.add_host("middle", lambda out, a: None, [y],
                          output_shapes={"z": (8,)})
        (w,) = p.add_host("late", lambda out, a, b: None, [y, z],
                          output_shapes={"w": (8,)})
        p.mark_output(w)
        plan = plan_program(p)
        assert plan.liveness["y"] == (0, 2)
        assert plan.slab_of["y"] not in (plan.slab_of["z"], plan.slab_of["w"])

    def test_encoder_plan_meets_reuse_target(self):
        program = build_encoder_program([7, 3, 5], EncoderWeights.zeros(SMALL),
                                        SMALL, masked=False)
        plan = plan_program(program)
        assert plan.num_slabs < plan.num_values
        assert plan.reuse_savings >= 0.30
        # Growing slabs never shrinks below any assigned value.
        for name, slab in plan.slab_of.items():
            assert plan.slab_elements[slab] >= plan.value_elements[name]


# ---------------------------------------------------------------------------
# Session: differential correctness against op-by-op execution
# ---------------------------------------------------------------------------


class TestSessionEncoder:
    @pytest.mark.parametrize("masked", [False, True])
    def test_session_bit_identical_to_opbyop(self, masked):
        hidden = _hidden((7, 3, 5), seed=1)
        weights = EncoderWeights.random(SMALL, seed=0)
        session = Session(backend="vector")
        got = run_encoder_layer_numeric(hidden, weights, SMALL, masked=masked,
                                        session=session)
        ref = run_encoder_layer_opbyop(hidden, weights, SMALL, masked=masked,
                                       backend="vector")
        assert _bit_identical(got, ref)

    @pytest.mark.parametrize("masked", [False, True])
    def test_session_matches_numpy_reference(self, masked):
        hidden = _hidden((6, 2, 4), seed=2)
        weights = EncoderWeights.random(SMALL, seed=1)
        got = run_encoder_layer_numeric(hidden, weights, SMALL, masked=masked)
        ref = run_encoder_layer_opbyop(hidden, weights, SMALL, masked=masked)
        for a, b in zip(got.hidden, ref.hidden):
            assert np.allclose(a, b, atol=1e-5)

    def test_zero_vector_backend_fallbacks(self):
        hidden = _hidden((5, 3), seed=3)
        weights = EncoderWeights.random(SMALL, seed=2)
        executor = Executor(backend="vector")
        for masked in (False, True):
            run_encoder_layer_numeric(hidden, weights, SMALL, masked=masked,
                                      executor=executor)
        stats = executor.codegen_stats()
        assert stats["fallbacks"] == 0, stats["fallback_reasons"]
        # 6 unmasked kernels + the additive-mask kernel for masked.
        assert stats["vectorized"] == 7

    def test_repeated_runs_hit_program_cache(self):
        hidden = _hidden((4, 6), seed=4)
        weights = EncoderWeights.random(SMALL, seed=3)
        session = Session(backend="vector")
        first = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        again = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        assert session.program_compiles == 1
        assert session.program_cache_hits >= 1
        assert _bit_identical(first, again)

    def test_outputs_are_copies_not_arena_views(self):
        hidden = _hidden((4, 3), seed=5)
        weights = EncoderWeights.random(SMALL, seed=4)
        session = Session(backend="vector")
        first = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        saved = [h.copy() for h in first.hidden]
        first.hidden[0][...] = -1e9  # mutate the returned buffers
        again = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        assert all(np.array_equal(a, b) for a, b in zip(again.hidden, saved))

    def test_missing_and_misshaped_inputs_rejected(self):
        weights = EncoderWeights.random(SMALL, seed=5)
        session = Session(backend="vector")
        program = encoder_program([4, 3], weights, SMALL, session=session)
        with pytest.raises(ProgramError):
            session.run(program, {})
        with pytest.raises(ProgramError):
            session.run(program, {"tokens": np.zeros((3, SMALL.hidden_size),
                                                     np.float32)})

    def test_session_reset_clears_state(self):
        hidden = _hidden((5, 2), seed=6)
        weights = EncoderWeights.random(SMALL, seed=6)
        session = Session(backend="vector", executor=Executor(backend="vector"))
        before = run_encoder_layer_numeric(hidden, weights, SMALL,
                                           session=session)
        assert session.program_compiles == 1
        session.reset()
        assert session.program_compiles == 0
        assert session.stats()["cached_programs"] == 0
        after = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        assert session.program_compiles == 1
        assert _bit_identical(before, after)

    def test_reset_replays_identical_lower_count_trajectory(self):
        # reset() must start a session-private executor COLD: kernel cache
        # dropped AND lowering/codegen counters zeroed, so a replayed
        # workload reproduces the original lower_count trajectory exactly
        # (repeated benchmark runs must not inherit warm state).
        hidden = _hidden((5, 3, 2), seed=10)
        weights = EncoderWeights.random(SMALL, seed=10)
        session = Session(backend="vector",
                          executor=Executor(backend="vector"))

        def trajectory():
            steps = []
            for masked in (False, True):
                run_encoder_layer_numeric(hidden, weights, SMALL,
                                          masked=masked, session=session)
                codegen = session.stats()["codegen"]
                steps.append((codegen["lower_count"], codegen["vectorized"],
                              codegen["cache_hits"]))
            return steps

        first = trajectory()
        assert first[-1][0] > 0
        session.reset()
        cold = session.stats()["codegen"]
        assert cold["lower_count"] == 0
        assert cold["cache_hits"] == 0 and cold["cache_misses"] == 0
        assert cold["vectorized"] == 0 and cold["fallbacks"] == 0
        assert cold["fallback_reasons"] == {}
        assert trajectory() == first

    def test_reset_clears_signature_stats(self):
        hidden = _hidden((4, 2), seed=11)
        weights = EncoderWeights.random(SMALL, seed=11)
        session = Session(backend="vector")
        program = encoder_program([4, 2], weights, SMALL, session=session)
        session.run(program, {"tokens": np.concatenate(hidden)},
                    signature=(4, 2))
        session.run(program, {"tokens": np.concatenate(hidden)},
                    signature=(4, 2))
        assert session.signature_stats[(4, 2)] == {"hits": 1, "misses": 1}
        assert session.stats()["signature_hits"] == 1
        session.reset()
        assert session.signature_stats == {}
        assert session.stats()["signature_misses"] == 0

    def test_explicit_executor_sessions_are_memoized(self):
        from repro.core.session import session_for_executor

        hidden = _hidden((4, 2), seed=8)
        weights = EncoderWeights.random(SMALL, seed=8)
        executor = Executor(backend="vector")
        run_encoder_layer_numeric(hidden, weights, SMALL, executor=executor)
        run_encoder_layer_numeric(hidden, weights, SMALL, executor=executor)
        session = session_for_executor(executor)
        assert session.program_compiles == 1
        assert session.program_cache_hits >= 1

    def test_stats_report_executor_backend(self):
        session = Session(executor=Executor(backend="scalar"))
        assert session.backend == "scalar"
        assert session.stats()["backend"] == "scalar"

    def test_reset_leaves_shared_executor_cache_alone(self):
        from repro.core.executor import shared_executor

        hidden = _hidden((3, 2), seed=9)
        weights = EncoderWeights.random(SMALL, seed=9)
        session = Session(backend="vector")  # wraps the shared executor
        run_encoder_layer_numeric(hidden, weights, SMALL, session=session)
        executor = shared_executor("vector")
        cached_before = executor.cache_hits + executor.cache_misses
        assert cached_before > 0
        session.reset()
        # The shared executor's kernel cache must survive a session reset:
        # recompiling the program hits the kernel cache, no new lowers.
        lowers_before = executor.lower_count
        run_encoder_layer_numeric(hidden, weights, SMALL, session=session)
        assert executor.lower_count == lowers_before

    def test_dense_node_builders_reject_ragged_values(self):
        from repro.ops.elementwise import add_node, relu_node
        from repro.core.storage import RaggedLayout
        from repro.core.dims import Dim
        from repro.core.extents import ConstExtent, VarExtent

        batch = Dim("batch")
        layout = RaggedLayout(
            [batch, Dim("seq")],
            [ConstExtent(2), VarExtent(batch, np.array([3, 2]))])
        p = Program("p")
        r = p.add_input("r", layout=layout)
        d = p.add_input("d", shape=(5,))
        with pytest.raises(ProgramError):
            relu_node(p, r)
        with pytest.raises(ProgramError):
            add_node(p, r, d)

    def test_prelude_shims_route_to_default_session(self):
        from repro.models.transformer import (
            clear_prelude_memo,
            encoder_layer_workload,
            prelude_memo_stats,
        )

        clear_prelude_memo()
        lengths = np.array([48, 32, 16])
        encoder_layer_workload(lengths, "cora")
        encoder_layer_workload(lengths, "cora")
        stats = prelude_memo_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert default_session().prelude_memo_stats == stats


# ---------------------------------------------------------------------------
# Plan reuse across raggedness signatures (hypothesis property)
# ---------------------------------------------------------------------------


class TestSignatureReuseProperty:
    @settings(max_examples=12, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=5))
    def test_program_runtime_differential_and_plan_reuse(self, lengths):
        hidden = _hidden(lengths, seed=7)
        weights = EncoderWeights.random(SMALL, seed=7)
        session = Session(backend="vector", executor=Executor(backend="vector"))

        got = run_encoder_layer_numeric(hidden, weights, SMALL,
                                        session=session)
        ref = run_encoder_layer_opbyop(hidden, weights, SMALL,
                                       backend="vector")
        assert _bit_identical(got, ref)

        # Same signature again: the compiled program (kernels, plan,
        # arena) is reused, and the replay stays bit-identical.
        compiles = session.program_compiles
        again = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        assert session.program_compiles == compiles
        assert session.program_cache_hits >= 1
        assert _bit_identical(got, again)

        # A different signature compiles a new program without
        # disturbing the cached one.
        other = _hidden([n + 1 for n in lengths], seed=8)
        run_encoder_layer_numeric(other, weights, SMALL, session=session)
        assert session.program_compiles == compiles + 1
        third = run_encoder_layer_numeric(hidden, weights, SMALL,
                                          session=session)
        assert _bit_identical(third, got)
        assert session.stats()["codegen"]["fallbacks"] == 0


# ---------------------------------------------------------------------------
# Kernel-node builders beyond the encoder (vgemm / trmm)
# ---------------------------------------------------------------------------


class TestKernelNodeBuilders:
    def test_vgemm_node_matches_compiled(self):
        from repro.ops.vgemm import (
            random_instances,
            vgemm_compiled,
            vgemm_layouts,
            vgemm_node,
            VgemmProblem,
        )

        problem = VgemmProblem(ms=np.array([3, 5]), ns=np.array([4, 2]),
                               ks=np.array([2, 6]))
        a_list, b_list = random_instances(problem, seed=0)
        layout_a, layout_b, _ = vgemm_layouts(problem.ms, problem.ns,
                                              problem.ks)

        p = Program("vgemm")
        a = p.add_input("A", layout=layout_a)
        b = p.add_input("B", layout=layout_b)
        c = vgemm_node(p, a, b, problem.ms, problem.ns, problem.ks)
        p.mark_output(c)

        from repro.core.ragged_tensor import RaggedTensor

        session = Session(backend="vector")
        out = session.run(p, {
            "A": RaggedTensor.from_slices(layout_a, a_list),
            "B": RaggedTensor.from_slices(layout_b, b_list),
        })[c]
        ref, _ = vgemm_compiled(a_list, b_list)
        for i, r in enumerate(ref):
            assert np.array_equal(out.valid_slice(i), r)

    def test_trmm_node_matches_compiled(self):
        from repro.ops.trmm import make_lower_triangular, trmm_compiled, trmm_node

        n = 9
        lower = make_lower_triangular(n, seed=1)
        dense = np.random.default_rng(2).standard_normal((n, n)).astype(np.float32)
        p = Program("trmm")
        lo = p.add_input("L", shape=(n, n))
        de = p.add_input("B", shape=(n, n))
        t = trmm_node(p, lo, de, n)
        p.mark_output(t)
        out = Session(backend="vector").run(p, {"L": lower, "B": dense})[t]
        ref, _ = trmm_compiled(lower, dense)
        assert np.array_equal(out.to_dense(), ref)


# ---------------------------------------------------------------------------
# Planner-backed memory model
# ---------------------------------------------------------------------------


class TestArenaMemoryModel:
    def test_intermediate_memory_report(self):
        from repro.analysis.memory import intermediate_memory_report

        report = intermediate_memory_report([48, 32, 16, 64], SMALL)
        assert report["arena_bytes"] < report["per_op_bytes"]
        assert report["savings"] >= 0.30
        assert report["num_slabs"] < report["num_values"]

    def test_masked_report_accounts_extra_kernel(self):
        from repro.analysis.memory import intermediate_memory_report

        plain = intermediate_memory_report([12, 8], SMALL, masked=False)
        masked = intermediate_memory_report([12, 8], SMALL, masked=True)
        # The additive-mask kernel adds one intermediate score tensor.
        assert masked["num_values"] == plain["num_values"] + 1
        assert masked["per_op_bytes"] > plain["per_op_bytes"]
