"""Differential tests: the vector backend against the scalar reference.

Every construct the vector backend claims to handle is exercised on random
ragged batches under both backends and the results compared; constructs it
cannot handle must fall back to the scalar backend and still be correct.
"""

import numpy as np
import pytest

from repro.core.codegen_vector import VectorBackend, can_vectorize
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.executor import Executor
from repro.core.ir import LoopVar, exp, maximum, relu, sqrt
from repro.core.lowering import lower_schedule
from repro.core.operator import (
    compute,
    input_tensor,
    max_reduce,
    reduce_axis,
    sum_reduce,
)
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule


LENGTHS = np.array([5, 2, 3, 7])


def ragged_layout(lengths, *inner):
    batch, seq = Dim("batch"), Dim("seq")
    dims = [batch, seq] + [Dim(f"c{i}") for i in range(len(inner))]
    extents = [ConstExtent(len(lengths)), VarExtent(batch, lengths)] + [
        ConstExtent(s) for s in inner
    ]
    from repro.core.storage import RaggedLayout

    return RaggedLayout(dims, extents)


def run_both(op, inputs, input_layouts=None, schedule_fn=None):
    """Compile and run under both backends; return (scalar, vector) outputs."""
    outs = {}
    for backend in ("scalar", "vector"):
        schedule = Schedule(op)
        if schedule_fn is not None:
            schedule_fn(schedule)
        executor = Executor(backend=backend)
        compiled = executor.compile(schedule, input_layouts=input_layouts)
        out, _ = executor.run(compiled, inputs)
        outs[backend] = (out, compiled)
    return outs


def assert_backends_match(outs, expect_vectorized=True):
    scalar_out, scalar_compiled = outs["scalar"]
    vector_out, vector_compiled = outs["vector"]
    assert scalar_compiled.backend_name == "scalar"
    if expect_vectorized:
        assert vector_compiled.backend_name == "vector"
    else:
        assert vector_compiled.backend_name == "scalar"
    assert np.allclose(scalar_out.data, vector_out.data, rtol=1e-4, atol=1e-5)


class TestVectorizedConstructs:
    def test_elementwise_ragged(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 2.0 * A[o, i] + 1.0)
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=1)
        assert_backends_match(run_both(op, {"A": data}))

    def test_intrinsics_and_minmax(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: exp(A[o, i]) + relu(A[o, i] - 0.5)
                     + sqrt(maximum(A[o, i], 0.1)))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=2)
        assert_backends_match(run_both(op, {"A": data}))

    def test_loop_var_as_value(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: A[o, i] * i + o)
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=3)
        assert_backends_match(run_both(op, {"A": data}))

    def test_ragged_matmul_einsum(self):
        batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
        A = input_tensor("A", [batch, seq, Dim("h")],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                          ConstExtent(6)])
        W = input_tensor("W", [Dim("ki"), j], [ConstExtent(6), ConstExtent(5)])
        k = reduce_axis(6, "k")
        op = compute("C", [batch, seq, j],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                      ConstExtent(5)],
                     lambda b, i, jj: sum_reduce(
                         A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
        ta = RaggedTensor.random(ragged_layout(LENGTHS, 6), seed=4)
        w = np.random.default_rng(5).standard_normal((6, 5)).astype(np.float32)
        outs = run_both(op, {"A": ta, "W": w})
        assert "np.einsum" in outs["vector"][1].source
        assert_backends_match(outs)

    def test_variable_reduction_bound(self):
        row, col = Dim("row"), Dim("col")
        n = 8
        L = input_tensor("L", [row, Dim("rk")], [ConstExtent(n), ConstExtent(n)])
        B = input_tensor("Bm", [Dim("rk2"), col], [ConstExtent(n), ConstExtent(n)])
        k = reduce_axis(VarExtent(row, np.arange(1, n + 1)), "k")
        op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                     lambda r, c: sum_reduce(
                         L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))
        rng = np.random.default_rng(6)
        lower = np.tril(rng.standard_normal((n, n))).astype(np.float32)
        dense = rng.standard_normal((n, n)).astype(np.float32)
        outs = run_both(op, {"L": lower, "Bm": dense})
        assert_backends_match(outs)
        ref = lower @ dense
        assert np.allclose(outs["vector"][0].to_dense(), ref, atol=1e-4)

    def test_max_reduce_broadcast_path(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        k = reduce_axis(VarExtent(batch, LENGTHS), "k")
        op = compute("M", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda b, i: A[b, i] - max_reduce(
                         A[b, LoopVar(k.dim)], k))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=7)
        assert_backends_match(run_both(op, {"A": data}))

    def test_reduction_axis_unused_in_body(self):
        """A reduce axis the body never indexes multiplies by its trip count."""
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        k = reduce_axis(4, "k")
        op = compute("S", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda b, i: sum_reduce(A[b, i], k))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=8)
        assert_backends_match(run_both(op, {"A": data}))

    def test_padded_loop_and_storage(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 3.0 * A[o, i])

        def pad(schedule):
            schedule.pad_loop(seq_dim(schedule), 2)
            schedule.pad_dimension(seq_dim(schedule), 2)
            schedule.pad_input_dimension("A", seq_dim(schedule), 2)

        def seq_dim(schedule):
            return schedule.operator.dims[1]

        from repro.core.storage import RaggedLayout

        padded_layout = RaggedLayout(
            [batch, seq],
            [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
            storage_padding={seq: 2})
        data = RaggedTensor.random(padded_layout, seed=9)
        assert_backends_match(run_both(op, {"A": data}, schedule_fn=pad))


def _elementwise_op(lengths=LENGTHS, seed=1):
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lengths)), VarExtent(batch, lengths)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lengths)), VarExtent(batch, lengths)],
                 lambda o, i: 2.0 * A[o, i])
    data = RaggedTensor.random(ragged_layout(lengths), seed=seed)
    return op, data


class TestGuardedSplitVectorized:
    """Split vloops (guarded and padded) collapse back to the original
    iteration domain; the guard becomes a trailing slice."""

    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_guarded_split_elementwise(self, factor):
        op, data = _elementwise_op()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.split(s.operator.dims[1],
                                                      factor))
        assert_backends_match(outs)
        assert "if " not in outs["vector"][1].source

    def test_guarded_split_with_reduction(self):
        batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
        A = input_tensor("A", [batch, seq, Dim("h")],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                          ConstExtent(6)])
        W = input_tensor("W", [Dim("ki"), j], [ConstExtent(6), ConstExtent(5)])
        k = reduce_axis(6, "k")
        op = compute("C", [batch, seq, j],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                      ConstExtent(5)],
                     lambda b, i, jj: sum_reduce(
                         A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
        ta = RaggedTensor.random(ragged_layout(LENGTHS, 6), seed=4)
        w = np.random.default_rng(5).standard_normal((6, 5)).astype(np.float32)
        outs = run_both(op, {"A": ta, "W": w},
                        schedule_fn=lambda s: s.split(s.operator.dims[1], 4))
        assert "np.einsum" in outs["vector"][1].source
        assert_backends_match(outs)

    def test_padded_split_without_guard(self):
        """pad_loop to the split factor elides the guard; the collapsed
        bound is tiles * factor (the padded domain)."""
        op, data = _elementwise_op()

        def pad_and_split(schedule):
            seq = schedule.operator.dims[1]
            schedule.pad_loop(seq, 4)
            schedule.pad_dimension(seq, 4)
            schedule.pad_input_dimension("A", seq, 4)
            schedule.split(seq, 4)

        from repro.core.storage import RaggedLayout

        batch, seq = op.dims
        padded_layout = RaggedLayout(
            [batch, seq],
            [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
            storage_padding={seq: 4})
        data = RaggedTensor.random(padded_layout, seed=9)
        outs = run_both(op, {"A": data}, schedule_fn=pad_and_split)
        assert_backends_match(outs)


class TestFusedLoopsVectorized:
    """A fused governing vloop executes as one flat gather (no Python loop)."""

    def test_fused_loops_vectorize(self):
        op, data = _elementwise_op()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.fuse_loops(*s.operator.dims))
        assert_backends_match(outs)
        source = outs["vector"][1].source
        assert "_ffo" in source and "_ffi" in source
        assert source.count("for _") == 0

    def test_fused_loops_with_inner_const_dim(self):
        batch, seq, h = Dim("batch"), Dim("seq"), Dim("h")
        A = input_tensor("A", [batch, seq, h],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                          ConstExtent(5)])
        op = compute("B", [batch, seq, h],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                      ConstExtent(5)],
                     lambda b, i, c: relu(A[b, i, c]) + 1.0)
        data = RaggedTensor.random(ragged_layout(LENGTHS, 5), seed=6)
        outs = run_both(
            op, {"A": data},
            schedule_fn=lambda s: s.fuse_loops(*s.operator.dims[:2]))
        assert_backends_match(outs)

    def test_fused_dims_flat_store(self):
        op, data = _elementwise_op()

        def fuse_all(schedule):
            b, s = schedule.operator.dims
            schedule.fuse_loops(b, s)
            schedule.fuse_dimensions(b, s)

        outs = run_both(op, {"A": data}, schedule_fn=fuse_all)
        assert_backends_match(outs)

    def test_fused_with_loop_vars_as_values(self):
        op_dims = Dim("batch"), Dim("seq")
        batch, seq = op_dims
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: A[o, i] * i + o)
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=3)
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.fuse_loops(batch, seq))
        assert_backends_match(outs)

    def test_dense_tensor_mixed_fused_and_plain_accesses(self):
        """A dense tensor read both with and without fused-dim indices needs
        the reshaped view *and* the flat gather (regression: the reshape was
        suppressed for the whole tensor, NameError at run time)."""
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        W = input_tensor("W", [Dim("wr"), Dim("wc")],
                         [ConstExtent(len(LENGTHS)), ConstExtent(2)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: A[o, i] * W[o, 0] + W[0, 1])
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=17)
        w = np.random.default_rng(18).standard_normal(
            (len(LENGTHS), 2)).astype(np.float32)
        outs = run_both(op, {"A": data, "W": w},
                        schedule_fn=lambda s: s.fuse_loops(batch, seq))
        assert_backends_match(outs)

    def test_variable_reduction_under_fusion_falls_back(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        k = reduce_axis(VarExtent(batch, LENGTHS), "k")
        op = compute("S", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda b, i: sum_reduce(A[b, LoopVar(k.dim)], k))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=8)
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.fuse_loops(batch, seq))
        assert_backends_match(outs, expect_vectorized=False)

    @pytest.mark.parametrize("lens", [[2, 0], [5, 2, 3], [1, 3]])
    def test_fused_flop_estimate_matches_unfused(self, lens):
        """Fusion is a pure scheduling decision: estimate_flops must agree
        with the unfused nest even when the fused extent coincides with the
        batch size (regression: per-batch bound tables were consumed as
        per-fused-iteration bounds)."""
        from repro.core.executor import estimate_flops

        lens = np.asarray(lens)
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(lens)), VarExtent(batch, lens)])
        k = reduce_axis(VarExtent(batch, lens), "k")
        op = compute("S", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)],
                     lambda b, i: sum_reduce(A[b, LoopVar(k.dim)], k))
        plain = estimate_flops(lower_schedule(Schedule(op)))
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        fused = estimate_flops(lower_schedule(sch))
        assert fused == plain


class TestThreadRemapVectorized:
    def test_thread_remap_vectorizes(self):
        """Remaps permute execution order only; bucketed stores are
        disjoint, so the vector backend runs the remapped loop directly."""
        op, data = _elementwise_op()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.thread_remap(
                            s.operator.dims[0], "sort_desc"))
        assert_backends_match(outs)
        assert "remap" in outs["vector"][1].source


class TestBucketing:
    def test_duplicate_lengths_share_buckets(self):
        lens = np.array([4, 2, 4, 2, 4])
        op, data = _elementwise_op(lens, seed=12)
        compiled = Executor(backend="vector").compile(Schedule(op))
        assert compiled.backend_name == "vector"
        buckets = compiled.generated.fn.__globals__["_BUCKETS"]
        assert len(buckets) == 2  # one per distinct length
        assert sorted(int(i) for b in buckets for i in b) == list(range(5))

    def test_uniform_lengths_single_bucket(self):
        lens = np.array([3, 3, 3, 3])
        op, data = _elementwise_op(lens, seed=13)
        executor = Executor(backend="vector")
        compiled = executor.compile(Schedule(op))
        buckets = compiled.generated.fn.__globals__["_BUCKETS"]
        assert len(buckets) == 1
        out, _ = executor.run(compiled, {"A": data})
        assert np.allclose(out.data, 2.0 * data.data, atol=1e-5)

    def test_bucketed_matmul_matches_scalar(self):
        lens = np.array([5, 3, 5, 3, 5, 3])
        batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
        A = input_tensor("A", [batch, seq, Dim("h")],
                         [ConstExtent(len(lens)), VarExtent(batch, lens),
                          ConstExtent(4)])
        W = input_tensor("W", [Dim("ki"), j], [ConstExtent(4), ConstExtent(3)])
        k = reduce_axis(4, "k")
        op = compute("C", [batch, seq, j],
                     [ConstExtent(len(lens)), VarExtent(batch, lens),
                      ConstExtent(3)],
                     lambda b, i, jj: sum_reduce(
                         A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
        ta = RaggedTensor.random(ragged_layout(lens, 4), seed=14)
        w = np.random.default_rng(15).standard_normal((4, 3)).astype(np.float32)
        outs = run_both(op, {"A": ta, "W": w})
        assert_backends_match(outs)
        buckets = outs["vector"][1].generated.fn.__globals__["_BUCKETS"]
        assert len(buckets) == 2


class TestTriangularMaskAccess:
    def test_dense_mask_indexed_by_two_inner_loops(self):
        """The masked-SDPA mask-add pattern: a dense (max_len, max_len)
        tensor indexed by two table-bound inner loops vectorizes."""
        lens = LENGTHS
        max_len = int(lens.max())
        batch, qi, kj = Dim("batch"), Dim("qi"), Dim("kj")
        S = input_tensor("S", [batch, Dim("si"), Dim("sj")],
                         [ConstExtent(len(lens)), VarExtent(batch, lens),
                          VarExtent(batch, lens)])
        M = input_tensor("M", [Dim("mi"), Dim("mj")],
                         [ConstExtent(max_len), ConstExtent(max_len)])
        op = compute("SM", [batch, qi, kj],
                     [ConstExtent(len(lens)), VarExtent(batch, lens),
                      VarExtent(batch, lens)],
                     lambda b, i, jj: S[b, i, jj] + M[i, jj])
        from repro.core.storage import RaggedLayout

        s_layout = RaggedLayout(
            [batch, Dim("r"), Dim("c")],
            [ConstExtent(len(lens)), VarExtent(batch, lens),
             VarExtent(batch, lens)])
        s_data = RaggedTensor.random(s_layout, seed=21)
        mask = np.triu(np.full((max_len, max_len), -1.0, dtype=np.float32), 1)
        outs = run_both(op, {"S": s_data, "M": mask})
        assert_backends_match(outs)


class TestFallback:
    def _elementwise(self):
        return _elementwise_op()

    def test_remap_on_variable_inner_loop_falls_back(self):
        """A remap permutation can outrun a per-instance bound; the scalar
        backend keeps those semantics."""
        op, data = self._elementwise()
        schedule = Schedule(op)
        schedule.thread_remap(op.dims[1], "identity")
        lowered = lower_schedule(schedule)
        assert not can_vectorize(lowered)

    def test_loop_padding_without_storage_padding_falls_back(self):
        """pad_loop without pad_dimension makes the loop bound exceed the
        storage extent; the vector backend must fall back, not crash.

        (Lengths chosen so the scalar backend's out-of-slice offsets still
        land inside the flat buffer -- with other lengths even the scalar
        reference IndexErrors, which is a schedule-validation gap outside
        this PR's scope.)
        """
        lens = np.array([3, 1, 4])
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(lens)), VarExtent(batch, lens)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)],
                     lambda o, i: 2.0 * A[o, i])
        data = RaggedTensor.random(ragged_layout(lens), seed=1)

        def pad_loop_only(schedule):
            schedule.pad_loop(schedule.operator.dims[1], 2)

        outs = run_both(op, {"A": data}, schedule_fn=pad_loop_only)
        assert_backends_match(outs, expect_vectorized=False)

    def test_diagonal_access_falls_back(self):
        batch, i = Dim("batch"), Dim("i")
        A = input_tensor("A", [batch, Dim("r"), Dim("c")],
                         [ConstExtent(3), ConstExtent(4), ConstExtent(4)])
        op = compute("D", [batch, i], [ConstExtent(3), ConstExtent(4)],
                     lambda b, ii: A[b, ii, ii] + 0.0)
        data = np.random.default_rng(11).standard_normal(
            (3, 4, 4)).astype(np.float32)
        outs = run_both(op, {"A": data})
        assert_backends_match(outs, expect_vectorized=False)

    def test_fallback_counters_and_reasons(self):
        batch, i = Dim("batch"), Dim("i")
        A = input_tensor("A", [batch, Dim("r"), Dim("c")],
                         [ConstExtent(3), ConstExtent(4), ConstExtent(4)])
        diag = compute("D", [batch, i], [ConstExtent(3), ConstExtent(4)],
                       lambda b, ii: A[b, ii, ii] + 0.0)
        backend = VectorBackend()
        lowered = lower_schedule(Schedule(diag))
        assert not can_vectorize(lowered)
        generated = backend.generate(lowered)
        assert backend.fallback_count == 1
        assert generated.fallback_reason is not None
        assert "more than once" in generated.fallback_reason
        assert sum(backend.fallback_reasons.values()) == 1
        op, _ = _elementwise_op()
        plain = lower_schedule(Schedule(op))
        assert can_vectorize(plain)
        assert backend.generate(plain).fallback_reason is None
        assert backend.vectorized_count == 1

    def test_executor_codegen_stats(self):
        batch, i = Dim("batch"), Dim("i")
        A = input_tensor("A", [batch, Dim("r"), Dim("c")],
                         [ConstExtent(3), ConstExtent(4), ConstExtent(4)])
        diag = compute("D", [batch, i], [ConstExtent(3), ConstExtent(4)],
                       lambda b, ii: A[b, ii, ii] + 0.0)
        op, _ = _elementwise_op()
        executor = Executor(backend="vector")
        executor.compile(Schedule(op))
        executor.compile(Schedule(diag))
        stats = executor.codegen_stats()
        assert stats["vectorized"] == 1
        assert stats["fallbacks"] == 1
        assert stats["lower_count"] == 2
        assert any("more than once" in r for r in stats["fallback_reasons"])


class TestDenseOutput:
    @pytest.mark.parametrize("batch", [2, 16])
    def test_dense_output_vectorizes_regardless_of_batch(self, batch):
        """The dense-output store check must compare inner bounds against the
        inner axes, not the governing axis (regression: batch=2, seq=8
        wrongly fell back because 8 > 2)."""
        b, s = Dim("batch"), Dim("seq")
        A = input_tensor("A", [b, s], [ConstExtent(batch), ConstExtent(8)])
        op = compute("O", [b, s], [ConstExtent(batch), ConstExtent(8)],
                     lambda o, i: 2.0 * A[o, i])
        data = np.random.default_rng(0).standard_normal(
            (batch, 8)).astype(np.float32)
        executor = Executor(backend="vector")
        compiled = executor.compile(Schedule(op))
        assert compiled.backend_name == "vector"
        out, _ = executor.run(compiled, {"A": data})
        assert np.allclose(out.to_dense(), 2.0 * data, atol=1e-5)


class TestVectorSourceShape:
    def test_uses_gathers_not_scalar_loops(self):
        op, _ = _elementwise_op()
        compiled = Executor(backend="vector").compile(Schedule(op))
        assert compiled.backend_name == "vector"
        assert "_gather_slices" in compiled.source
        assert "_scatter_slices" in compiled.source
        # One Python loop (over instance buckets), everything else vectorized.
        assert compiled.source.count("for _") == 1

    def test_fused_source_has_no_python_loop(self):
        op, _ = _elementwise_op()
        sch = Schedule(op)
        sch.fuse_loops(*op.dims)
        compiled = Executor(backend="vector").compile(sch)
        assert compiled.backend_name == "vector"
        assert compiled.source.count("for _") == 0
