"""Differential tests: the vector backend against the scalar reference.

Every construct the vector backend claims to handle is exercised on random
ragged batches under both backends and the results compared; constructs it
cannot handle must fall back to the scalar backend and still be correct.
"""

import numpy as np
import pytest

from repro.core.codegen_vector import VectorBackend, can_vectorize
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.executor import Executor
from repro.core.ir import LoopVar, exp, maximum, relu, sqrt
from repro.core.lowering import lower_schedule
from repro.core.operator import (
    compute,
    input_tensor,
    max_reduce,
    reduce_axis,
    sum_reduce,
)
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule


LENGTHS = np.array([5, 2, 3, 7])


def ragged_layout(lengths, *inner):
    batch, seq = Dim("batch"), Dim("seq")
    dims = [batch, seq] + [Dim(f"c{i}") for i in range(len(inner))]
    extents = [ConstExtent(len(lengths)), VarExtent(batch, lengths)] + [
        ConstExtent(s) for s in inner
    ]
    from repro.core.storage import RaggedLayout

    return RaggedLayout(dims, extents)


def run_both(op, inputs, input_layouts=None, schedule_fn=None):
    """Compile and run under both backends; return (scalar, vector) outputs."""
    outs = {}
    for backend in ("scalar", "vector"):
        schedule = Schedule(op)
        if schedule_fn is not None:
            schedule_fn(schedule)
        executor = Executor(backend=backend)
        compiled = executor.compile(schedule, input_layouts=input_layouts)
        out, _ = executor.run(compiled, inputs)
        outs[backend] = (out, compiled)
    return outs


def assert_backends_match(outs, expect_vectorized=True):
    scalar_out, scalar_compiled = outs["scalar"]
    vector_out, vector_compiled = outs["vector"]
    assert scalar_compiled.backend_name == "scalar"
    if expect_vectorized:
        assert vector_compiled.backend_name == "vector"
    else:
        assert vector_compiled.backend_name == "scalar"
    assert np.allclose(scalar_out.data, vector_out.data, rtol=1e-4, atol=1e-5)


class TestVectorizedConstructs:
    def test_elementwise_ragged(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 2.0 * A[o, i] + 1.0)
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=1)
        assert_backends_match(run_both(op, {"A": data}))

    def test_intrinsics_and_minmax(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: exp(A[o, i]) + relu(A[o, i] - 0.5)
                     + sqrt(maximum(A[o, i], 0.1)))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=2)
        assert_backends_match(run_both(op, {"A": data}))

    def test_loop_var_as_value(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: A[o, i] * i + o)
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=3)
        assert_backends_match(run_both(op, {"A": data}))

    def test_ragged_matmul_einsum(self):
        batch, seq, j = Dim("batch"), Dim("seq"), Dim("j")
        A = input_tensor("A", [batch, seq, Dim("h")],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                          ConstExtent(6)])
        W = input_tensor("W", [Dim("ki"), j], [ConstExtent(6), ConstExtent(5)])
        k = reduce_axis(6, "k")
        op = compute("C", [batch, seq, j],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS),
                      ConstExtent(5)],
                     lambda b, i, jj: sum_reduce(
                         A[b, i, LoopVar(k.dim)] * W[LoopVar(k.dim), jj], k))
        ta = RaggedTensor.random(ragged_layout(LENGTHS, 6), seed=4)
        w = np.random.default_rng(5).standard_normal((6, 5)).astype(np.float32)
        outs = run_both(op, {"A": ta, "W": w})
        assert "np.einsum" in outs["vector"][1].source
        assert_backends_match(outs)

    def test_variable_reduction_bound(self):
        row, col = Dim("row"), Dim("col")
        n = 8
        L = input_tensor("L", [row, Dim("rk")], [ConstExtent(n), ConstExtent(n)])
        B = input_tensor("Bm", [Dim("rk2"), col], [ConstExtent(n), ConstExtent(n)])
        k = reduce_axis(VarExtent(row, np.arange(1, n + 1)), "k")
        op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                     lambda r, c: sum_reduce(
                         L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))
        rng = np.random.default_rng(6)
        lower = np.tril(rng.standard_normal((n, n))).astype(np.float32)
        dense = rng.standard_normal((n, n)).astype(np.float32)
        outs = run_both(op, {"L": lower, "Bm": dense})
        assert_backends_match(outs)
        ref = lower @ dense
        assert np.allclose(outs["vector"][0].to_dense(), ref, atol=1e-4)

    def test_max_reduce_broadcast_path(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        k = reduce_axis(VarExtent(batch, LENGTHS), "k")
        op = compute("M", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda b, i: A[b, i] - max_reduce(
                         A[b, LoopVar(k.dim)], k))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=7)
        assert_backends_match(run_both(op, {"A": data}))

    def test_reduction_axis_unused_in_body(self):
        """A reduce axis the body never indexes multiplies by its trip count."""
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        k = reduce_axis(4, "k")
        op = compute("S", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda b, i: sum_reduce(A[b, i], k))
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=8)
        assert_backends_match(run_both(op, {"A": data}))

    def test_padded_loop_and_storage(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 3.0 * A[o, i])

        def pad(schedule):
            schedule.pad_loop(seq_dim(schedule), 2)
            schedule.pad_dimension(seq_dim(schedule), 2)
            schedule.pad_input_dimension("A", seq_dim(schedule), 2)

        def seq_dim(schedule):
            return schedule.operator.dims[1]

        from repro.core.storage import RaggedLayout

        padded_layout = RaggedLayout(
            [batch, seq],
            [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
            storage_padding={seq: 2})
        data = RaggedTensor.random(padded_layout, seed=9)
        assert_backends_match(run_both(op, {"A": data}, schedule_fn=pad))


class TestFallback:
    def _elementwise(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 2.0 * A[o, i])
        data = RaggedTensor.random(ragged_layout(LENGTHS), seed=1)
        return op, data

    def test_fused_loops_fall_back(self):
        op, data = self._elementwise()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.fuse_loops(*s.operator.dims))
        assert_backends_match(outs, expect_vectorized=False)
        assert "ffo" in outs["vector"][1].source

    def test_split_loops_fall_back(self):
        op, data = self._elementwise()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.split(s.operator.dims[1], 4))
        assert_backends_match(outs, expect_vectorized=False)

    def test_loop_padding_without_storage_padding_falls_back(self):
        """pad_loop without pad_dimension makes the loop bound exceed the
        storage extent; the vector backend must fall back, not crash.

        (Lengths chosen so the scalar backend's out-of-slice offsets still
        land inside the flat buffer -- with other lengths even the scalar
        reference IndexErrors, which is a schedule-validation gap outside
        this PR's scope.)
        """
        lens = np.array([3, 1, 4])
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(lens)), VarExtent(batch, lens)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)],
                     lambda o, i: 2.0 * A[o, i])
        data = RaggedTensor.random(ragged_layout(lens), seed=1)

        def pad_loop_only(schedule):
            schedule.pad_loop(schedule.operator.dims[1], 2)

        outs = run_both(op, {"A": data}, schedule_fn=pad_loop_only)
        assert_backends_match(outs, expect_vectorized=False)

    def test_diagonal_access_falls_back(self):
        batch, i = Dim("batch"), Dim("i")
        A = input_tensor("A", [batch, Dim("r"), Dim("c")],
                         [ConstExtent(3), ConstExtent(4), ConstExtent(4)])
        op = compute("D", [batch, i], [ConstExtent(3), ConstExtent(4)],
                     lambda b, ii: A[b, ii, ii] + 0.0)
        data = np.random.default_rng(11).standard_normal(
            (3, 4, 4)).astype(np.float32)
        outs = run_both(op, {"A": data})
        assert_backends_match(outs, expect_vectorized=False)

    def test_thread_remap_falls_back(self):
        op, data = self._elementwise()
        outs = run_both(op, {"A": data},
                        schedule_fn=lambda s: s.thread_remap(
                            s.operator.dims[0], "sort_desc"))
        assert_backends_match(outs, expect_vectorized=False)

    def test_fallback_counters(self):
        op, data = self._elementwise()
        backend = VectorBackend()
        sch = Schedule(op)
        sch.split(op.dims[1], 4)
        lowered = lower_schedule(sch)
        assert not can_vectorize(lowered)
        backend.generate(lowered)
        assert backend.fallback_count == 1
        plain = lower_schedule(Schedule(op))
        assert can_vectorize(plain)
        backend.generate(plain)
        assert backend.vectorized_count == 1


class TestDenseOutput:
    @pytest.mark.parametrize("batch", [2, 16])
    def test_dense_output_vectorizes_regardless_of_batch(self, batch):
        """The dense-output store check must compare inner bounds against the
        inner axes, not the governing axis (regression: batch=2, seq=8
        wrongly fell back because 8 > 2)."""
        b, s = Dim("batch"), Dim("seq")
        A = input_tensor("A", [b, s], [ConstExtent(batch), ConstExtent(8)])
        op = compute("O", [b, s], [ConstExtent(batch), ConstExtent(8)],
                     lambda o, i: 2.0 * A[o, i])
        data = np.random.default_rng(0).standard_normal(
            (batch, 8)).astype(np.float32)
        executor = Executor(backend="vector")
        compiled = executor.compile(Schedule(op))
        assert compiled.backend_name == "vector"
        out, _ = executor.run(compiled, {"A": data})
        assert np.allclose(out.to_dense(), 2.0 * data, atol=1e-5)


class TestVectorSourceShape:
    def test_uses_slice_views_not_scalar_loops(self):
        batch, seq = Dim("batch"), Dim("seq")
        A = input_tensor("A", [batch, seq],
                         [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)])
        op = compute("B", [batch, seq],
                     [ConstExtent(len(LENGTHS)), VarExtent(batch, LENGTHS)],
                     lambda o, i: 2.0 * A[o, i])
        compiled = Executor(backend="vector").compile(Schedule(op))
        assert compiled.backend_name == "vector"
        assert "_slice_view" in compiled.source
        # One Python loop (the governing loop), everything else vectorized.
        assert compiled.source.count("for _") == 1
