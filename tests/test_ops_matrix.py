"""Tests for the vgemm and triangular-matrix operator families."""

import numpy as np
import pytest

from repro.baselines import sparse_compiler as sc
from repro.ops import trmm, vgemm
from repro.substrates.costmodel import CostModel
from repro.substrates.device import intel_cpu, v100_gpu


class TestVgemmNumeric:
    def setup_method(self):
        self.problem = vgemm.VgemmProblem(
            ms=np.array([8, 12, 4]), ns=np.array([6, 10, 4]), ks=np.array([5, 7, 3]))
        self.a, self.b = vgemm.random_instances(self.problem, seed=1)

    def test_cora_matches_reference(self):
        ref = vgemm.vgemm_reference(self.a, self.b)
        out = vgemm.vgemm_cora(self.a, self.b, tile=4)
        for r, o in zip(ref, out):
            assert np.allclose(r, o, atol=1e-4)

    def test_fully_padded_matches_reference(self):
        ref = vgemm.vgemm_reference(self.a, self.b)
        out = vgemm.vgemm_fully_padded(self.a, self.b)
        for r, o in zip(ref, out):
            assert np.allclose(r, o, atol=1e-4)

    def test_mismatched_inner_dim_rejected(self):
        with pytest.raises(ValueError):
            vgemm.vgemm_cora([np.zeros((2, 3))], [np.zeros((4, 2))])

    def test_flop_accounting(self):
        assert self.problem.ragged_flops() == pytest.approx(
            sum(2 * m * n * k for m, n, k in
                zip(self.problem.ms, self.problem.ns, self.problem.ks)))
        assert self.problem.padded_flops() >= self.problem.ragged_flops()

    def test_paper_problem_dimensions(self):
        p = vgemm.paper_problem(64, seed=3)
        for arr in (p.ms, p.ns, p.ks):
            assert np.all(arr % 128 == 0)
            assert arr.min() >= 512 and arr.max() <= 1408


class TestVgemmWorkloads:
    def test_padded_much_slower_at_large_batch(self):
        model = CostModel(v100_gpu())
        p = vgemm.paper_problem(128)
        cora = model.latency_ms(vgemm.cora_workload(p))
        padded = model.latency_ms(vgemm.fully_padded_workload(p))
        assert padded > 1.5 * cora

    def test_cora_competitive_with_hand_optimized(self):
        for device in (v100_gpu(), intel_cpu()):
            model = CostModel(device)
            p = vgemm.paper_problem(64)
            cora = model.latency_ms(vgemm.cora_workload(p))
            hand = model.latency_ms(vgemm.hand_optimized_workload(p))
            assert cora < 1.4 * hand  # "better than 73% of MKL" (Section 7.1)


class TestTriangularNumeric:
    def test_trmm_ragged_matches_reference(self):
        lower = trmm.make_lower_triangular(48, seed=0)
        dense = np.random.default_rng(1).standard_normal((48, 16)).astype(np.float32)
        assert np.allclose(trmm.trmm_ragged(lower, dense, tile=16),
                           trmm.trmm_reference(lower, dense), atol=1e-3)

    def test_tradd_trmul(self):
        a = trmm.make_lower_triangular(10, seed=0)
        b = trmm.make_lower_triangular(10, seed=1)
        assert np.allclose(trmm.tradd(a, b), np.tril(a + b))
        assert np.allclose(trmm.trmul(a, b), np.tril(a * b))

    def test_triangular_elements(self):
        assert trmm.triangular_elements(4) == 10

    def test_ragged_flops_less_than_dense(self):
        assert trmm.trmm_ragged_flops(1024) < trmm.trmm_dense_flops(1024)
        assert trmm.trmm_ragged_flops(1024, pad_reduction=True) >= \
            trmm.trmm_ragged_flops(1024)


class TestTrmmWorkloads:
    def setup_method(self):
        self.model = CostModel(v100_gpu())

    def test_crossover_with_sgemm(self):
        """trmm-style kernels only beat the dense sgemm for larger matrices
        (Figure 10)."""
        small_sgemm = self.model.latency_ms(trmm.cublas_sgemm_workload(512))
        small_trmm = self.model.latency_ms(trmm.cublas_trmm_workload(512))
        large_sgemm = self.model.latency_ms(trmm.cublas_sgemm_workload(8192))
        large_trmm = self.model.latency_ms(trmm.cublas_trmm_workload(8192))
        assert small_trmm > small_sgemm
        assert large_trmm < large_sgemm

    def test_split_and_balance_progressively_help(self):
        n = 4096
        uu = self.model.latency_ms(trmm.cora_trmm_workload(n, split=False, balanced=False))
        su = self.model.latency_ms(trmm.cora_trmm_workload(n, split=True, balanced=False))
        sb = self.model.latency_ms(trmm.cora_trmm_workload(n, split=True, balanced=True))
        assert su < uu
        assert sb <= su

    def test_split_balanced_close_to_cublas_trmm(self):
        """CoRa-Split-Balanced stays within ~75% of cuBLAS trmm (paper: 81.3%)."""
        for n in (2048, 4096, 8192):
            cublas = self.model.latency_ms(trmm.cublas_trmm_workload(n))
            cora = self.model.latency_ms(trmm.cora_trmm_workload(n))
            assert cublas / cora > 0.70


class TestSparseCompilerBaseline:
    def test_csr_roundtrip(self):
        dense = trmm.make_lower_triangular(12, seed=0)
        csr = sc.CSRMatrix.from_dense(dense)
        assert np.allclose(csr.to_dense(), dense)
        assert csr.nnz == np.count_nonzero(dense)

    def test_bcsr_roundtrip(self):
        dense = trmm.make_lower_triangular(20, seed=0)
        bcsr = sc.BCSRMatrix.from_dense(dense, block=8)
        assert np.allclose(bcsr.to_dense(), dense)
        assert bcsr.stored_elements >= np.count_nonzero(dense)

    def test_csr_spmm_matches_dense(self):
        lower = trmm.make_lower_triangular(16, seed=2)
        dense = np.random.default_rng(3).standard_normal((16, 5)).astype(np.float32)
        assert np.allclose(sc.csr_spmm(sc.CSRMatrix.from_dense(lower), dense),
                           lower @ dense, atol=1e-3)

    def test_bcsr_spmm_matches_dense(self):
        lower = trmm.make_lower_triangular(24, seed=2)
        dense = np.random.default_rng(3).standard_normal((24, 5)).astype(np.float32)
        assert np.allclose(sc.bcsr_spmm(sc.BCSRMatrix.from_dense(lower, block=8), dense),
                           lower @ dense, atol=1e-3)

    def test_csr_elementwise(self):
        a = trmm.make_lower_triangular(9, seed=4)
        b = trmm.make_lower_triangular(9, seed=5)
        ca, cb = sc.CSRMatrix.from_dense(a), sc.CSRMatrix.from_dense(b)
        assert np.allclose(sc.csr_elementwise(ca, cb, "add"), np.tril(a + b), atol=1e-5)
        assert np.allclose(sc.csr_elementwise(ca, cb, "mul"), np.tril(a * b), atol=1e-5)

    def test_taco_slower_than_cora_and_growing(self):
        """Table 6: Taco is slower than CoRa, with the gap growing with size."""
        model = CostModel(v100_gpu())
        slowdowns = []
        for n in (512, 2048, 8192):
            cora = model.latency_ms(trmm.cora_trmm_workload(n))
            taco = model.latency_ms(sc.taco_trmm_workload(n, "csr"))
            slowdowns.append(taco / cora)
        assert slowdowns[0] > 1.0
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > 20.0

    def test_taco_bcsr_tradd_unsupported(self):
        with pytest.raises(ValueError):
            sc.taco_elementwise_workload(512, "add", "bcsr")

    def test_taco_elementwise_slowdowns(self):
        model = CostModel(v100_gpu())
        for n in (512, 2048):
            cora = model.latency_ms(
                trmm.cora_triangular_elementwise_workload(n, "add"))
            taco = model.latency_ms(sc.taco_elementwise_workload(n, "add", "csr"))
            assert taco > 2.0 * cora
