"""Property-based tests (hypothesis) on the core data-structure invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import check_fusion_axioms
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent, ceil_to
from repro.core.executor import Executor
from repro.core.operator import compute, input_tensor
from repro.core.prelude import build_fusion_maps, build_row_offsets, bulk_pad_lengths
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout

lengths_strategy = st.lists(st.integers(min_value=0, max_value=12),
                            min_size=1, max_size=8)
positive_lengths = st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=6)
pad_strategy = st.integers(min_value=1, max_value=5)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy, pad_strategy)
def test_row_offsets_monotone_and_padded(lengths, pad):
    offsets = build_row_offsets(lengths, pad=pad)
    assert offsets[0] == 0
    diffs = np.diff(offsets)
    assert np.all(diffs >= np.asarray(lengths))
    assert np.all(diffs % pad == 0)
    assert np.all(diffs >= 0)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy)
def test_fusion_map_axioms(lengths):
    maps = build_fusion_maps(lengths)
    assert maps.fused_extent == sum(lengths)
    assert check_fusion_axioms(maps)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy, st.integers(min_value=1, max_value=128))
def test_bulk_padding_invariants(lengths, multiple):
    padded, extra = bulk_pad_lengths(lengths, multiple)
    assert int(padded.sum()) % multiple == 0
    assert int(padded.sum()) - sum(lengths) == extra
    assert 0 <= extra < multiple


@settings(max_examples=40, deadline=None)
@given(positive_lengths, pad_strategy)
def test_storage_offsets_are_bijection(lengths, pad):
    """Every valid (storage) index maps to a distinct flat offset in range."""
    batch, seq = Dim("batch"), Dim("seq")
    layout = RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths, pad=pad)
    seen = set()
    for b in range(len(lengths)):
        width = int(ceil_to(lengths[b], pad))
        for i in range(width):
            off = layout.offset((b, i))
            assert 0 <= off < layout.total_size()
            seen.add(off)
    assert len(seen) == layout.total_size()


@settings(max_examples=40, deadline=None)
@given(positive_lengths)
def test_dense_roundtrip_preserves_valid_region(lengths):
    batch, seq = Dim("batch"), Dim("seq")
    layout = RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths)
    tensor = RaggedTensor.random(layout, seed=0)
    dense = tensor.to_dense()
    back = RaggedTensor.from_dense(layout, dense)
    assert tensor.allclose(back)


@settings(max_examples=25, deadline=None)
@given(positive_lengths, st.floats(min_value=-3, max_value=3,
                                   allow_nan=False, allow_infinity=False))
def test_generated_elementwise_kernel_matches_numpy(lengths, alpha):
    """The compiled kernel agrees with NumPy on the valid region for any
    raggedness pattern and scale factor."""
    lens = np.asarray(lengths)
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: float(alpha) * A[o, i])
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(lens)), VarExtent(batch, lens)])
    data = RaggedTensor.random(layout, seed=3)
    out, _ = Executor().build_and_run(Schedule(op), {"A": data})
    for b in range(len(lens)):
        assert np.allclose(out.valid_slice(b), np.float32(alpha) * data.valid_slice(b),
                           rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(positive_lengths)
def test_fused_kernel_matches_unfused(lengths):
    """Loop fusion is a pure scheduling decision: results are identical."""
    lens = np.asarray(lengths)
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: A[o, i] + 1.0)
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(lens)), VarExtent(batch, lens)])
    data = RaggedTensor.random(layout, seed=11)
    plain, _ = Executor().build_and_run(Schedule(op), {"A": data})
    sch = Schedule(op)
    sch.fuse_loops(batch, seq)
    fused, _ = Executor().build_and_run(sch, {"A": data})
    assert plain.allclose(fused)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=512))
def test_ceil_to_properties(value, multiple):
    out = ceil_to(value, multiple)
    assert out >= value
    assert out % multiple == 0
    assert out - value < multiple


# -- vector-backend differential properties -----------------------------------------


def _ragged_elementwise(lens):
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: 2.0 * A[o, i] + 1.0)
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(lens)), VarExtent(batch, lens)])
    return op, RaggedTensor.random(layout, seed=7)


def _run_backend(op, inputs, backend, schedule_fn=None):
    schedule = Schedule(op)
    if schedule_fn is not None:
        schedule_fn(schedule)
    executor = Executor(backend=backend)
    compiled = executor.compile(schedule)
    out, _ = executor.run(compiled, inputs)
    return out, compiled


@settings(max_examples=30, deadline=None)
@given(positive_lengths, st.integers(min_value=2, max_value=7))
def test_guarded_split_scalar_vs_vector(lengths, factor):
    """Any split factor over any length mix: the vector backend collapses
    the guarded split pair and matches the scalar reference exactly."""
    lens = np.asarray(lengths)
    op, data = _ragged_elementwise(lens)

    def split(schedule):
        schedule.split(schedule.operator.dims[1], factor)

    scalar, _ = _run_backend(op, {"A": data}, "scalar", split)
    vector, compiled = _run_backend(op, {"A": data}, "vector", split)
    assert compiled.backend_name == "vector"
    assert np.allclose(scalar.data, vector.data, rtol=1e-4, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(positive_lengths, st.booleans())
def test_fused_scalar_vs_vector(lengths, fuse_dims_too):
    """Any length mix, with or without mirrored storage fusion: the flat
    fused gather matches the scalar reference."""
    lens = np.asarray(lengths)
    op, data = _ragged_elementwise(lens)

    def fuse(schedule):
        b, s = schedule.operator.dims
        schedule.fuse_loops(b, s)
        if fuse_dims_too:
            schedule.fuse_dimensions(b, s)

    scalar, _ = _run_backend(op, {"A": data}, "scalar", fuse)
    vector, compiled = _run_backend(op, {"A": data}, "vector", fuse)
    assert compiled.backend_name == "vector"
    assert np.allclose(scalar.data, vector.data, rtol=1e-4, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=5),
       st.integers(min_value=1, max_value=3))
def test_masked_softmax_compiled_matches_reference(lengths, heads):
    """Compiled causal-masked softmax equals the NumPy triangular oracle
    for any raggedness pattern."""
    from repro.ops.softmax import masked_softmax_compiled

    rng = np.random.default_rng(11)
    scores = [rng.standard_normal((heads, s, s)).astype(np.float32)
              for s in lengths]
    executor = Executor(backend="vector")
    probs, _ = masked_softmax_compiled(scores, executor=executor)
    assert executor.fallback_count == 0
    for s, p in zip(scores, probs):
        length = s.shape[-1]
        tri = np.tril(np.ones((length, length), dtype=bool))
        masked = np.where(tri[None, :, :], s, -np.inf)
        shifted = masked - masked.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        ref = e / e.sum(axis=-1, keepdims=True)
        assert np.allclose(p, ref, rtol=1e-4, atol=1e-5)
