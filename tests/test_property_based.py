"""Property-based tests (hypothesis) on the core data-structure invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import check_fusion_axioms
from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent, ceil_to
from repro.core.executor import Executor
from repro.core.operator import compute, input_tensor
from repro.core.prelude import build_fusion_maps, build_row_offsets, bulk_pad_lengths
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout

lengths_strategy = st.lists(st.integers(min_value=0, max_value=12),
                            min_size=1, max_size=8)
positive_lengths = st.lists(st.integers(min_value=1, max_value=10),
                            min_size=1, max_size=6)
pad_strategy = st.integers(min_value=1, max_value=5)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy, pad_strategy)
def test_row_offsets_monotone_and_padded(lengths, pad):
    offsets = build_row_offsets(lengths, pad=pad)
    assert offsets[0] == 0
    diffs = np.diff(offsets)
    assert np.all(diffs >= np.asarray(lengths))
    assert np.all(diffs % pad == 0)
    assert np.all(diffs >= 0)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy)
def test_fusion_map_axioms(lengths):
    maps = build_fusion_maps(lengths)
    assert maps.fused_extent == sum(lengths)
    assert check_fusion_axioms(maps)


@settings(max_examples=60, deadline=None)
@given(lengths_strategy, st.integers(min_value=1, max_value=128))
def test_bulk_padding_invariants(lengths, multiple):
    padded, extra = bulk_pad_lengths(lengths, multiple)
    assert int(padded.sum()) % multiple == 0
    assert int(padded.sum()) - sum(lengths) == extra
    assert 0 <= extra < multiple


@settings(max_examples=40, deadline=None)
@given(positive_lengths, pad_strategy)
def test_storage_offsets_are_bijection(lengths, pad):
    """Every valid (storage) index maps to a distinct flat offset in range."""
    batch, seq = Dim("batch"), Dim("seq")
    layout = RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths, pad=pad)
    seen = set()
    for b in range(len(lengths)):
        width = int(ceil_to(lengths[b], pad))
        for i in range(width):
            off = layout.offset((b, i))
            assert 0 <= off < layout.total_size()
            seen.add(off)
    assert len(seen) == layout.total_size()


@settings(max_examples=40, deadline=None)
@given(positive_lengths)
def test_dense_roundtrip_preserves_valid_region(lengths):
    batch, seq = Dim("batch"), Dim("seq")
    layout = RaggedLayout.ragged_2d(batch, seq, len(lengths), lengths)
    tensor = RaggedTensor.random(layout, seed=0)
    dense = tensor.to_dense()
    back = RaggedTensor.from_dense(layout, dense)
    assert tensor.allclose(back)


@settings(max_examples=25, deadline=None)
@given(positive_lengths, st.floats(min_value=-3, max_value=3,
                                   allow_nan=False, allow_infinity=False))
def test_generated_elementwise_kernel_matches_numpy(lengths, alpha):
    """The compiled kernel agrees with NumPy on the valid region for any
    raggedness pattern and scale factor."""
    lens = np.asarray(lengths)
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: float(alpha) * A[o, i])
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(lens)), VarExtent(batch, lens)])
    data = RaggedTensor.random(layout, seed=3)
    out, _ = Executor().build_and_run(Schedule(op), {"A": data})
    for b in range(len(lens)):
        assert np.allclose(out.valid_slice(b), np.float32(alpha) * data.valid_slice(b),
                           rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(positive_lengths)
def test_fused_kernel_matches_unfused(lengths):
    """Loop fusion is a pure scheduling decision: results are identical."""
    lens = np.asarray(lengths)
    batch, seq = Dim("batch"), Dim("seq")
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: A[o, i] + 1.0)
    layout = RaggedLayout([batch, seq],
                          [ConstExtent(len(lens)), VarExtent(batch, lens)])
    data = RaggedTensor.random(layout, seed=11)
    plain, _ = Executor().build_and_run(Schedule(op), {"A": data})
    sch = Schedule(op)
    sch.fuse_loops(batch, seq)
    fused, _ = Executor().build_and_run(sch, {"A": data})
    assert plain.allclose(fused)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=512))
def test_ceil_to_properties(value, multiple):
    out = ceil_to(value, multiple)
    assert out >= value
    assert out % multiple == 0
    assert out - value < multiple
