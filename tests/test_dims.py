"""Tests for named dimensions."""

import pytest

from repro.core.dims import Dim, DimKind, FusedDim, fresh_dims


class TestDim:
    def test_name_assigned(self):
        d = Dim("batch")
        assert d.name == "batch"

    def test_auto_name_unique(self):
        a, b = Dim(), Dim()
        assert a.name != b.name

    def test_identity_equality(self):
        a = Dim("x")
        b = Dim("x")
        assert a == a
        assert a != b

    def test_hashable_by_identity(self):
        a = Dim("x")
        b = Dim("x")
        mapping = {a: 1, b: 2}
        assert mapping[a] == 1
        assert mapping[b] == 2

    def test_repr_contains_name(self):
        assert "seq" in repr(Dim("seq"))

    def test_renamed_creates_new_identity(self):
        a = Dim("x")
        b = a.renamed("y")
        assert b.name == "y"
        assert a != b


class TestFusedDim:
    def test_parents(self):
        o, i = Dim("o"), Dim("i")
        f = FusedDim(outer=o, inner=i)
        assert f.parents() == (o, i)

    def test_default_name_from_parents(self):
        o, i = Dim("batch"), Dim("seq")
        f = FusedDim(outer=o, inner=i)
        assert "batch" in f.name and "seq" in f.name

    def test_missing_parent_raises(self):
        f = FusedDim()
        with pytest.raises(ValueError):
            f.parents()

    def test_is_a_dim(self):
        f = FusedDim(outer=Dim("a"), inner=Dim("b"))
        assert isinstance(f, Dim)

    def test_hashable(self):
        f = FusedDim(outer=Dim("a"), inner=Dim("b"))
        assert {f: 1}[f] == 1


class TestHelpers:
    def test_fresh_dims(self):
        batch, seq, hidden = fresh_dims("batch", "seq", "hidden")
        assert [d.name for d in (batch, seq, hidden)] == ["batch", "seq", "hidden"]

    def test_dimkind_values(self):
        assert DimKind.CONSTANT.value == "cdim"
        assert DimKind.VARIABLE.value == "vdim"
