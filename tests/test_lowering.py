"""Tests for lowering schedules to the concrete loop-nest representation."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import Annotation, LoopKind
from repro.core.lowering import BoundSpec, lower_schedule
from repro.core.operator import compute, input_tensor
from repro.core.schedule import Schedule


def elementwise_op(lengths=(5, 2, 3)):
    batch, seq = Dim("batch"), Dim("seq")
    lens = np.asarray(lengths)
    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lens)), VarExtent(batch, lens)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lens)), VarExtent(batch, lens)],
                 lambda o, i: 2.0 * A[o, i])
    return op, batch, seq


class TestPlainLowering:
    def test_loop_kinds(self):
        op, batch, seq = elementwise_op()
        lowered = lower_schedule(Schedule(op))
        assert lowered.loops[0].kind is LoopKind.CONSTANT
        assert lowered.loops[1].kind is LoopKind.VARIABLE

    def test_bound_table_registered(self):
        op, batch, seq = elementwise_op()
        lowered = lower_schedule(Schedule(op))
        bound = lowered.loops[1].bound
        assert not bound.is_const
        assert list(lowered.aux_arrays[bound.table_name]) == [5, 2, 3]

    def test_padded_bound_table(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 4)
        sch.pad_dimension(seq, 4)
        lowered = lower_schedule(sch)
        assert list(lowered.aux_arrays[lowered.loops[1].bound.table_name]) == [8, 4, 4]

    def test_tensor_plans(self):
        op, batch, seq = elementwise_op()
        lowered = lower_schedule(Schedule(op))
        assert "A" in lowered.input_plans
        assert lowered.input_plans["A"].is_ragged
        assert lowered.output_plan.is_ragged

    def test_dense_input_plan_has_constant_strides(self):
        a, b = Dim("a"), Dim("b")
        W = input_tensor("W", [a, b], [3, 4])
        op = compute("Y", [a, b], [3, 4], lambda i, j: 1.0 * W[i, j])
        lowered = lower_schedule(Schedule(op))
        assert lowered.input_plans["W"].dense_strides == (4, 1)

    def test_annotations_preserved(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.parallel(batch)
        lowered = lower_schedule(sch)
        assert lowered.loops[0].annotation is Annotation.PARALLEL


class TestFusionLowering:
    def test_fused_loop_bound_is_sum(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        lowered = lower_schedule(sch)
        assert len(lowered.loops) == 1
        assert lowered.loops[0].kind is LoopKind.FUSED
        assert lowered.loops[0].bound.value == 10

    def test_fusion_maps_registered(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        lowered = lower_schedule(sch)
        fmap = lowered.loops[0].fusion.map_name
        assert f"{fmap}_ffo" in lowered.aux_arrays
        assert f"{fmap}_row" in lowered.aux_arrays
        assert lowered.aux_arrays[f"{fmap}_ffo"].size == 10

    def test_fused_with_loop_padding(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 2)
        sch.pad_dimension(seq, 2)
        sch.fuse_loops(batch, seq)
        lowered = lower_schedule(sch)
        # padded lengths 6, 2, 4 -> fused bound 12
        assert lowered.loops[0].bound.value == 12

    def test_dim_recovery_entries(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        lowered = lower_schedule(sch)
        assert lowered.dim_recovery[batch][0] == "fused_outer"
        assert lowered.dim_recovery[seq][0] == "fused_inner"

    def test_output_dim_fusion_flag(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.fuse_loops(batch, seq)
        sch.fuse_dimensions(batch, seq)
        lowered = lower_schedule(sch)
        assert lowered.output_dims_fused
        assert not lowered.output_plan.is_ragged


class TestSplitLowering:
    def test_split_vloop_produces_guard(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.split(seq, 4)
        lowered = lower_schedule(sch)
        inner = lowered.loops[2]
        assert inner.guard is not None
        assert inner.guard.factor == 4

    def test_split_with_matching_padding_elides_guard(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.pad_loop(seq, 4)
        sch.pad_dimension(seq, 4)
        sch.split(seq, 4)
        lowered = lower_schedule(sch)
        assert lowered.loops[2].guard is None

    def test_split_tiles_table(self):
        op, batch, seq = elementwise_op()
        sch = Schedule(op)
        sch.split(seq, 4)
        lowered = lower_schedule(sch)
        outer = lowered.loops[1]
        assert not outer.bound.is_const
        assert list(lowered.aux_arrays[outer.bound.table_name]) == [2, 1, 1]

    def test_split_constant_loop(self):
        a, b = Dim("a"), Dim("b")
        W = input_tensor("W", [a, b], [2, 8])
        op = compute("Y", [a, b], [2, 8], lambda i, j: 1.0 * W[i, j])
        sch = Schedule(op)
        sch.split(b, 4)
        lowered = lower_schedule(sch)
        assert lowered.loops[1].bound.value == 2
        assert lowered.loops[2].bound.value == 4
        assert lowered.loops[2].guard is None


class TestRemapLowering:
    def test_remap_permutation_sorted_by_work(self):
        op, batch, seq = elementwise_op((2, 9, 4))
        sch = Schedule(op)
        sch.parallel(batch)
        sch.thread_remap(batch, "sort_desc")
        lowered = lower_schedule(sch)
        perm = lowered.aux_arrays["remap_batch"]
        assert list(perm) == [1, 2, 0]
        assert lowered.loops[0].remap_name == "remap_batch"
