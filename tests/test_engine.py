"""Execution engines and in-place arena scheduling.

The engine layer's contract: any step order respecting the plan's
dependence edges (data + slab-reuse + in-place write-after-read) computes
bit-identical results.  This suite pins that down three ways:

* unit tests over the planner's new dependence structure
  (``step_preds`` / ``step_succs`` / ``ready_steps``) and the in-place
  allocator, including the regression that an element-wise node whose
  input has a later live reader is NOT planned in place;
* engine unit tests (resolution, stats, error propagation, pipelined
  dispatch over fan-out graphs);
* a hypothesis differential property: ``PipelinedEngine`` + in-place
  plans stay bit-identical to ``SerialEngine`` + double-buffered plans
  across random ragged batches, masked and unmasked, stack depths
  1 / 2 / 4, with zero vector-backend fallbacks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    ExecutionEngine,
    PipelinedEngine,
    SerialEngine,
    get_engine,
)
from repro.core.executor import Executor
from repro.core.planner import plan_program
from repro.core.program import Program, ProgramError
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_program,
    run_encoder_stack_numeric,
)
from repro.ops.elementwise import add_node, relu_node
from repro.ops.projection import linear_node

SMALL = TransformerConfig(hidden_size=16, num_heads=2, head_size=8, ff_size=32,
                          num_layers=2, loop_pad=4, bulk_pad=8,
                          attention_tile=8)


def _hidden(lengths, seed=0, config=SMALL):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _bit_identical(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# Engine resolution and statistics
# ---------------------------------------------------------------------------


class TestEngineResolution:
    def test_names_resolve(self):
        assert isinstance(get_engine("serial"), SerialEngine)
        assert isinstance(get_engine("pipelined"), PipelinedEngine)
        assert isinstance(get_engine(None), SerialEngine)

    def test_instance_passes_through(self):
        engine = PipelinedEngine(max_workers=2)
        assert get_engine(engine) is engine

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_engine("warp-drive")
        with pytest.raises(TypeError):
            get_engine(42)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            PipelinedEngine(max_workers=0)

    def test_session_resolves_engine(self):
        assert Session(backend="vector").engine.name == "serial"
        session = Session(backend="vector", engine="pipelined")
        assert session.engine.name == "pipelined"
        assert session.stats()["engine"]["engine"] == "pipelined"

    def test_stats_accumulate_and_reset(self):
        engine = SerialEngine()
        session = Session(backend="vector", engine=engine,
                          executor=Executor(backend="vector"))
        p = Program("p")
        x = p.add_input("x", shape=(4,))
        p.add_host("double", lambda out, a: np.multiply(a, 2.0, out=out),
                   [x], output_shapes={"y": (4,)})
        p.mark_output("y")
        session.run(p, {"x": np.ones(4, np.float32)})
        session.run(p, {"x": np.ones(4, np.float32)})
        assert engine.runs == 2
        assert engine.steps_dispatched == 2
        session.reset()
        assert engine.runs == 0 and engine.steps_dispatched == 0


# ---------------------------------------------------------------------------
# Planner: dependence edges (the engine contract)
# ---------------------------------------------------------------------------


def _chain_program(n_steps=3, size=8):
    p = Program("chain")
    prev = p.add_input("x", shape=(size,))
    for i in range(n_steps):
        (prev,) = p.add_host(
            f"n{i}", lambda out, a: np.copyto(out, a), [prev],
            output_shapes={f"v{i}": (size,)})
    p.mark_output(f"v{n_steps - 1}")
    return p


class TestDependences:
    def test_chain_data_edges_and_ready_set(self):
        plan = plan_program(_chain_program(n_steps=3))
        assert plan.ready_steps == (0,)
        assert plan.step_preds[0] == ()
        assert 0 in plan.step_preds[1]
        assert 1 in plan.step_preds[2]
        assert plan.step_succs[0] == (1,) or 1 in plan.step_succs[0]

    def test_slab_reuse_adds_anti_dependence(self):
        # v2 recycles v0's slab (ping-pong chain), so step 2 must wait for
        # v0's producer AND its consumer -- not just its own data input.
        plan = plan_program(_chain_program(n_steps=3))
        assert plan.slab_of["v2"] == plan.slab_of["v0"]
        assert plan.step_preds[2] == (0, 1)

    def test_inplace_war_edge_on_sibling_reader(self):
        # c = a + a runs in place over a; b also reads a but is NOT a data
        # ancestor of c -- the plan must still order b before c.
        p = Program("war")
        x = p.add_input("x", shape=(4,))
        (a,) = p.add_host("produce", lambda out, v: np.copyto(out, v), [x],
                          output_shapes={"a": (4,)})
        (b,) = p.add_host("observe", lambda out, v: np.copyto(out, v), [a],
                          output_shapes={"b": (4,)})
        c = add_node(p, a, a, name="c")
        p.mark_output(b)
        p.mark_output(c)
        plain = plan_program(p)
        assert plain.step_preds[2] == (0,)
        inplace = plan_program(p, inplace=True)
        assert inplace.inplace_of == {"c": "a"}
        assert inplace.step_preds[2] == (0, 1)

    def test_succs_are_transpose_of_preds(self):
        program = build_encoder_program([5, 3], EncoderWeights.zeros(SMALL),
                                        SMALL, masked=True)
        plan = plan_program(program, inplace=True)
        edges = {(p_, s) for s, ps in enumerate(plan.step_preds) for p_ in ps}
        back = {(p_, s) for p_, ss in enumerate(plan.step_succs) for s in ss}
        assert edges == back
        assert plan.ready_steps == tuple(
            s for s, ps in enumerate(plan.step_preds) if not ps)


# ---------------------------------------------------------------------------
# Planner: in-place arena scheduling
# ---------------------------------------------------------------------------


class TestInplacePlanning:
    def test_default_plan_has_no_aliases(self):
        program = build_encoder_program([7, 3, 5],
                                        EncoderWeights.zeros(SMALL), SMALL)
        plan = plan_program(program)
        assert plan.inplace_of == {}
        assert not plan.inplace
        assert plan.summary()["inplace_values"] == 0

    def test_elementwise_aliases_dying_input(self):
        p = Program("ip")
        x = p.add_input("x", shape=(4, 8))
        a = linear_node(p, x, np.eye(8, dtype=np.float32), name="lin",
                        out="a")
        r = relu_node(p, a, name="relu", out="r")
        p.mark_output(r)
        plan = plan_program(p, inplace=True)
        assert plan.inplace_of == {"r": "a"}
        assert plan.slab_of["r"] == plan.slab_of["a"]
        assert plan.arena_bytes < plan_program(p).arena_bytes

    def test_live_sibling_reader_blocks_inplace(self):
        # Regression: an element-wise node whose input is consumed by
        # another, LATER reader must NOT be planned in place -- the write
        # would clobber bytes that reader has yet to consume.
        p = Program("blocked")
        x = p.add_input("x", shape=(4, 8))
        a = linear_node(p, x, np.eye(8, dtype=np.float32), name="lin",
                        out="a")
        r = relu_node(p, a, name="relu", out="r")
        mix = add_node(p, a, r, name="mix")  # reads `a` after relu does
        p.mark_output(mix)
        plan = plan_program(p, inplace=True)
        assert "r" not in plan.inplace_of
        assert plan.slab_of["r"] != plan.slab_of["a"]
        # `mix` itself is the last reader of both operands, so it aliases.
        assert plan.inplace_of == {"mix": "a"}

    def test_program_inputs_and_outputs_never_aliased(self):
        p = Program("guard")
        x = p.add_input("x", shape=(4, 8))
        r = relu_node(p, x, name="relu", out="r")  # input: not arena-backed
        (b,) = p.add_host("obs", lambda out, v: np.copyto(out, v), [r],
                          output_shapes={"b": (4, 8)})
        mix = add_node(p, r, b, name="mix")
        p.mark_output(r)  # r is a marked output: may not be overwritten
        p.mark_output(mix)
        plan = plan_program(p, inplace=True)
        assert "r" not in plan.inplace_of
        assert plan.inplace_of.get("mix") != "r"

    def test_elementwise_declaration_validated(self):
        p = Program("bad")
        x = p.add_input("x", shape=(4,))
        with pytest.raises(ProgramError):
            p.add_host("e", lambda out, v: None, [x],
                       output_shapes={"y": (4,)}, elementwise=("zzz",))
        with pytest.raises(ProgramError):
            p.add_host("f", lambda out, v: None, [x],
                       output_shapes={"y2": (8,)}, elementwise=(x,))
        with pytest.raises(ProgramError):
            p.add_host("g", lambda out, v: None, [x],
                       output_shapes={"y3": (4,)}, fills_output=False,
                       elementwise=(x,))

    def test_encoder_inplace_shrinks_arena(self):
        program = build_encoder_program([7, 3, 5],
                                        EncoderWeights.zeros(SMALL), SMALL)
        plain = plan_program(program)
        inplace = plan_program(program, inplace=True)
        assert inplace.inplace_values > 0
        assert inplace.arena_bytes < plain.arena_bytes
        assert inplace.inplace_shared_bytes > 0
        summary = inplace.summary()
        assert summary["inplace"] and summary["inplace_values"] > 0

    def test_inplace_arena_never_exceeds_double_buffered(self):
        # The planner packs both ways and keeps the aliasing only when
        # it does not lose, so the invariant holds for any shape.
        rng = np.random.default_rng(0)
        for _ in range(12):
            lengths = rng.integers(1, 24, size=int(rng.integers(1, 5)))
            program = build_encoder_program(
                [int(n) for n in lengths], EncoderWeights.zeros(SMALL),
                SMALL, masked=bool(rng.integers(2)))
            assert (plan_program(program, inplace=True).arena_bytes
                    <= plan_program(program).arena_bytes)

    def test_compiled_stats_report_node_kinds(self):
        program = build_encoder_program([5, 3], EncoderWeights.zeros(SMALL),
                                        SMALL, masked=False)
        session = Session(backend="vector",
                          executor=Executor(backend="vector"))
        stats = session.compile(program).stats()
        assert stats["node_kinds"]["kernel"] == len(program.kernel_nodes)
        assert stats["node_kinds"]["host"] == len(program.host_nodes)

    def test_memory_report_surfaces_inplace_numbers(self):
        from repro.analysis.memory import intermediate_memory_report

        report = intermediate_memory_report([7, 3, 5], SMALL, n_layers=2)
        assert report["arena_bytes_inplace"] <= report["arena_bytes"]
        assert report["inplace_values"] > 0
        assert 0.0 <= report["inplace_savings"] < 1.0
        assert report["peak_live_bytes"] <= report["arena_bytes"]

    def test_inplace_execution_matches_double_buffered(self):
        p = Program("numeric")
        x = p.add_input("x", shape=(4, 8))
        a = linear_node(p, x,
                        np.arange(64, dtype=np.float32).reshape(8, 8) / 8.0,
                        name="lin", out="a")
        r = relu_node(p, a, name="relu", out="r")
        mix = add_node(p, r, r, name="mix")
        p.mark_output(mix)
        rng = np.random.default_rng(3)
        inputs = {"x": rng.standard_normal((4, 8)).astype(np.float32)}
        ref = Session(backend="vector",
                      executor=Executor(backend="vector")).run(p, inputs)
        got = Session(backend="vector", inplace=True,
                      executor=Executor(backend="vector")).run(p, inputs)
        assert np.array_equal(ref["mix"], got["mix"])


# ---------------------------------------------------------------------------
# Pipelined dispatch
# ---------------------------------------------------------------------------


def _diamond_program(width=4, size=64):
    """One producer fanning out to ``width`` branches, merged pairwise."""
    p = Program("diamond")
    x = p.add_input("x", shape=(size,))
    (root,) = p.add_host("root", lambda out, v: np.multiply(v, 2.0, out=out),
                         [x], output_shapes={"root": (size,)})
    branches = []
    for i in range(width):
        scale = float(i + 1)
        (b,) = p.add_host(
            f"branch{i}",
            lambda out, v, s=scale: np.multiply(v, s, out=out),
            [root], output_shapes={f"b{i}": (size,)})
        branches.append(b)
    acc = branches[0]
    for i, b in enumerate(branches[1:]):
        acc = add_node(p, acc, b, name=f"merge{i}")
    p.mark_output(acc)
    return p


class TestPipelinedEngine:
    def test_fanout_matches_serial(self):
        p = _diamond_program(width=5)
        rng = np.random.default_rng(0)
        inputs = {"x": rng.standard_normal(64).astype(np.float32)}
        serial = Session(backend="vector",
                         executor=Executor(backend="vector")).run(p, inputs)
        engine = PipelinedEngine(max_workers=4)
        pipelined = Session(backend="vector", engine=engine, inplace=True,
                            executor=Executor(backend="vector")).run(p, inputs)
        out = [k for k in serial][0]
        assert np.array_equal(serial[out], pipelined[out])
        assert engine.runs == 1
        assert engine.stats()["max_inflight"] >= 1

    def test_repeated_runs_stay_identical(self):
        p = _diamond_program(width=3)
        session = Session(backend="vector", engine=PipelinedEngine(2),
                          inplace=True, executor=Executor(backend="vector"))
        rng = np.random.default_rng(1)
        inputs = {"x": rng.standard_normal(64).astype(np.float32)}
        first = session.run(p, inputs)
        for _ in range(5):
            again = session.run(p, inputs)
            assert np.array_equal(first["merge1"], again["merge1"])

    def test_host_error_propagates(self):
        p = Program("boom")
        x = p.add_input("x", shape=(4,))
        (a,) = p.add_host("ok", lambda out, v: np.copyto(out, v), [x],
                          output_shapes={"a": (4,)})

        def _explode(out, v):
            raise RuntimeError("kaboom")

        p.add_host("bad", _explode, [a], output_shapes={"b": (4,)})
        p.mark_output("b")
        session = Session(backend="vector", engine=PipelinedEngine(2),
                          executor=Executor(backend="vector"))
        with pytest.raises(RuntimeError, match="kaboom"):
            session.run(p, {"x": np.ones(4, np.float32)})

    def test_needs_dependence_edges(self):
        with pytest.raises(ValueError):
            PipelinedEngine(2).execute([(1, lambda: None, (), None, None)],
                                       None)

    def test_session_close_releases_pool_and_stays_usable(self):
        p = _diamond_program(width=3)
        rng = np.random.default_rng(4)
        inputs = {"x": rng.standard_normal(64).astype(np.float32)}
        with Session(backend="vector", engine="pipelined",
                     executor=Executor(backend="vector")) as session:
            first = session.run(p, inputs)
            assert session.engine._pool is not None
        assert session.engine._pool is None  # closed on context exit
        # The engine recreates its pool lazily: the session stays usable.
        again = session.run(p, inputs)
        assert np.array_equal(first["merge1"], again["merge1"])
        session.close()
        session.close()  # idempotent

    def test_session_close_leaves_shared_engine_instance_alone(self):
        # An engine passed as an INSTANCE may serve other sessions:
        # closing one session must not tear down its pool.
        engine = PipelinedEngine(max_workers=2)
        p = _diamond_program(width=3)
        inputs = {"x": np.ones(64, np.float32)}
        with Session(backend="vector", engine=engine,
                     executor=Executor(backend="vector")) as session:
            session.run(p, inputs)
        assert engine._pool is not None  # still alive for other sessions
        other = Session(backend="vector", engine=engine,
                        executor=Executor(backend="vector"))
        other.run(p, inputs)  # shared engine still serves runs
        engine.close()
        assert engine._pool is None


# ---------------------------------------------------------------------------
# Differential property: pipelined + in-place == serial + double-buffered
# ---------------------------------------------------------------------------


_WEIGHTS = EncoderWeights.random(SMALL, seed=11)
_SERIAL = Session(backend="vector", executor=Executor(backend="vector"))
_PIPELINED = Session(backend="vector", executor=Executor(backend="vector"),
                     engine=PipelinedEngine(max_workers=3), inplace=True)


class TestEngineDifferential:
    @settings(max_examples=8, deadline=None)
    @given(lengths=st.lists(st.integers(min_value=1, max_value=12),
                            min_size=1, max_size=4),
           masked=st.booleans(),
           n_layers=st.sampled_from([1, 2, 4]))
    def test_pipelined_inplace_bit_identical_to_serial(self, lengths, masked,
                                                       n_layers):
        hidden = _hidden(lengths, seed=sum(lengths) + n_layers)
        ref = run_encoder_stack_numeric(hidden, _WEIGHTS, SMALL,
                                        masked=masked, n_layers=n_layers,
                                        session=_SERIAL)
        got = run_encoder_stack_numeric(hidden, _WEIGHTS, SMALL,
                                        masked=masked, n_layers=n_layers,
                                        session=_PIPELINED)
        assert _bit_identical(ref.hidden, got.hidden)
        for session in (_SERIAL, _PIPELINED):
            codegen = session.stats()["codegen"]
            assert codegen["fallbacks"] == 0, codegen["fallback_reasons"]

    def test_stack_depths_explicitly(self):
        # The non-random anchor of the property above: both masked
        # variants at every advertised depth.
        hidden = _hidden((7, 3, 5), seed=2)
        for masked in (False, True):
            for n_layers in (1, 2, 4):
                ref = run_encoder_stack_numeric(
                    hidden, _WEIGHTS, SMALL, masked=masked,
                    n_layers=n_layers, session=_SERIAL)
                got = run_encoder_stack_numeric(
                    hidden, _WEIGHTS, SMALL, masked=masked,
                    n_layers=n_layers, session=_PIPELINED)
                assert _bit_identical(ref.hidden, got.hidden)
