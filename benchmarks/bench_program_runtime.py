"""Program runtime vs op-by-op dispatch on the transformer encoder layer.

The ragged program graph runtime compiles the whole encoder layer ahead of
time for one raggedness signature -- every SDPA kernel lowered/vectorized
once, intermediates liveness-planned into reusable arena slabs -- and then
replays mini-batches with a single flat dispatch loop.  This benchmark
measures what that buys over op-by-op ``build_and_run`` execution (both
paths warm, both on the vector backend, bit-identical outputs):

* warm-cache per-batch wall time (median over repeats);
* per-batch intermediate allocation counts (op-by-op allocates one fresh
  buffer per operator output; the session reuses preallocated slabs);
* peak intermediate bytes: planner arena vs summed per-op allocation.

Writes ``benchmarks/results/bench_program_runtime.{txt,json}``.  With
``--smoke`` it runs a reduced problem and asserts the headline claims
(arena >= 30% smaller than per-op allocation, zero vector-backend
fallbacks, bit-identical outputs, program path not slower).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    encoder_program,
    run_encoder_layer_numeric,
    run_encoder_layer_opbyop,
)

from harness import format_row, write_json_result, write_result


def _make_inputs(batch: int, config: TransformerConfig, seed: int = 0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(8, 48, size=batch)
    hidden = [rng.standard_normal((int(n), config.hidden_size))
              .astype(np.float32) for n in lengths]
    return hidden


def _median_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def run_benchmark(smoke: bool = False) -> dict:
    config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                               ff_size=128, num_layers=2, loop_pad=4,
                               bulk_pad=16, attention_tile=8)
    batch = 8 if smoke else 24
    repeats = 10 if smoke else 30

    session = Session(backend="vector", executor=None)
    rows = [format_row(["variant", "op-by-op ms", "program ms", "speedup",
                        "per-op KiB", "arena KiB", "arena saves",
                        "allocs/batch", "slabs"],
                       [10, 12, 12, 8, 10, 10, 11, 12, 6])]
    payload = {"config": {"batch": batch, "repeats": repeats,
                          "hidden_size": config.hidden_size},
               "variants": {}}

    for masked in (False, True):
        variant = "masked" if masked else "unmasked"
        hidden = _make_inputs(batch, config, seed=1 if masked else 0)
        weights = EncoderWeights.random(config, seed=2)

        # Warm both paths (compile kernels, build program, plan arena).
        ref = run_encoder_layer_opbyop(hidden, weights, config, masked=masked,
                                       backend="vector")
        got = run_encoder_layer_numeric(hidden, weights, config,
                                        masked=masked, session=session)
        bit_identical = all(np.array_equal(a, b)
                            for a, b in zip(ref.hidden, got.hidden))

        opbyop_ms = _median_ms(
            lambda: run_encoder_layer_opbyop(hidden, weights, config,
                                             masked=masked, backend="vector"),
            repeats)
        program_ms = _median_ms(
            lambda: run_encoder_layer_numeric(hidden, weights, config,
                                              masked=masked, session=session),
            repeats)

        program = encoder_program([h.shape[0] for h in hidden], weights,
                                  config, masked=masked, session=session)
        plan = session.compile(program).plan
        stats = session.stats()

        payload["variants"][variant] = {
            "opbyop_ms_per_batch": opbyop_ms,
            "program_ms_per_batch": program_ms,
            "dispatch_speedup": opbyop_ms / max(program_ms, 1e-9),
            "bit_identical": bool(bit_identical),
            "per_op_alloc_bytes": plan.naive_bytes,
            "arena_peak_bytes": plan.arena_bytes,
            "arena_savings": plan.reuse_savings,
            "per_op_allocs_per_batch": plan.num_values,
            "arena_allocs_per_batch": 0,
            "arena_slabs": plan.num_slabs,
            "codegen": stats["codegen"],
        }
        rows.append(format_row(
            [variant, opbyop_ms, program_ms, opbyop_ms / max(program_ms, 1e-9),
             plan.naive_bytes / 1024.0, plan.arena_bytes / 1024.0,
             f"{plan.reuse_savings:.0%}", plan.num_values, plan.num_slabs],
            [10, 12, 12, 8, 10, 10, 11, 12, 6]))

    write_result("bench_program_runtime", rows)
    write_json_result("bench_program_runtime", payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the headline claims")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        for variant, result in payload["variants"].items():
            assert result["bit_identical"], (
                f"{variant}: program output != op-by-op output")
            assert result["codegen"]["fallbacks"] == 0, (
                f"{variant}: vector-backend fallbacks "
                f"{result['codegen']['fallback_reasons']}")
            assert result["arena_savings"] >= 0.30, (
                f"{variant}: arena saves only {result['arena_savings']:.0%} "
                "over per-op allocation (expected >= 30%)")
            assert result["dispatch_speedup"] >= 0.9, (
                f"{variant}: program dispatch slower than op-by-op "
                f"({result['dispatch_speedup']:.2f}x)")
        print("smoke checks passed: bit-identical, zero fallbacks, "
              ">=30% arena savings, dispatch not slower")
    return 0


if __name__ == "__main__":
    sys.exit(main())
