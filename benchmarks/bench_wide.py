"""Wide execution: fused K-request programs across the three engines.

PR 5's honest finding was that the encoder stack is a serial dependence
chain (``max_inflight`` 1), so ``PipelinedEngine`` pays worker overhead
and loses to ``SerialEngine`` on every real workload.  This benchmark
measures the fix: ``merge_programs`` fuses K independent request groups
into one wide program whose plan has genuine width, and the sweep runs
the fused K in {1, 2, 4, 8} programs through ``SerialEngine``,
``PipelinedEngine`` and ``ProcessPoolEngine``, recording requests/sec,
p50 dispatch latency, achieved ``max_inflight``, and the fused-arena
footprint against K separate arenas.

Whether a pool engine *wins* wall-clock depends on the host: overlap
needs cores.  The JSON records the host's CPU count and, when the pools
lose (e.g. on a single-core container), the per-step overhead breakdown
that explains it -- the honest-finding contract of the wide-execution
issue.  Bit-identity does not depend on the host and is always asserted
in ``--smoke``: every fused output must equal the per-request serial
reference bit for bit, ``max_inflight >= min(K, workers)``, and
arena(fused K) < K x arena(single).

Writes ``benchmarks/results/bench_wide.{txt,json}`` and the trajectory
artifact ``BENCH_wide.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.engine import PipelinedEngine, ProcessPoolEngine
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    encoder_stack_program,
    encoder_wide_program,
)

from harness import format_row, write_json_result, write_result

_WIDTHS = [4, 10, 9, 12, 12, 9, 10, 7]
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _groups(k: int, per_group: int, config: TransformerConfig, seed: int,
            low: int, high: int):
    rng = np.random.default_rng(seed)
    groups, inputs = [], []
    for _ in range(k):
        lengths = tuple(int(n) for n in
                        rng.integers(low, high, size=per_group))
        groups.append(lengths)
        inputs.append(np.concatenate(
            [rng.standard_normal((n, config.hidden_size)).astype(np.float32)
             for n in lengths], axis=0))
    return groups, inputs


def _p50_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def run_benchmark(smoke: bool = False) -> dict:
    if smoke:
        config = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                                   ff_size=32, num_layers=2, loop_pad=4,
                                   bulk_pad=8, attention_tile=8)
        ks, per_group, repeats, low, high = (1, 2, 4), 2, 5, 2, 9
    else:
        config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                                   ff_size=128, num_layers=2, loop_pad=4,
                                   bulk_pad=16, attention_tile=8)
        ks, per_group, repeats, low, high = (1, 2, 4, 8), 3, 10, 8, 32
    n_layers = 2
    workers = max(ks)
    weights = EncoderWeights.random(config, seed=2)

    serial = Session(backend="vector", engine="serial")
    pipelined_engine = PipelinedEngine(max_workers=workers)
    pipelined = Session(backend="vector", engine=pipelined_engine)
    process_engine = ProcessPoolEngine(max_workers=workers)
    process = Session(backend="vector", engine=process_engine)
    process_engine.warm_up()
    sessions = (("serial", serial), ("pipelined", pipelined),
                ("process", process))

    rows = [format_row(["K", "engine", "p50 ms", "req/s", "steps",
                        "us/step", "inflight", "bit-id"], _WIDTHS)]
    payload = {
        "host": {"cpus": os.cpu_count() or 1},
        "config": {"hidden_size": config.hidden_size, "n_layers": n_layers,
                   "per_group": per_group, "repeats": repeats,
                   "workers": workers, "smoke": bool(smoke)},
        "k_sweep": {},
    }

    for k in ks:
        groups, inputs = _groups(k, per_group, config, seed=40 + k,
                                 low=low, high=high)
        # per-request serial reference: each group as its own program run
        refs = []
        for lengths, packed in zip(groups, inputs):
            program = encoder_stack_program(lengths, weights, config,
                                            masked=True, n_layers=n_layers,
                                            session=serial)
            refs.append(serial.run(program,
                                   {"tokens": packed})["out_tokens"])

        entry = {"groups": [list(g) for g in groups], "engines": {}}
        plan_single = serial.compile(encoder_stack_program(
            groups[0], weights, config, masked=True, n_layers=n_layers,
            session=serial)).plan
        requests = k * per_group

        for engine_name, session in sessions:
            session.engine.reset_stats()
            wide = encoder_wide_program(groups, weights, config, masked=True,
                                        n_layers=n_layers, session=session)
            info = wide.merge_info
            if info is not None:
                bound = {info.input_name(i, "tokens"): packed
                         for i, packed in enumerate(inputs)}
                out_names = [info.output_name(i, "out_tokens")
                             for i in range(k)]
            else:  # K == 1: the wide program IS the stack program
                bound = {"tokens": inputs[0]}
                out_names = ["out_tokens"]

            outs = session.run(wide, bound)  # warm: compile + install
            bit_identical = all(np.array_equal(outs[name], ref)
                                for name, ref in zip(out_names, refs))
            p50 = _p50_ms(lambda: session.run(wide, bound,
                                              copy_outputs=False), repeats)
            plan = session.compile(wide).plan
            stats = session.engine.stats()
            engine_entry = {
                "p50_dispatch_ms": p50,
                "requests_per_s": requests / (p50 / 1e3),
                "bit_identical": bool(bit_identical),
                "steps": len(plan.order),
                "dispatches_per_request": len(plan.order) / requests,
                "us_per_step": p50 * 1e3 / len(plan.order),
                "max_inflight": stats.get("max_inflight", 1),
                "plan_max_width": plan.max_width,
                "arena_bytes_fused": plan.arena_bytes,
                "arena_bytes_k_singles": k * plan_single.arena_bytes,
                "engine_stats": stats,
            }
            entry["engines"][engine_name] = engine_entry
            rows.append(format_row(
                [k, engine_name, p50, engine_entry["requests_per_s"],
                 len(plan.order), engine_entry["us_per_step"],
                 engine_entry["max_inflight"],
                 "yes" if bit_identical else "NO"], _WIDTHS))
        payload["k_sweep"][str(k)] = entry

    # The honest finding: who wins at K >= 4, and if serial does, the
    # per-step overhead breakdown that explains it.
    verdicts = {}
    for k in ks:
        if k < 4:
            continue
        engines = payload["k_sweep"][str(k)]["engines"]
        serial_ms = engines["serial"]["p50_dispatch_ms"]
        verdicts[str(k)] = {
            name: {
                "p50_ms": e["p50_dispatch_ms"],
                "speedup_vs_serial": serial_ms / e["p50_dispatch_ms"],
                "beats_serial": e["p50_dispatch_ms"] < serial_ms,
                "overhead_us_per_step_vs_serial": (
                    e["us_per_step"] - engines["serial"]["us_per_step"]),
                "max_inflight": e["max_inflight"],
            }
            for name, e in engines.items() if name != "serial"
        }
    any_win = any(v["beats_serial"] for per_k in verdicts.values()
                  for v in per_k.values())
    payload["finding"] = {
        "pool_engine_beats_serial_at_k_ge_4": any_win,
        "verdicts": verdicts,
        "note": (
            "pool engine wins at K >= 4" if any_win else
            f"host has {payload['host']['cpus']} CPU core(s): overlap "
            "cannot buy wall-clock without parallel hardware, so the "
            "dispatch overhead per step (IPC + shared-memory copies for "
            "the process pool, future scheduling for threads) is pure "
            "loss; the achieved width (max_inflight) shows the fused "
            "plan exposes the parallelism, the per-step overhead deltas "
            "quantify its price"),
    }

    # IPC message-batching A/B: the same widest fused program through a
    # pool running the pre-batching protocol (one queue message per
    # step, batch_dispatch=False) vs the batched ready-set dispatch the
    # sweep above used.  The delta prices the per-message IPC overhead
    # the batching amortises.
    k = max(ks)
    groups, inputs = _groups(k, per_group, config, seed=40 + k,
                             low=low, high=high)
    engines_ab = {}
    for mode in (True, False):
        eng = ProcessPoolEngine(max_workers=workers, batch_dispatch=mode)
        sess = Session(backend="vector", engine=eng)
        eng.warm_up()
        engines_ab[mode] = (eng, sess)
    wide_ab = {mode: encoder_wide_program(groups, weights, config,
                                          masked=True, n_layers=n_layers,
                                          session=sess)
               for mode, (eng, sess) in engines_ab.items()}
    info = wide_ab[True].merge_info
    if info is not None:
        bound = {info.input_name(i, "tokens"): packed
                 for i, packed in enumerate(inputs)}
        out_names = [info.output_name(i, "out_tokens") for i in range(k)]
    else:
        bound = {"tokens": inputs[0]}
        out_names = ["out_tokens"]
    refs = []
    for lengths, packed in zip(groups, inputs):
        program = encoder_stack_program(lengths, weights, config,
                                        masked=True, n_layers=n_layers,
                                        session=serial)
        refs.append(serial.run(program, {"tokens": packed})["out_tokens"])
    identical = {}
    for mode, (eng, sess) in engines_ab.items():
        outs = sess.run(wide_ab[mode], bound)  # warm: compile + install
        identical[mode] = all(np.array_equal(outs[name], ref)
                              for name, ref in zip(out_names, refs))
    # Interleave A/B per repeat (alternating order) so both protocols
    # see the same host load and neither benefits from going second.
    times = {True: [], False: []}
    for it in range(max(repeats, 5)):
        order = (True, False) if it % 2 == 0 else (False, True)
        for mode in order:
            eng, sess = engines_ab[mode]
            t0 = time.perf_counter()
            sess.run(wide_ab[mode], bound, copy_outputs=False)
            times[mode].append((time.perf_counter() - t0) * 1e3)
    batched_p50 = float(np.median(times[True]))
    unbatched_p50 = float(np.median(times[False]))
    unbatched_identical = identical[True] and identical[False]
    unbatched_engine, unbatched = engines_ab[False]
    n_steps = len(unbatched.compile(wide_ab[False]).plan.order)
    payload["ipc_batching"] = {
        "k": k,
        "steps": n_steps,
        "batched_p50_ms": batched_p50,
        "unbatched_p50_ms": unbatched_p50,
        "batched_us_per_step": batched_p50 * 1e3 / n_steps,
        "unbatched_us_per_step": unbatched_p50 * 1e3 / n_steps,
        "saved_us_per_step": (unbatched_p50 - batched_p50) * 1e3 / n_steps,
        "speedup": unbatched_p50 / batched_p50,
        "bit_identical": bool(unbatched_identical),
        "note": (
            "batching collapses a burst of R ready steps into "
            "ceil(R / max_workers)-step messages per idle worker; the "
            "saving scales with how often the ready set outruns the "
            "whole pool, so at modest K (or on a contended host where "
            "the ready set stays small) the two protocols converge and "
            "the delta sits inside run noise"),
    }
    rows.append("")
    rows.append(format_row(
        [k, "process-1msg", unbatched_p50,
         k * per_group / (unbatched_p50 / 1e3), n_steps,
         payload["ipc_batching"]["unbatched_us_per_step"],
         unbatched_engine.stats().get("max_inflight", 1),
         "yes" if unbatched_identical else "NO"], _WIDTHS))
    for eng, sess in engines_ab.values():
        sess.close()
        eng.close()

    write_result("bench_wide", rows)
    write_json_result("bench_wide", payload)
    if not smoke:
        # the committed trajectory artifact tracks the full sweep only;
        # CI smoke runs must not clobber it with reduced-problem numbers
        with open(os.path.join(_REPO_ROOT, "BENCH_wide.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for session in (process, pipelined, serial):
        session.close()
    process_engine.close()
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the wide-execution "
                             "claims")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        workers = payload["config"]["workers"]
        for k_str, entry in payload["k_sweep"].items():
            k = int(k_str)
            for name, e in entry["engines"].items():
                assert e["bit_identical"], (
                    f"K={k} {name}: fused output != per-request serial "
                    "reference")
            process_stats = entry["engines"]["process"]
            assert process_stats["max_inflight"] >= min(k, workers), (
                f"K={k}: process max_inflight "
                f"{process_stats['max_inflight']} < {min(k, workers)}")
            if k > 1:
                fused = process_stats["arena_bytes_fused"]
                singles = process_stats["arena_bytes_k_singles"]
                assert fused < singles, (
                    f"K={k}: fused arena {fused} not below K x single "
                    f"{singles}")
        assert payload["ipc_batching"]["bit_identical"], (
            "batch_dispatch=False: fused output != per-request serial "
            "reference")
        print("smoke checks passed: fused outputs bit-identical on all "
              "engines (batched and unbatched dispatch), process "
              "max_inflight >= min(K, workers), arena(fused K) < K x "
              "arena(single)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
