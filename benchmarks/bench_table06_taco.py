"""Table 6 / Section 7.5: comparison against a Taco-like sparse tensor compiler.

Runs trmm, tradd and trmul on triangular matrices with CoRa-style ragged
execution versus CSR / BCSR sparse-compiler execution, reporting the
sparse-compiler slowdowns.
"""

from harness import format_row, gpu_model, write_result

from repro.baselines import sparse_compiler as sc
from repro.ops import trmm

SIZES = (128, 512, 2048, 8192)


def compute_table():
    model = gpu_model()
    rows = []
    for n in SIZES:
        cora_trmm = model.latency_ms(trmm.cora_trmm_workload(n))
        cora_add = model.latency_ms(trmm.cora_triangular_elementwise_workload(n, "add"))
        cora_mul = model.latency_ms(trmm.cora_triangular_elementwise_workload(n, "mul"))
        rows.append({
            "n": n,
            "trmm_cora": cora_trmm,
            "trmm_csr": model.latency_ms(sc.taco_trmm_workload(n, "csr")) / cora_trmm,
            "trmm_bcsr": model.latency_ms(sc.taco_trmm_workload(n, "bcsr")) / cora_trmm,
            "tradd_csr": model.latency_ms(sc.taco_elementwise_workload(n, "add", "csr")) / cora_add,
            "trmul_csr": model.latency_ms(sc.taco_elementwise_workload(n, "mul", "csr")) / cora_mul,
            "trmul_bcsr": model.latency_ms(sc.taco_elementwise_workload(n, "mul", "bcsr")) / cora_mul,
        })
    return rows


def test_table06_taco(benchmark):
    rows = benchmark(compute_table)
    widths = (7, 12, 11, 12, 11, 11, 12)
    lines = ["Table 6: Taco slowdowns relative to CoRa (x)",
             format_row(["size", "CoRa trmm ms", "trmm CSR", "trmm BCSR",
                         "tradd CSR", "trmul CSR", "trmul BCSR"], widths)]
    for row in rows:
        lines.append(format_row([row["n"], row["trmm_cora"], row["trmm_csr"],
                                 row["trmm_bcsr"], row["tradd_csr"],
                                 row["trmul_csr"], row["trmul_bcsr"]], widths))
    write_result("table06_taco", lines)
    # Shape: the sparse compiler is slower in (almost) every configuration
    # and the trmm gap grows with size, reaching well above 20x.
    assert rows[-1]["trmm_csr"] > 20.0
    assert rows[-1]["trmm_csr"] > rows[0]["trmm_csr"]
    for row in rows[1:]:
        assert row["tradd_csr"] > 1.0
        assert row["trmul_csr"] > 1.0
