"""Scalar vs. vectorized codegen backend on the Figure 9 / 10 workloads.

Measures, for the executor-backed compiled kernels:

* wall-time speedup of the vector (NumPy slice / einsum) backend over the
  scalar reference backend on the Figure 9 vgemm and Figure 10 trmm
  workloads (scaled down so the scalar interpreter finishes in seconds --
  the *ratio* is what matters, and it grows with the problem size);
* kernel-cache behaviour: a second ``build_and_run`` of the same schedule
  must perform zero re-lowers;
* the vectorization rate (how many kernels took the fast path vs. fell
  back to scalar) on the compiled ragged-softmax chain.

Writes a human-readable table to ``results/backend_speedup.txt`` and a
machine-readable trajectory artifact to ``results/backend_speedup.json``.

Run directly (``python benchmarks/bench_backend_speedup.py``), with
``--smoke`` for the quick CI configuration, or through pytest.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from harness import BACKENDS, format_row, write_json_result, write_result

from repro.core.executor import Executor
from repro.ops import softmax, trmm, vgemm


def _time_runs(executor: Executor, schedule, inputs, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one compiled-kernel execution."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        executor.build_and_run(schedule, inputs)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_workload(name: str, schedule, inputs, repeats: int) -> dict:
    """Compare both backends on one compiled workload, checking the cache."""
    result = {"workload": name}
    for backend in BACKENDS:
        executor = Executor(backend=backend)
        # Warm-up compiles (and, for the vector backend, verifies that the
        # kernel actually vectorized rather than falling back).
        compiled = executor.compile(schedule)
        if backend == "vector":
            result["vectorized"] = compiled.backend_name == "vector"
        result[f"{backend}_s"] = _time_runs(executor, schedule, inputs, repeats)
        result[f"{backend}_lower_count"] = executor.lower_count
        result[f"{backend}_cache_hits"] = executor.cache_hits
    result["speedup"] = result["scalar_s"] / max(result["vector_s"], 1e-12)
    # The warm-up compile plus `repeats` runs all map to one lowering.
    result["cache_ok"] = (result["vector_lower_count"] == 1
                          and result["vector_cache_hits"] >= repeats)
    return result


def vgemm_case(batch: int, low: int, high: int, repeats: int) -> dict:
    """The Figure 9 vgemm workload: uniform multiple-of-8 dims in [low, high]."""
    problem = vgemm.VgemmProblem(
        ms=vgemm.uniform_multiple_lengths(batch, low, high, 8, seed=0),
        ns=vgemm.uniform_multiple_lengths(batch, low, high, 8, seed=1),
        ks=vgemm.uniform_multiple_lengths(batch, low, high, 8, seed=2),
    )
    a_list, b_list = vgemm.random_instances(problem, seed=3)
    schedule = vgemm.make_vgemm_schedule(problem.ms, problem.ns, problem.ks)
    inputs = vgemm.vgemm_ragged_inputs(a_list, b_list)
    result = bench_workload(f"fig09-vgemm-b{batch}", schedule, inputs, repeats)
    result["ragged_flops"] = problem.ragged_flops()
    return result


def trmm_case(n: int, repeats: int) -> dict:
    """The Figure 10 trmm workload: lower-triangular times dense, size n."""
    lower = trmm.make_lower_triangular(n, seed=0)
    dense = np.random.default_rng(1).standard_normal((n, n)).astype(np.float32)
    schedule = trmm.make_trmm_schedule(n)
    inputs = {"L": lower, "B": dense}
    result = bench_workload(f"fig10-trmm-n{n}", schedule, inputs, repeats)
    result["ragged_flops"] = trmm.trmm_ragged_flops(n, tile=1)
    return result


def softmax_vectorization_rate(batch: int, max_len: int) -> dict:
    """Vectorization rate of the 4-kernel compiled ragged-softmax chain."""
    rng = np.random.default_rng(7)
    lengths = rng.integers(2, max_len + 1, size=batch)
    scores = [rng.standard_normal((4, s, s)).astype(np.float32)
              for s in lengths]
    executor = Executor(backend="vector")
    softmax.softmax_compiled(scores, executor=executor)
    vectorized = executor.backend.vectorized_count
    fallback = executor.backend.fallback_count
    return {
        "workload": f"softmax-chain-b{batch}",
        "kernels_vectorized": vectorized,
        "kernels_fallback": fallback,
        "vectorization_rate": vectorized / max(vectorized + fallback, 1),
    }


def compute_results(smoke: bool = False) -> dict:
    if smoke:
        cases = [vgemm_case(batch=4, low=8, high=24, repeats=2),
                 trmm_case(n=32, repeats=2)]
    else:
        cases = [vgemm_case(batch=8, low=16, high=48, repeats=3),
                 vgemm_case(batch=16, low=24, high=64, repeats=3),
                 trmm_case(n=64, repeats=3)]
    return {
        "cases": cases,
        "softmax": softmax_vectorization_rate(batch=4, max_len=12),
        "smoke": smoke,
    }


def report(results: dict) -> None:
    widths = (20, 12, 12, 10, 12, 10)
    lines = ["Backend speedup: scalar vs vectorized codegen "
             "(Figure 9 vgemm / Figure 10 trmm workloads)"]
    lines.append(format_row(["workload", "scalar ms", "vector ms", "speedup",
                             "vectorized", "cache ok"], widths))
    for case in results["cases"]:
        lines.append(format_row(
            [case["workload"], case["scalar_s"] * 1e3, case["vector_s"] * 1e3,
             case["speedup"], str(case["vectorized"]), str(case["cache_ok"])],
            widths))
    sm = results["softmax"]
    lines.append("")
    lines.append(f"{sm['workload']}: {sm['kernels_vectorized']} kernels "
                 f"vectorized, {sm['kernels_fallback']} fell back "
                 f"(rate {sm['vectorization_rate']:.2f})")
    write_result("backend_speedup", lines)
    write_json_result("backend_speedup", results)


def test_backend_speedup():
    results = compute_results(smoke=False)
    report(results)
    for case in results["cases"]:
        assert case["vectorized"], f"{case['workload']} fell back to scalar"
        assert case["cache_ok"], f"{case['workload']} missed the kernel cache"
    # Acceptance criterion: >= 10x on the Figure 9 vgemm workload.
    vgemm_cases = [c for c in results["cases"] if "vgemm" in c["workload"]]
    assert all(c["speedup"] >= 10.0 for c in vgemm_cases), (
        [round(c["speedup"], 1) for c in vgemm_cases])
    assert results["softmax"]["vectorization_rate"] == 1.0


def main(argv) -> int:
    smoke = "--smoke" in argv
    results = compute_results(smoke=smoke)
    report(results)
    failures = [c["workload"] for c in results["cases"]
                if not (c["vectorized"] and c["cache_ok"])]
    if failures:
        print(f"FAILED: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
