"""Pytest configuration for the benchmark harness."""

import sys
import os

# Make `import harness` work when pytest is invoked from the repo root.
sys.path.insert(0, os.path.dirname(__file__))
