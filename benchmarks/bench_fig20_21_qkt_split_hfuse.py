"""Figures 20-21: operation splitting and hfusion on the QKT operator.

Figure 20 applies the optimisations to the outer non-reduction vloop;
Figure 21 additionally splits the second vloop (Split2-HFused), which the
paper finds is never better and often worse because of the extra generated
code complexity.
"""

from harness import arm64_model, format_row, gpu_model, write_result

from repro.data.datasets import sample_lengths
from repro.ops.attention import split_hfuse_workload

BATCH_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)


def compute_table():
    results = {}
    for label, model in (("Nvidia GPU", gpu_model()), ("64-core ARM CPU", arm64_model())):
        rows = []
        for bs in BATCH_SIZES:
            lengths = sample_lengths("MNLI", bs)
            base = model.latency_ms(split_hfuse_workload(lengths, "QKT", "NoSplit"))
            split = model.latency_ms(split_hfuse_workload(lengths, "QKT", "Split"))
            hf1 = model.latency_ms(split_hfuse_workload(lengths, "QKT", "Split1-HFused"))
            hf2 = model.latency_ms(split_hfuse_workload(lengths, "QKT", "Split2-HFused"))
            rows.append((bs, 1.0, split / base, hf1 / base, hf2 / base))
        results[label] = rows
    return results


def test_fig20_21_qkt_split_hfuse(benchmark):
    results = benchmark(compute_table)
    widths = (6, 9, 8, 14, 14)
    lines = ["Figures 20-21: QKT relative execution time (MNLI)"]
    for label, rows in results.items():
        lines.append(f"-- {label} --")
        lines.append(format_row(["batch", "NoSplit", "Split", "Split1-HFused",
                                 "Split2-HFused"], widths))
        for row in rows:
            lines.append(format_row(list(row), widths))
    write_result("fig20_21_qkt_split_hfuse", lines)
    gpu_rows = results["Nvidia GPU"]
    # Splitting the second vloop is never better than splitting only the first.
    assert all(row[4] >= row[3] - 1e-9 for row in gpu_rows)
    # On the CPU, splitting helps but hfusion adds nothing.
    cpu_rows = results["64-core ARM CPU"]
    assert cpu_rows[-1][2] < 1.0
