"""Table 4 / Figure 11: transformer encoder layer latencies on the GPU.

Reports the per-layer latency of PyTorch, FasterTransformer (FT), CoRa and
FT-Eff for the eight datasets at batch sizes 32 / 64 / 128, plus the
geomean speedups of Figure 11.
"""

from harness import PAPER_BATCH_SIZES, format_row, geomean, gpu_model, write_result

from repro.data.datasets import dataset_names, sample_lengths
from repro.models.transformer import encoder_layer_workload

STRATEGIES = ("pytorch", "ft", "cora", "ft-eff")


def compute_table():
    model = gpu_model()
    rows = []
    for ds in dataset_names():
        for bs in PAPER_BATCH_SIZES:
            lengths = sample_lengths(ds, bs)
            latencies = {
                strategy: model.latency_ms(encoder_layer_workload(lengths, strategy))
                for strategy in STRATEGIES
            }
            rows.append((ds, bs, latencies))
    return rows


def test_table04_encoder_gpu(benchmark):
    rows = benchmark(compute_table)
    widths = (9, 6, 9, 9, 9, 9)
    lines = ["Table 4: encoder layer latencies (ms, simulated V100)",
             format_row(["dataset", "batch", "PyTorch", "FT", "CoRa", "FT-Eff"],
                        widths)]
    for ds, bs, lat in rows:
        lines.append(format_row([ds, bs, lat["pytorch"], lat["ft"],
                                 lat["cora"], lat["ft-eff"]], widths))
    speedup_pt = geomean([lat["pytorch"] / lat["cora"] for _, _, lat in rows])
    speedup_ft = geomean([lat["ft"] / lat["cora"] for _, _, lat in rows])
    ratio_fteff = geomean([lat["cora"] / lat["ft-eff"] for _, _, lat in rows])
    lines.append("")
    lines.append("Figure 11 summary (geomean over datasets and batch sizes):")
    lines.append(f"  speedup over PyTorch : {speedup_pt:.2f}x  (paper: 1.6x)")
    lines.append(f"  speedup over FT      : {speedup_ft:.2f}x")
    lines.append(f"  CoRa / FT-Eff        : {ratio_fteff:.2f}   (paper: ~1.0)")
    write_result("table04_encoder_gpu", lines)
    assert 1.3 <= speedup_pt <= 2.0
    assert 0.85 <= ratio_fteff <= 1.2
