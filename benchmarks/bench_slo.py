"""SLO benchmark: admission-controlled serving vs. FIFO at simulated
production scale.

A seeded, replayable traffic trace -- alternating Poisson and bursty
arrival phases over a mixed length distribution, with per-class
deadlines (interactive / standard / batch) -- is replayed in
deterministic *virtual* time against two scheduler configurations over
identical requests:

* ``fifo``: the seed scheduler (arrival-order admission, reject-newest
  shed, fixed bucket tolerance);
* ``slo``: priority + earliest-deadline-first admission within a
  starvation-bounded arrival window, doomed-drop (requests predicted --
  via the live service-time EWMA -- to miss their deadline are shed at
  formation instead of completing late), lowest-priority-latest-deadline
  shed, and the adaptive bucket-tolerance controller starting narrow
  and widening as traffic diversity demands.

Virtual time moves on a :class:`repro.serving.SimulatedClock`: a
deterministic service-time model advances the clock as each batch
executes (the math itself is still executed for real -- outputs are
bit-checked), so queueing dynamics, deadline expiry, and backpressure
replay identically on every run.  Reported per configuration: goodput
(completed within deadline), p50/p99 queue and end-to-end latency per
priority class, the shed/timeout/late breakdown, and the adaptive
tolerance trajectory.

Writes ``benchmarks/results/bench_slo.{txt,json}``; a full run also
refreshes the committed repo-root ``BENCH_SLO.json`` trajectory
artifact (~10^5 requests).  With ``--smoke`` a reduced trace runs and
the CI gate asserts: every request resolves to exactly one terminal
answer, the SLO configuration achieves strictly higher goodput than
FIFO under deadline pressure, and every surviving output is
bit-identical to a direct program execution (``replay_bit_identical``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import (
    AdaptiveTolerance,
    BatchScheduler,
    FailedResult,
    SimulatedClock,
)

from harness import format_row, write_json_result, write_result

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CONFIG = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                           ff_size=32, num_layers=2, loop_pad=4, bulk_pad=8,
                           attention_tile=8)

#: Priority classes with their traffic mix and relative deadlines.
CLASSES = (
    {"name": "interactive", "priority": 0, "share": 0.2, "deadline_s": 0.05},
    {"name": "standard", "priority": 1, "share": 0.5, "deadline_s": 0.20},
    {"name": "batch", "priority": 2, "share": 0.3, "deadline_s": 2.0},
)

#: Deterministic service-time model (virtual seconds per batch): a fixed
#: dispatch cost plus a per-padded-token cost, mirroring the compiled
#: program's work.  ~8 requests of mean length ~17 per batch => roughly
#: 1 ms of virtual service per request.
SERVICE_BASE_S = 2e-3
SERVICE_PER_TOKEN_S = 5e-5


def _service_model(batch) -> float:
    return SERVICE_BASE_S + SERVICE_PER_TOKEN_S * sum(batch.padded_lengths)


def generate_trace(num_requests: int, seed: int = 0):
    """The seeded traffic trace: (arrival_time, hidden, priority,
    deadline_s) per request, sorted by arrival.

    Arrivals alternate between a Poisson phase (mean rate just above the
    service capacity, so queues build slowly) and a bursty phase (tight
    request clumps far above capacity, so deadline pressure spikes).
    Lengths are bimodal -- mostly short interactive-style sequences with
    a long tail -- so the raggedness signatures the tolerance controller
    sees are genuinely diverse.
    """
    rng = np.random.default_rng(seed)
    shares = [c["share"] for c in CLASSES]
    trace = []
    now = 0.0
    phase_left = 0
    in_burst = False
    for _ in range(num_requests):
        if phase_left == 0:
            in_burst = not in_burst
            phase_left = int(rng.integers(50, 150)) if in_burst \
                else int(rng.integers(200, 400))
        phase_left -= 1
        if in_burst:
            now += float(rng.exponential(1.0 / 4000.0))
        else:
            now += float(rng.exponential(1.0 / 1100.0))
        if rng.random() < 0.75:
            length = int(rng.integers(4, 17))
        else:
            length = int(rng.integers(24, 49))
        cls = CLASSES[int(rng.choice(len(CLASSES), p=shares))]
        hidden = rng.standard_normal(
            (length, CONFIG.hidden_size)).astype(np.float32)
        trace.append((now, hidden, cls["priority"], cls["deadline_s"]))
    return trace


WEIGHTS = EncoderWeights.random(CONFIG, seed=1)


def make_scheduler(mode: str, clock: SimulatedClock,
                   log_batches: bool = False) -> BatchScheduler:
    session = Session(backend="vector")
    common = dict(session=session, masked=True, n_layers=2,
                  max_batch_size=8, queue_capacity=256, clock=clock,
                  sleeper=clock.advance, service_model=_service_model,
                  log_batches=log_batches)
    if mode == "fifo":
        return BatchScheduler(WEIGHTS, CONFIG, bucket_tolerance=8,
                              admission="fifo", shed_policy="reject_newest",
                              **common)
    # The SLO configuration: priority+EDF admission with doomed-drop,
    # value-aware shedding, and the tolerance controller starting
    # *narrow* (2) and widening only as traffic diversity demands.
    return BatchScheduler(WEIGHTS, CONFIG, bucket_tolerance=2,
                          admission="priority_edf",
                          shed_policy="shed_low_priority",
                          drop_doomed=True,
                          adaptive_tolerance=AdaptiveTolerance(
                              min_tolerance=2, max_tolerance=16,
                              interval=32),
                          **common)


def replay(scheduler: BatchScheduler, trace, clock: SimulatedClock):
    """Drive the trace through the scheduler in virtual time.

    Requests are submitted when the clock reaches their arrival time;
    between arrivals the scheduler steps (each step's service time
    advances the clock), so queue depth, deadline expiry and shed
    pressure evolve exactly as they would on a wall clock -- but
    deterministically.
    """
    results = {}
    ids = []
    next_arrival = 0
    t0 = time.perf_counter()
    while next_arrival < len(trace) or scheduler.pending:
        while next_arrival < len(trace) \
                and trace[next_arrival][0] <= clock.now():
            _, hidden, priority, deadline_s = trace[next_arrival]
            ids.append(scheduler.submit(hidden, priority=priority,
                                        deadline_s=deadline_s))
            next_arrival += 1
        if scheduler.pending:
            results.update(scheduler.step())
        elif next_arrival < len(trace):
            clock.advance_to(trace[next_arrival][0])
    results.update(scheduler.step())  # flush shed-result stragglers
    wall_s = time.perf_counter() - t0
    return ids, results, wall_s


def summarize(scheduler: BatchScheduler, ids, results, wall_s,
              clock: SimulatedClock) -> dict:
    stats = scheduler.stats()
    completed = sum(1 for r in ids
                    if not isinstance(results[r], FailedResult))
    by_class = {}
    for cls in CLASSES:
        hists = stats["latency_by_priority"].get(cls["priority"])
        if hists is None:
            continue
        by_class[cls["name"]] = {
            "completed": hists["total"]["count"],
            "queue_p50_s": hists["queue"]["p50_s"],
            "queue_p99_s": hists["queue"]["p99_s"],
            "total_p50_s": hists["total"]["p50_s"],
            "total_p99_s": hists["total"]["p99_s"],
        }
    return {
        "requests": len(ids),
        "completed": completed,
        "goodput_requests": stats["goodput_requests"],
        "goodput_fraction": stats["goodput_requests"] / len(ids),
        "late_completions": stats["late_completions"],
        "timed_out": stats["timed_out_requests"],
        "doomed_dropped": stats["doomed_dropped"],
        "rejected": stats["rejected_requests"],
        "failed": stats["failed_requests"],
        "num_batches": stats["num_batches"],
        "padding_overhead": stats["padding_overhead"],
        "final_bucket_tolerance": stats["bucket_tolerance"],
        "tolerance_adjustments": stats["tolerance_adjustments"],
        "distinct_signatures": stats["distinct_signatures"],
        "signature_hits": stats["signature_hits"],
        "signature_misses": stats["signature_misses"],
        "virtual_s": clock.now(),
        "wall_s": wall_s,
        "latency_by_class": by_class,
        "exactly_once": sorted(results) == sorted(ids),
    }


def run_benchmark(smoke: bool = False) -> dict:
    num_requests = 400 if smoke else 100_000
    trace = generate_trace(num_requests, seed=0)

    payload = {
        "config": {
            "num_requests": num_requests,
            "classes": [dict(c) for c in CLASSES],
            "service_base_s": SERVICE_BASE_S,
            "service_per_token_s": SERVICE_PER_TOKEN_S,
            "queue_capacity": 256,
            "max_batch_size": 8,
        },
        "modes": {},
    }

    for mode in ("fifo", "slo"):
        clock = SimulatedClock()
        scheduler = make_scheduler(mode, clock, log_batches=smoke)
        ids, results, wall_s = replay(scheduler, trace, clock)
        entry = summarize(scheduler, ids, results, wall_s, clock)
        if smoke:
            entry["replay_bit_identical"] = \
                scheduler.replay_bit_identical(results)
        if mode == "slo" and scheduler.adaptive_tolerance is not None:
            payload["tolerance_trajectory"] = \
                scheduler.adaptive_tolerance.trajectory
        payload["modes"][mode] = entry
        scheduler.session.close()

    fifo, slo = payload["modes"]["fifo"], payload["modes"]["slo"]
    payload["goodput_gain"] = (slo["goodput_fraction"]
                               - fifo["goodput_fraction"])

    widths = [8, 10, 10, 8, 8, 8, 8, 10, 10]
    rows = [format_row(["mode", "requests", "goodput", "late", "timeout",
                        "shed", "failed", "pad ovhd", "final tol"], widths)]
    for mode in ("fifo", "slo"):
        e = payload["modes"][mode]
        rows.append(format_row(
            [mode, e["requests"], f"{e['goodput_fraction']:.1%}",
             e["late_completions"], e["timed_out"], e["rejected"],
             e["failed"], f"{e['padding_overhead']:.2f}",
             e["final_bucket_tolerance"]], widths))
    rows.append("")
    lat_widths = [8, 14, 12, 12, 12, 12]
    rows.append(format_row(["mode", "class", "queue p50", "queue p99",
                            "e2e p50", "e2e p99"], lat_widths))
    for mode in ("fifo", "slo"):
        for name, lat in payload["modes"][mode]["latency_by_class"].items():
            rows.append(format_row(
                [mode, name, f"{lat['queue_p50_s'] * 1e3:.1f}ms",
                 f"{lat['queue_p99_s'] * 1e3:.1f}ms",
                 f"{lat['total_p50_s'] * 1e3:.1f}ms",
                 f"{lat['total_p99_s'] * 1e3:.1f}ms"], lat_widths))
    rows.append("")
    rows.append(f"goodput gain (slo - fifo): {payload['goodput_gain']:+.1%}")

    write_result("bench_slo", rows)
    write_json_result("bench_slo", payload)
    if not smoke:
        # the committed trajectory artifact tracks the full trace only;
        # CI smoke runs must not clobber it with reduced-trace numbers
        with open(os.path.join(_REPO_ROOT, "BENCH_SLO.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced trace + assert the SLO gate")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    fifo, slo = payload["modes"]["fifo"], payload["modes"]["slo"]
    if args.smoke:
        for mode, entry in payload["modes"].items():
            assert entry["exactly_once"], (
                f"{mode}: a request resolved zero or multiple times")
            assert entry["replay_bit_identical"], (
                f"{mode}: a survivor's output differs from direct "
                "Session.run execution")
        assert slo["goodput_fraction"] > fifo["goodput_fraction"], (
            "SLO-aware scheduling did not beat FIFO goodput under "
            f"deadline pressure ({slo['goodput_fraction']:.1%} vs "
            f"{fifo['goodput_fraction']:.1%})")
        print("smoke checks passed: exactly-once terminal resolution in "
              "both modes, survivors bit-identical to direct execution, "
              f"goodput {fifo['goodput_fraction']:.1%} (fifo) -> "
              f"{slo['goodput_fraction']:.1%} (slo)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
