"""Table 9 / Figure 25: MHA on the 8- and 64-core ARM CPUs with micro-batching.

Reports PyTorch (PT), micro-batched PyTorch (PT-UB), TensorFlow (TF),
micro-batched TensorFlow (TF-UB) and CoRa latencies plus the optimal
micro-batch sizes, and the per-operator breakdown of Figure 25 for four
representative cases.
"""

from harness import arm8_model, arm64_model, format_row, write_result

from repro.baselines.dense_padded import framework_mha_latency_ms
from repro.baselines.microbatch import microbatched_latency
from repro.data.datasets import dataset_names, sample_lengths
from repro.models.transformer import encoder_operator_breakdown, mha_workload
from repro.substrates.device import arm_cpu_8core, arm_cpu_64core

BATCH_SIZES = (32, 64, 128)
BREAKDOWN_CASES = (("MNLI", 128), ("Wiki128", 32), ("CoLA", 32), ("RACE", 128))


def compute_table():
    rows = []
    for device, model, label in ((arm_cpu_8core(), arm8_model(), "8-core"),
                                 (arm_cpu_64core(), arm64_model(), "64-core")):
        for ds in dataset_names():
            for bs in BATCH_SIZES:
                lengths = sample_lengths(ds, bs)
                pt = framework_mha_latency_ms(lengths, device, framework="pt")
                ptub = microbatched_latency(
                    lengths,
                    lambda chunk: framework_mha_latency_ms(chunk, device, framework="pt"))
                tf = model.latency_ms(mha_workload(lengths, "tf"))
                tfub = microbatched_latency(
                    lengths, lambda chunk: model.latency_ms(mha_workload(chunk, "tf")))
                cora = model.latency_ms(mha_workload(lengths, "cora"))
                rows.append((label, ds, bs, pt, ptub.best_latency_ms,
                             ptub.best_micro_batch, tf, tfub.best_latency_ms,
                             tfub.best_micro_batch, cora))
    breakdowns = {}
    model = arm64_model()
    for ds, bs in BREAKDOWN_CASES:
        lengths = sample_lengths(ds, bs)
        per_strategy = {}
        for strategy in ("tf", "cora"):
            result = model.evaluate(mha_workload(lengths, strategy))
            per_strategy[strategy] = encoder_operator_breakdown(
                {k: v * 1e3 for k, v in result.per_kernel_s.items()})
        breakdowns[(ds, bs)] = per_strategy
    return rows, breakdowns


def test_table09_mha_cpu_microbatch(benchmark):
    rows, breakdowns = benchmark(compute_table)
    widths = (8, 9, 6, 9, 9, 5, 9, 9, 5, 9)
    lines = ["Table 9: MHA latencies (ms) on the ARM CPUs",
             format_row(["cpu", "dataset", "batch", "PT", "PT-UB", "uBS",
                         "TF", "TF-UB", "uBS", "CoRa"], widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    lines.append("")
    lines.append("Figure 25: MHA per-operator breakdown on the 64-core CPU (ms)")
    groups = ("Proj1", "QKT", "Softmax", "AttnV", "Proj2")
    bwidths = (10, 6, 6) + (9,) * len(groups)
    lines.append(format_row(["dataset", "batch", "impl"] + list(groups), bwidths))
    for (ds, bs), per_strategy in breakdowns.items():
        for strategy, grouped in per_strategy.items():
            lines.append(format_row([ds, bs, strategy.upper()]
                                    + [grouped.get(g, 0.0) for g in groups], bwidths))
    write_result("table09_mha_cpu_microbatch", lines)

    rows64 = [r for r in rows if r[0] == "64-core"]
    # PyTorch's MHA does not scale to the 64-core part (Figure 27 pathology):
    # it is far slower than TensorFlow there.
    assert all(r[3] > 2 * r[6] for r in rows64)
    # CoRa is never slower than TF on the 64-core CPU.
    assert all(r[9] <= r[6] * 1.05 for r in rows64)
