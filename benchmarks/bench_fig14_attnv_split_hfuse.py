"""Figure 14 workload, measured on the real compiled kernels.

The paper's Figure 14 evaluates operation splitting on the AttnV operator.
This benchmark runs the actual executor-backed kernels for the NoSplit
(plain), Split (query-row vloop split by the tile size -> guarded tail
tile) and Split+Remap (sort-descending thread remap on the governing loop)
schedules under both codegen backends, and verifies that

* every variant stays on the vector backend's fast path (zero fallbacks --
  the guarded split collapses to a trailing slice, the remap is
  order-only), and
* the vector backend beats the scalar reference by >= 5x on the guarded
  split workload (the acceptance criterion for vectorizing guards).

Writes a table to ``results/fig14_attnv_split_hfuse.txt`` and a
machine-readable artifact to ``results/fig14_attnv_split_hfuse.json``
alongside ``backend_speedup.json``.  Run directly or with ``--smoke`` for
the quick CI configuration.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from harness import format_row, write_json_result, write_result

from repro.core.executor import Executor
from repro.ops.attention import attnv_compiled, attnv_slices, attnv_split_compiled

VARIANTS = ("NoSplit", "Split", "Split+Remap")


def _make_inputs(batch: int, low: int, high: int, heads: int, head_size: int,
                 seed: int = 0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(low, high + 1, size=batch)
    attn = [rng.standard_normal((heads, s, s)).astype(np.float32)
            for s in lengths]
    v = [rng.standard_normal((heads, s, head_size)).astype(np.float32)
         for s in lengths]
    return lengths, attn, v


def _run_variant(variant: str, attn, v, tile: int, backend: str,
                 repeats: int):
    executor = Executor(backend=backend)

    def run_once():
        if variant == "NoSplit":
            return attnv_compiled(attn, v, executor=executor)
        return attnv_split_compiled(attn, v, tile=tile, executor=executor,
                                    remap=(variant == "Split+Remap"))

    out, _ = run_once()  # warm-up compile
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        best = min(best, time.perf_counter() - t0)
    stats = executor.codegen_stats()
    return out, best, stats


def compute_results(smoke: bool = False) -> dict:
    if smoke:
        batch, low, high, heads, head_size, tile, repeats = 4, 4, 12, 2, 4, 4, 2
    else:
        batch, low, high, heads, head_size, tile, repeats = 8, 8, 24, 2, 8, 4, 3
    lengths, attn, v = _make_inputs(batch, low, high, heads, head_size)
    reference = attnv_slices(attn, v)  # independent NumPy oracle
    cases = []
    for variant in VARIANTS:
        case = {"variant": variant, "tile": tile, "correct": True}
        for backend in ("scalar", "vector"):
            out, best, stats = _run_variant(variant, attn, v, tile, backend,
                                            repeats)
            case[f"{backend}_s"] = best
            case["correct"] = case["correct"] and all(
                np.allclose(a, b, rtol=1e-4, atol=1e-4)
                for a, b in zip(out, reference))
            if backend == "vector":
                case["fallbacks"] = stats["fallbacks"]
                case["fallback_reasons"] = stats["fallback_reasons"]
        case["speedup"] = case["scalar_s"] / max(case["vector_s"], 1e-12)
        cases.append(case)
    return {
        "workload": "AttnV",
        "batch": batch,
        "lengths": [int(s) for s in lengths],
        "heads": heads,
        "head_size": head_size,
        "smoke": smoke,
        "cases": cases,
    }


def report(results: dict) -> None:
    widths = (14, 12, 12, 10, 11, 9)
    lines = ["Figure 14 workload on real compiled kernels: AttnV "
             "NoSplit / Split (guarded) / Split+Remap",
             f"batch={results['batch']} lengths={results['lengths']} "
             f"heads={results['heads']} head_size={results['head_size']}",
             format_row(["variant", "scalar ms", "vector ms", "speedup",
                         "fallbacks", "correct"], widths)]
    for case in results["cases"]:
        lines.append(format_row(
            [case["variant"], case["scalar_s"] * 1e3, case["vector_s"] * 1e3,
             case["speedup"], case["fallbacks"], str(case["correct"])],
            widths))
    write_result("fig14_attnv_split_hfuse", lines)
    write_json_result("fig14_attnv_split_hfuse", results)


def check(results: dict) -> list:
    failures = []
    for case in results["cases"]:
        if case["fallbacks"] != 0:
            failures.append(f"{case['variant']}: fell back "
                            f"({case['fallback_reasons']})")
        if not case["correct"]:
            failures.append(f"{case['variant']}: wrong result")
    split = next(c for c in results["cases"] if c["variant"] == "Split")
    if split["speedup"] < 5.0:
        failures.append(f"Split speedup {split['speedup']:.1f}x < 5x")
    return failures


def test_fig14_attnv_split_hfuse():
    results = compute_results(smoke=False)
    report(results)
    failures = check(results)
    assert not failures, failures


def main(argv) -> int:
    results = compute_results(smoke="--smoke" in argv)
    report(results)
    failures = check(results)
    if failures:
        print(f"FAILED: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
