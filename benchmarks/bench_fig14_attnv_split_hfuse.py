"""Figure 14: operation splitting and horizontal fusion on the AttnV operator.

Relative execution times of the NoSplit / Split / Split-HFused variants on
the GPU and the 64-core ARM CPU for the MNLI dataset.
"""

from harness import arm64_model, format_row, gpu_model, write_result

from repro.data.datasets import sample_lengths
from repro.ops.attention import split_hfuse_workload

BATCH_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)
VARIANTS = ("NoSplit", "Split", "Split-HFused")


def compute_table():
    results = {}
    for label, model in (("Nvidia GPU", gpu_model()), ("64-core ARM CPU", arm64_model())):
        rows = []
        for bs in BATCH_SIZES:
            lengths = sample_lengths("MNLI", bs)
            latencies = [model.latency_ms(split_hfuse_workload(lengths, "AttnV", v))
                         for v in VARIANTS]
            base = latencies[0]
            rows.append((bs, *[lat / base for lat in latencies]))
        results[label] = rows
    return results


def test_fig14_attnv_split_hfuse(benchmark):
    results = benchmark(compute_table)
    widths = (6, 10, 10, 14)
    lines = ["Figure 14: AttnV relative execution time (MNLI)"]
    for label, rows in results.items():
        lines.append(f"-- {label} --")
        lines.append(format_row(["batch"] + list(VARIANTS), widths))
        for row in rows:
            lines.append(format_row(list(row), widths))
    write_result("fig14_attnv_split_hfuse", lines)
    gpu_rows = results["Nvidia GPU"]
    cpu_rows = results["64-core ARM CPU"]
    # On the GPU, splitting alone hurts at small batch sizes and hfusion
    # recovers the lost parallelism.
    assert gpu_rows[0][2] > 1.0
    assert gpu_rows[0][3] < gpu_rows[0][2]
    # At large batch sizes splitting wins outright.
    assert gpu_rows[-1][2] < 1.0
    # On the CPU hfusion brings no extra benefit over splitting.
    assert abs(cpu_rows[-1][3] - cpu_rows[-1][2]) < 0.05
