"""Planner-level fusion + persistent AOT cache: the dispatch-count story.

PR 7's honest finding was that the ``ProcessPoolEngine`` achieves full
width (``max_inflight = K``) but loses wall-clock to serial because every
step pays ~100-140 us of dispatch overhead -- so the most direct fix is
*fewer, fatter steps*.  This benchmark measures both halves of that fix:

* **Fusion** (``plan_program(fuse=True)``): producer-consumer kernel
  chains collapse into single emitted kernels whose intermediates live in
  loop-local temporaries instead of arena slabs.  The table records
  kernel dispatches, plan steps and arena bytes before vs after, plus the
  p50 per-run latency of each plan -- asserted bit-identical, with zero
  vector fallbacks on the fused chains.
* **AOT cache** (``Session(disk_cache=...)``): compiled kernels persist
  to disk keyed by a stable fingerprint, so a fresh session (standing in
  for a fresh process; the executor and its in-memory caches are brand
  new) rebuilds every kernel with ``lower_count == 0``.  The table
  records cold vs warm compile time and the resulting speedup.

``--smoke`` asserts the issue's claims: fused outputs bit-identical to
unfused, >= 30% dispatch reduction on the masked encoder, zero fused
fallbacks, warm compiles perform zero lowerings, and the warmed cache
yields a cold-start speedup.

Writes ``benchmarks/results/bench_fusion.{txt,json}`` and (full runs
only) the trajectory artifact ``BENCH_fusion.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.core.executor import Executor
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    build_encoder_program,
    build_encoder_stack_program,
)

from harness import format_row, write_json_result, write_result

_WIDTHS = [22, 12, 10, 14, 10, 10, 8]
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _p50_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def _variants(config, weights, lengths, n_layers):
    for masked in (False, True):
        label = "masked" if masked else "unmasked"
        yield (f"{label} layer",
               build_encoder_program(lengths, weights, config, masked=masked))
        yield (f"{label} stack x{n_layers}",
               build_encoder_stack_program(lengths, weights, config,
                                           masked=masked, n_layers=n_layers))


def _measure_fusion(config, weights, lengths, n_layers, repeats):
    rng = np.random.default_rng(11)
    tokens = rng.standard_normal(
        (sum(lengths), config.hidden_size)).astype(np.float32)
    rows = [format_row(["variant", "dispatches", "steps", "arena B",
                        "p50 base", "p50 fused", "bit-id"], _WIDTHS)]
    entries = {}
    for name, program in _variants(config, weights, lengths, n_layers):
        base = Session(backend="vector", executor=Executor(backend="vector"))
        fused = Session(backend="vector", executor=Executor(backend="vector"),
                        fuse=True)
        out_base = base.run(program, {"tokens": tokens})
        out_fused = fused.run(program, {"tokens": tokens})
        bit_identical = all(
            np.array_equal(np.asarray(out_base[k]), np.asarray(out_fused[k]))
            for k in out_base)
        p50_base = _p50_ms(
            lambda: base.run(program, {"tokens": tokens},
                             copy_outputs=False), repeats)
        p50_fused = _p50_ms(
            lambda: fused.run(program, {"tokens": tokens},
                              copy_outputs=False), repeats)
        cp_base = base.compiled_program(program)
        cp_fused = fused.compiled_program(program)
        codegen = fused.executor.codegen_stats()
        entry = {
            "kernel_dispatches_base": cp_base.kernel_dispatches,
            "kernel_dispatches_fused": cp_fused.kernel_dispatches,
            "dispatch_reduction": 1.0 - (cp_fused.kernel_dispatches
                                         / cp_base.kernel_dispatches),
            "steps_base": len(cp_base.plan.order),
            "steps_fused": len(cp_fused.plan.order),
            "arena_bytes_base": cp_base.arena_bytes,
            "arena_bytes_fused": cp_fused.arena_bytes,
            "p50_ms_base": p50_base,
            "p50_ms_fused": p50_fused,
            "bit_identical": bool(bit_identical),
            "fused_fallbacks": codegen["fused_fallbacks"],
            "fused_fallback_reasons": codegen["fused_fallback_reasons"],
            "fusion_summary": cp_fused.fusion_summary(),
        }
        entries[name] = entry
        rows.append(format_row(
            [name,
             f"{cp_base.kernel_dispatches}->{cp_fused.kernel_dispatches}",
             f"{entry['steps_base']}->{entry['steps_fused']}",
             f"{entry['arena_bytes_base']}->{entry['arena_bytes_fused']}",
             p50_base, p50_fused,
             "yes" if bit_identical else "NO"], _WIDTHS))
        base.close()
        fused.close()
    return rows, entries


def _measure_cold_start(config, weights, lengths, n_layers, trials):
    """Cold vs warm compile wall time through the persistent AOT cache.

    Every session below uses a brand-new private executor (empty kernel
    and program caches), so the warm numbers measure exactly what a
    fresh process pays: unpickling generated kernels instead of
    lowering + codegen.  The cross-*process* claim itself is proven by
    ``tests/test_fusion.py`` with a real subprocess.
    """
    program = build_encoder_stack_program(lengths, weights, config,
                                          masked=True, n_layers=n_layers)
    cold_ms, warm_ms, warm_lowers = [], [], []
    for _ in range(trials):
        cache_dir = tempfile.mkdtemp(prefix="repro-aot-bench-")
        try:
            s_cold = Session(backend="vector", disk_cache=cache_dir,
                             fuse=True)
            t0 = time.perf_counter()
            s_cold.compile(program)
            cold_ms.append((time.perf_counter() - t0) * 1e3)
            s_cold.close()

            s_warm = Session(backend="vector", disk_cache=cache_dir,
                             fuse=True)
            t0 = time.perf_counter()
            s_warm.compile(program)
            warm_ms.append((time.perf_counter() - t0) * 1e3)
            warm_lowers.append(s_warm.executor.lower_count)
            s_warm.close()
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    cold = float(np.median(cold_ms))
    warm = float(np.median(warm_ms))
    entry = {
        "cold_compile_ms": cold,
        "warm_compile_ms": warm,
        "cold_start_speedup": cold / warm if warm > 0 else float("inf"),
        "warm_lower_count": max(warm_lowers),
        "trials": trials,
    }
    rows = [
        "",
        format_row(["cold-start", "cold ms", "warm ms", "speedup",
                    "lowers", "", ""], _WIDTHS),
        format_row(["aot disk cache", f"{cold:.2f}", f"{warm:.2f}",
                    f"{entry['cold_start_speedup']:.2f}x",
                    str(entry["warm_lower_count"]), "", ""], _WIDTHS),
    ]
    return rows, entry


def run_benchmark(smoke: bool = False) -> dict:
    if smoke:
        config = TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                                   ff_size=32, num_layers=2, loop_pad=4,
                                   bulk_pad=8, attention_tile=8)
        lengths, n_layers, repeats, trials = (5, 3, 7, 2), 2, 5, 2
    else:
        config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                                   ff_size=128, num_layers=2, loop_pad=4,
                                   bulk_pad=16, attention_tile=8)
        lengths, n_layers, repeats, trials = (24, 9, 17, 30, 12, 21), 2, 10, 3
    weights = EncoderWeights.random(config, seed=2)

    fusion_rows, fusion = _measure_fusion(config, weights, lengths, n_layers,
                                          repeats)
    cold_rows, aot = _measure_cold_start(config, weights, lengths, n_layers,
                                         trials)
    payload = {
        "config": {"hidden_size": config.hidden_size, "n_layers": n_layers,
                   "lengths": list(lengths), "repeats": repeats,
                   "smoke": bool(smoke)},
        "fusion": fusion,
        "aot": aot,
    }

    write_result("bench_fusion", fusion_rows + cold_rows)
    write_json_result("bench_fusion", payload)
    if not smoke:
        # the committed trajectory artifact tracks the full sweep only;
        # CI smoke runs must not clobber it with reduced-problem numbers
        with open(os.path.join(_REPO_ROOT, "BENCH_fusion.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the fusion and "
                             "AOT-cache claims")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        for name, entry in payload["fusion"].items():
            assert entry["bit_identical"], (
                f"{name}: fused outputs diverge from the unfused plan")
            assert entry["fused_fallbacks"] == 0, (
                f"{name}: fused emission fell back: "
                f"{entry['fused_fallback_reasons']}")
            if "masked" in name and "unmasked" not in name:
                assert entry["dispatch_reduction"] >= 0.30, (
                    f"{name}: dispatch reduction "
                    f"{entry['dispatch_reduction']:.0%} < 30%")
        aot = payload["aot"]
        assert aot["warm_lower_count"] == 0, (
            f"warm compile lowered {aot['warm_lower_count']} kernels; "
            "expected every kernel from the disk cache")
        assert aot["cold_start_speedup"] > 1.0, (
            f"warmed AOT cache gave no cold-start speedup "
            f"({aot['cold_start_speedup']:.2f}x)")
        print("smoke checks passed: fused plans bit-identical with zero "
              "fallbacks, masked-encoder dispatches reduced >= 30%, warm "
              "AOT compiles lower zero kernels and beat cold compiles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
