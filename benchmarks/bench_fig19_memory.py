"""Figure 19 / Section D.5: forward-activation memory with and without ragged tensors."""

from harness import format_row, geomean, write_result

from repro.analysis.memory import memory_report
from repro.data.datasets import dataset_names, sample_lengths


def compute_table():
    return memory_report({ds: sample_lengths(ds, 64) for ds in dataset_names()})


def test_fig19_memory(benchmark):
    report = benchmark(compute_table)
    widths = (9, 14, 14, 10)
    lines = ["Figure 19: encoder-layer forward-activation memory at batch size 64",
             format_row(["dataset", "dense (MB)", "ragged (MB)", "relative"], widths)]
    for ds, entry in report.items():
        lines.append(format_row(
            [ds, entry["dense_bytes"] / 2**20, entry["ragged_bytes"] / 2**20,
             entry["relative"]], widths))
    overall = geomean([entry["savings"] for entry in report.values()])
    lines.append("")
    lines.append(f"overall dense/ragged memory ratio: {overall:.2f}x (paper: 1.78x)")
    write_result("fig19_memory", lines)
    assert overall > 1.3
    # Wiki512 / Wiki128 see only small benefits (Section D.5).
    assert report["Wiki128"]["savings"] < report["MNLI"]["savings"]
    assert report["Wiki512"]["savings"] < report["MNLI"]["savings"]
