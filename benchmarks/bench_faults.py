"""Chaos benchmark: the fault-injection matrix over the serving stack.

A mixed ragged request stream is first drained fault-free to establish
the reference outputs, then re-drained once per fault class with a
deterministic :class:`repro.serving.FaultInjector` armed at one named
injection point:

* ``compile``  -- program compilation fails for a signature; the batch
  must degrade to the retained op-by-op path and recover everyone;
* ``run``      -- one poison request makes every batch containing it
  raise; bisection must isolate exactly that request (``FAILED``) while
  its batchmates re-run and complete;
* ``run/corrupt`` -- the same, but via a shape-corrupted batch output
  caught by output validation;
* ``pipelined_worker`` -- a pipelined-engine worker dies mid-dispatch;
  the batch must retry once on a serial engine and recover everyone;
* ``demux``    -- the overlap-demux worker corrupts/raises; the demux
  must retry synchronously and recover everyone.

For every class the drain must *complete*, only the poisoned request may
fail, and every other request's output must be **bit-identical** to the
fault-free reference -- fault isolation may cost extra batch runs (the
``isolation_runs`` column) but never numerics.  A final chaos sweep arms
probability faults at every point simultaneously and reports the
recovery rate and isolation overhead.

Writes ``benchmarks/results/bench_faults.{txt,json}``.  With ``--smoke``
a reduced stream runs and the matrix assertions above are enforced --
this is the CI gate for the fault-tolerance layer.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.errors import CompileError, ExecutionError
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import BatchScheduler, FailedResult, FaultInjector

from harness import format_row, write_json_result, write_result


def _request_stream(num_requests: int, config: TransformerConfig,
                    seed: int = 0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(4, 33, size=num_requests)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _make_scheduler(weights, config, injector=None, *, engine="serial",
                    overlap_demux=False, max_batch=4, max_retries=0):
    session = Session(backend="vector", engine=engine,
                      fault_injector=injector)
    return BatchScheduler(weights, config, session=session, masked=True,
                          n_layers=2, max_batch_size=max_batch,
                          bucket_tolerance=4, overlap_demux=overlap_demux,
                          max_retries=max_retries)


def _drain(scheduler, stream):
    ids = scheduler.submit_many(stream)
    t0 = time.perf_counter()
    results = scheduler.drain()
    elapsed = time.perf_counter() - t0
    return ids, results, elapsed


def _compare(ref_ids, ref_results, ids, results, expected_failures):
    """Check the matrix invariants of one faulted drain."""
    failed = sorted(rid for rid in ids
                    if isinstance(results[rid], FailedResult))
    identical = 0
    mismatched = 0
    for a, b in zip(ref_ids, ids):
        if b in failed:
            continue
        if isinstance(results[b], np.ndarray) and \
                np.array_equal(ref_results[a], results[b]):
            identical += 1
        else:
            mismatched += 1
    expected = sorted(ids[i] for i in expected_failures)
    return {
        "completed": len(ids) - len(failed),
        "bit_identical": identical,
        "failed": failed,
        "expected_failed": expected,
        "only_expected_failed": failed == expected,
        "others_bit_identical": mismatched == 0,
        "recovery_rate": (len(ids) - len(failed)) / len(ids),
    }


def run_benchmark(smoke: bool = False) -> dict:
    config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                               ff_size=128, num_layers=2, loop_pad=4,
                               bulk_pad=16, attention_tile=8)
    num_requests = 16 if smoke else 48
    weights = EncoderWeights.random(config, seed=1)
    stream = _request_stream(num_requests, config, seed=0)
    poison_slot = 5  # the request the poison fault classes target

    # Fault-free reference drain.
    reference = _make_scheduler(weights, config)
    ref_ids, ref_results, ref_s = _drain(reference, stream)
    assert all(isinstance(ref_results[r], np.ndarray) for r in ref_ids)
    ref_batches = reference.stats()["num_batches"]

    def injected(name):
        injector = FaultInjector(seed=7)
        if name == "compile":
            injector.add("compile", error=CompileError, max_fires=1)
            return injector, _make_scheduler(weights, config, injector), []
        if name == "run":
            injector.add("run", request_id=poison_slot,
                         error=ExecutionError, max_fires=None)
            return injector, _make_scheduler(weights, config, injector), \
                [poison_slot]
        if name == "run/corrupt":
            injector.add("run", request_id=poison_slot, action="corrupt",
                         max_fires=None)
            return injector, _make_scheduler(weights, config, injector), \
                [poison_slot]
        if name == "pipelined_worker":
            injector.add("pipelined_worker", error=ExecutionError,
                         max_fires=1)
            return injector, _make_scheduler(weights, config, injector,
                                             engine="pipelined"), []
        if name == "demux":
            injector.add("demux", action="corrupt", max_fires=1)
            return injector, _make_scheduler(weights, config, injector,
                                             overlap_demux=True), []
        raise ValueError(name)

    payload = {
        "config": {"num_requests": num_requests,
                   "reference_batches": ref_batches,
                   "reference_drain_s": ref_s},
        "matrix": {},
        "chaos": {},
    }

    widths = [18, 10, 8, 10, 10, 10, 10, 12]
    rows = [format_row(["fault class", "completed", "failed", "recovery",
                        "iso runs", "degraded", "fallbacks", "bitident"],
                       widths)]

    for name in ("compile", "run", "run/corrupt", "pipelined_worker",
                 "demux"):
        injector, scheduler, expected_failures = injected(name)
        ids, results, elapsed = _drain(scheduler, stream)
        stats = scheduler.stats()
        entry = _compare(ref_ids, ref_results, ids, results,
                         expected_failures)
        entry.update({
            "drain_s": elapsed,
            "isolation_runs": stats["isolation_runs"],
            "extra_batches": stats["num_batches"] + stats["isolation_runs"]
            - ref_batches,
            "degraded_batches": stats["degraded_batches"],
            "engine_fallbacks": stats["engine_fallbacks"],
            "demux_recoveries": stats["demux_recoveries"],
            "injector_fires": injector.stats()["fires"],
            "drain_completed": True,
        })
        payload["matrix"][name] = entry
        rows.append(format_row(
            [name, entry["completed"], len(entry["failed"]),
             f"{entry['recovery_rate']:.0%}", entry["isolation_runs"],
             entry["degraded_batches"],
             entry["engine_fallbacks"] + entry["demux_recoveries"],
             "yes" if entry["others_bit_identical"] else "NO"],
            widths))
        scheduler.close()
        scheduler.session.close()

    # Chaos sweep: probability faults armed at every point at once; every
    # request gets a retry budget.  The drain must still complete with
    # every request terminal.
    chaos = FaultInjector(seed=13)
    chaos.add("compile", error=CompileError, probability=0.2, max_fires=None)
    chaos.add("run", error=ExecutionError, probability=0.1, max_fires=None)
    chaos.add("demux", action="corrupt", probability=0.2, max_fires=None)
    scheduler = _make_scheduler(weights, config, chaos, overlap_demux=True,
                                max_retries=2)
    ids, results, elapsed = _drain(scheduler, stream)
    stats = scheduler.stats()
    failed = [rid for rid in ids if isinstance(results[rid], FailedResult)]
    payload["chaos"] = {
        "drain_completed": True,
        "all_terminal": sorted(results) == sorted(ids),
        "completed": len(ids) - len(failed),
        "failed": len(failed),
        "recovery_rate": (len(ids) - len(failed)) / len(ids),
        "isolation_runs": stats["isolation_runs"],
        "degraded_batches": stats["degraded_batches"],
        "retries": stats["retries"],
        "demux_recoveries": stats["demux_recoveries"],
        "injector_fires": chaos.stats()["fires"],
        "drain_s": elapsed,
    }
    scheduler.close()
    scheduler.session.close()
    rows.append("")
    rows.append(format_row(
        ["chaos (all)", payload["chaos"]["completed"],
         payload["chaos"]["failed"],
         f"{payload['chaos']['recovery_rate']:.0%}",
         payload["chaos"]["isolation_runs"],
         payload["chaos"]["degraded_batches"],
         payload["chaos"]["retries"] + payload["chaos"]["demux_recoveries"],
         "-"],
        widths))

    write_result("bench_faults", rows)
    write_json_result("bench_faults", payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced stream + assert the fault matrix")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        for name, entry in payload["matrix"].items():
            assert entry["drain_completed"], f"{name}: drain did not complete"
            assert entry["only_expected_failed"], (
                f"{name}: failed set {entry['failed']} != expected "
                f"{entry['expected_failed']}")
            assert entry["others_bit_identical"], (
                f"{name}: a non-poisoned request's output changed under "
                "fault injection")
        assert payload["matrix"]["compile"]["degraded_batches"] >= 1
        assert payload["matrix"]["run"]["isolation_runs"] >= 1
        assert payload["matrix"]["pipelined_worker"]["engine_fallbacks"] >= 1
        assert payload["matrix"]["demux"]["demux_recoveries"] >= 1
        chaos = payload["chaos"]
        assert chaos["all_terminal"], (
            "chaos drain lost a request (not exactly-once)")
        print("smoke checks passed: drain completes under every fault "
              "class, only the poisoned request fails, all other outputs "
              "bit-identical, every recovery counter engaged, chaos drain "
              f"exactly-once (recovery {chaos['recovery_rate']:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
