"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation: it builds the same workloads (datasets x batch sizes x
execution strategies), evaluates them on the simulated devices, prints the
resulting rows and writes them to ``benchmarks/results/<name>.txt`` so they
survive pytest's output capturing.  The pytest-benchmark fixture times the
workload-construction + evaluation path itself.

Absolute latencies come from the analytical device model (see
``repro.substrates``) and are not expected to match the paper; the *shape*
of each result (who wins, by roughly what factor, where crossovers fall) is
what the harness reproduces, and EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence

import numpy as np

from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_8core, arm_cpu_64core, intel_cpu, v100_gpu

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Datasets in the paper's canonical order (Table 3).
PAPER_BATCH_SIZES = (32, 64, 128)

#: Codegen backends compared by the backend-speedup benchmark.
BACKENDS = ("scalar", "vector")


def gpu_model() -> CostModel:
    return CostModel(v100_gpu())


def intel_model() -> CostModel:
    return CostModel(intel_cpu())


def arm64_model() -> CostModel:
    return CostModel(arm_cpu_64core())


def arm8_model() -> CostModel:
    return CostModel(arm_cpu_8core())


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    return float(np.exp(np.mean(np.log(values)))) if values else float("nan")


def write_result(name: str, lines: Iterable[str]) -> str:
    """Print the reproduced rows and persist them under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print(text)
    return path


def write_json_result(name: str, payload: dict) -> str:
    """Persist a machine-readable trajectory artifact under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            parts.append(f"{cell:>{width}.2f}")
        else:
            parts.append(f"{str(cell):>{width}}")
    return "  ".join(parts)
