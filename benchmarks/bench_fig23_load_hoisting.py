"""Figure 23: overheads of ragged computations / storage and load hoisting.

Uses a synthetic dataset where every sequence has length 512 (so every
implementation performs identical useful work) and measures the MHA
operators under four configurations: fully dense, ragged loops only
(+vloops), ragged loops and storage (+vdims), and +vdims with auxiliary
loads hoisted out of the inner loops (+LoadHoist).
"""

import numpy as np

from harness import format_row, gpu_model, write_result

from repro.models.config import PAPER_BASE_CONFIG
from repro.ops.attention import attnv_launch, qkt_launch
from repro.ops.projection import projection_launch
from repro.ops.softmax import softmax_launch
from repro.substrates.costmodel import Workload

LENGTHS = np.full(64, 512)

#: Extra indirect-access work per configuration and operator.  QKT fuses two
#: vloops, so its unhoisted accesses are much more expensive (Section 7.4).
OVERHEADS = {
    "Dense": {"Proj1": 0.0, "QKT": 0.0, "Softmax": 0.0, "AttnV": 0.0, "Proj2": 0.0},
    "+vloops": {"Proj1": 0.01, "QKT": 0.05, "Softmax": 0.01, "AttnV": 0.02, "Proj2": 0.01},
    "+vdims": {"Proj1": 0.03, "QKT": 0.45, "Softmax": 0.02, "AttnV": 0.05, "Proj2": 0.03},
    "+LoadHoist": {"Proj1": 0.02, "QKT": 0.08, "Softmax": 0.02, "AttnV": 0.03, "Proj2": 0.02},
}

OPERATORS = ("Proj1", "QKT", "Softmax", "AttnV", "Proj2")


def _operator_launch(name):
    cfg = PAPER_BASE_CONFIG
    if name == "Proj1":
        return projection_launch(LENGTHS, cfg.hidden_size, 3 * cfg.hidden_size,
                                 name=name, bulk_pad=1)
    if name == "Proj2":
        return projection_launch(LENGTHS, cfg.hidden_size, cfg.hidden_size,
                                 name=name, bulk_pad=1)
    if name == "QKT":
        return qkt_launch(LENGTHS, cfg)
    if name == "AttnV":
        return attnv_launch(LENGTHS, cfg)
    return softmax_launch(LENGTHS, cfg.num_heads)


def compute_table():
    model = gpu_model()
    results = {}
    for config, overheads in OVERHEADS.items():
        per_op = {}
        for op in OPERATORS:
            kernel = _operator_launch(op)
            kernel.indirect_access_overhead = overheads[op]
            per_op[op] = model.latency_ms(Workload(name=op, kernels=[kernel]))
        results[config] = per_op
    return results


def test_fig23_load_hoisting(benchmark):
    results = benchmark(compute_table)
    widths = (12,) + (9,) * len(OPERATORS)
    lines = ["Figure 23: MHA operator latencies (ms), all sequence lengths = 512",
             format_row(["config"] + list(OPERATORS), widths)]
    for config, per_op in results.items():
        lines.append(format_row([config] + [per_op[o] for o in OPERATORS], widths))
    write_result("fig23_load_hoisting", lines)
    # Ragged storage slows QKT down significantly; load hoisting recovers it.
    assert results["+vdims"]["QKT"] > 1.2 * results["Dense"]["QKT"]
    assert results["+LoadHoist"]["QKT"] < results["+vdims"]["QKT"]
    # The other operators see only minor slowdowns.
    for op in ("Proj1", "Softmax", "AttnV", "Proj2"):
        assert results["+vdims"][op] < 1.15 * results["Dense"][op]
