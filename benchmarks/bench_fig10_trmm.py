"""Figure 10: triangular matrix multiplication (trmm) on the GPU.

Compares cuBLAS's dense sgemm and hand-optimized trmm against the three
CoRa variants that progressively apply operation splitting and thread
remapping.  Speedups are relative to cuBLAS sgemm (the paper's y-axis).
"""

from harness import format_row, gpu_model, write_result

from repro.ops import trmm

SIZES = (512, 1024, 2048, 4096, 8192)


def compute_table():
    model = gpu_model()
    rows = []
    for n in SIZES:
        sgemm = model.latency_ms(trmm.cublas_sgemm_workload(n))
        cublas = model.latency_ms(trmm.cublas_trmm_workload(n))
        uu = model.latency_ms(trmm.cora_trmm_workload(n, split=False, balanced=False))
        su = model.latency_ms(trmm.cora_trmm_workload(n, split=True, balanced=False))
        sb = model.latency_ms(trmm.cora_trmm_workload(n, split=True, balanced=True))
        rows.append((n, 1.0, sgemm / uu, sgemm / su, sgemm / sb, sgemm / cublas))
    return rows


def test_fig10_trmm(benchmark):
    rows = benchmark(compute_table)
    widths = (8, 14, 22, 20, 18, 14)
    lines = ["Figure 10: trmm speedup over cuBLAS sgemm",
             format_row(["size", "CuBLAS sgemm", "CoRa-UnSplit-Unbal",
                         "CoRa-Split-Unbal", "CoRa-Split-Bal", "CuBLAS trmm"],
                        widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    write_result("fig10_trmm", lines)
    # Shape: trmm-style kernels only beat sgemm for larger matrices, the
    # CoRa variants improve progressively, and CoRa-Split-Balanced stays
    # close to cuBLAS's hand-optimized trmm.
    assert rows[0][5] < 1.0 and rows[-1][5] > 1.0
    for row in rows:
        assert row[2] <= row[3] + 1e-9 <= row[4] + 1e-9
        assert row[4] / row[5] > 0.70
