"""Table 5: MHA latencies on the 64-core ARM CPU (TF, TF-UB, CoRa)."""

from harness import PAPER_BATCH_SIZES, arm64_model, format_row, geomean, write_result

from repro.baselines.microbatch import microbatched_latency
from repro.data.datasets import dataset_names, sample_lengths
from repro.models.transformer import mha_workload


def compute_table():
    model = arm64_model()
    rows = []
    for ds in dataset_names():
        for bs in PAPER_BATCH_SIZES:
            lengths = sample_lengths(ds, bs)
            tf = model.latency_ms(mha_workload(lengths, "tf"))
            tfub = microbatched_latency(
                lengths, lambda chunk: model.latency_ms(mha_workload(chunk, "tf")))
            cora = model.latency_ms(mha_workload(lengths, "cora"))
            rows.append((ds, bs, tf, tfub.best_latency_ms, tfub.best_micro_batch, cora))
    return rows


def test_table05_mha_arm(benchmark):
    rows = benchmark(compute_table)
    widths = (9, 6, 9, 9, 6, 9)
    lines = ["Table 5: MHA latencies (ms, simulated 64-core ARM CPU)",
             format_row(["dataset", "batch", "TF", "TF-UB", "uBS", "CoRa"], widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    vs_tf = geomean([tf / cora for _, _, tf, _, _, cora in rows])
    vs_tfub = geomean([tfub / cora for _, _, _, tfub, _, cora in rows])
    lines.append("")
    lines.append(f"geomean speedup over TF   : {vs_tf:.2f}x (paper: 1.57x)")
    lines.append(f"geomean speedup over TF-UB: {vs_tfub:.2f}x (paper: 1.37x)")
    write_result("table05_mha_arm", lines)
    assert vs_tf > 1.25
    assert vs_tfub > 1.0
