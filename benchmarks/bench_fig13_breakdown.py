"""Figure 13 / Table 10 / Figure 24: per-operator breakdown of the encoder layer.

Breaks the FT, FT-Eff and CoRa encoder implementations down into the
paper's sub-graphs (Proj1, QKT, Softmax, AttnV, Proj2, FF1, FF2) for the
RACE dataset at batch size 128 (Figure 13 / Table 10) and the CoLA dataset
at batch size 32 (Figure 24).
"""

from harness import format_row, gpu_model, write_result

from repro.data.datasets import sample_lengths
from repro.models.transformer import (
    encoder_layer_workload,
    encoder_operator_breakdown,
)

GROUPS = ("Proj1", "QKT", "Softmax", "AttnV", "Proj2", "FF1", "FF2")
CASES = (("RACE", 128), ("CoLA", 32))
STRATEGIES = ("ft", "ft-eff", "cora")


def compute_table():
    model = gpu_model()
    results = {}
    for ds, bs in CASES:
        lengths = sample_lengths(ds, bs)
        per_case = {}
        for strategy in STRATEGIES:
            breakdown = model.evaluate(encoder_layer_workload(lengths, strategy))
            grouped = encoder_operator_breakdown(
                {k: v * 1e3 for k, v in breakdown.per_kernel_s.items()})
            grouped["Total"] = breakdown.total_ms
            per_case[strategy] = grouped
        results[(ds, bs)] = per_case
    return results


def test_fig13_breakdown(benchmark):
    results = benchmark(compute_table)
    widths = (8,) + (9,) * (len(GROUPS) + 1)
    lines = ["Figure 13 / Table 10 / Figure 24: encoder-layer breakdown (ms)"]
    for (ds, bs), per_case in results.items():
        lines.append(f"-- {ds}, batch size {bs} --")
        lines.append(format_row(["impl"] + list(GROUPS) + ["Total"], widths))
        for strategy, grouped in per_case.items():
            lines.append(format_row(
                [strategy.upper()] + [grouped[g] for g in GROUPS] + [grouped["Total"]],
                widths))
    write_result("fig13_breakdown", lines)
    race = results[("RACE", 128)]
    # CoRa beats FT-Eff on all three SDPA operators (the partially padded part).
    for op in ("QKT", "Softmax", "AttnV"):
        assert race["cora"][op] < race["ft-eff"][op]
    # FT (fully padded) is the slowest overall.
    assert race["ft"]["Total"] > race["cora"]["Total"]
