"""Figure 12: benefit of fusing the padding-change operators (MHA, RACE).

CoRa fuses every AddPad / ChangePad / RemovePad operator into the
neighbouring computation; this bench compares the MHA module with and
without that fusion on the GPU.
"""

from harness import PAPER_BATCH_SIZES, format_row, gpu_model, write_result

from repro.data.datasets import sample_lengths
from repro.models.transformer import mha_workload


def compute_table():
    model = gpu_model()
    rows = []
    for bs in PAPER_BATCH_SIZES:
        lengths = sample_lengths("RACE", bs)
        fused = model.latency_ms(mha_workload(lengths, "cora", on_gpu=True,
                                              fuse_pad_change=True))
        unfused = model.latency_ms(mha_workload(lengths, "cora", on_gpu=True,
                                                fuse_pad_change=False))
        rows.append((bs, unfused, fused, unfused / fused))
    return rows


def test_fig12_pad_change_fusion(benchmark):
    rows = benchmark(compute_table)
    widths = (6, 12, 10, 10)
    lines = ["Figure 12: MHA latency (ms) with and without pad-change fusion (RACE)",
             format_row(["batch", "Unfused", "Fused", "speedup"], widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    write_result("fig12_pad_fusion", lines)
    assert all(unfused > fused for _, unfused, fused, _ in rows)
