"""Figure 22: computation overhead of CoRa's partial padding."""

from harness import format_row, write_result

from repro.analysis.flops import partial_padding_overhead
from repro.data.datasets import dataset_names, sample_lengths

BATCH_SIZES = (32, 128)


def compute_table():
    rows = []
    for bs in BATCH_SIZES:
        for ds in dataset_names():
            report = partial_padding_overhead(sample_lengths(ds, bs))
            rows.append((ds, bs, report["dense"], report["actual"], report["ideal"]))
    return rows


def test_fig22_partial_padding(benchmark):
    rows = benchmark(compute_table)
    widths = (9, 6, 9, 9, 9)
    lines = ["Figure 22: relative encoder computation (ideal = 1.0)",
             format_row(["dataset", "batch", "Dense", "Actual", "Ideal"], widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    overhead_32 = [actual - 1.0 for _, bs, _, actual, _ in rows if bs == 32]
    overhead_128 = [actual - 1.0 for _, bs, _, actual, _ in rows if bs == 128]
    lines.append("")
    lines.append(f"mean partial-padding overhead, batch 32 : {100 * sum(overhead_32) / len(overhead_32):.1f}%  (paper: 3.5%)")
    lines.append(f"mean partial-padding overhead, batch 128: {100 * sum(overhead_128) / len(overhead_128):.1f}%  (paper: 2.3%)")
    write_result("fig22_partial_padding", lines)
    assert max(overhead_32) < 0.15
    assert sum(overhead_128) / len(overhead_128) <= sum(overhead_32) / len(overhead_32) + 1e-9
