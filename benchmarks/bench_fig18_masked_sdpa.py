"""Figure 18 workload, measured on the real compiled kernels.

The paper's Figure 18 evaluates masked (decoder-style, causal) scaled
dot-product attention.  This benchmark runs the actual compiled masked
SDPA chain -- QK^T, additive triangular mask, the four-kernel ragged
softmax, AttnV (7 kernels) -- under both codegen backends and verifies

* the compiled chain matches the NumPy oracle
  ``sdpa_slices(masked=True)`` to float32 tolerance,
* the vector backend reports **zero fallbacks** over the whole chain
  (the fallback-rate smoke check wired into CI), and
* the vector-over-scalar speedup.

Writes a table to ``results/fig18_masked_sdpa.txt`` and a machine-readable
artifact to ``results/fig18_masked_sdpa.json`` alongside
``backend_speedup.json``.  Run directly or with ``--smoke`` for the quick
CI configuration.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from harness import format_row, write_json_result, write_result

from repro.core.executor import Executor
from repro.ops.attention import random_qkv, sdpa_compiled, sdpa_slices
from repro.models.config import TransformerConfig


def _config(heads: int, head_size: int) -> TransformerConfig:
    hidden = heads * head_size
    return TransformerConfig(hidden_size=hidden, num_heads=heads,
                             head_size=head_size, ff_size=2 * hidden,
                             num_layers=1)


def _time_chain(q, k, v, head_size: int, backend: str, repeats: int):
    executor = Executor(backend=backend)
    out = sdpa_compiled(q, k, v, head_size=head_size, executor=executor,
                        masked=True)  # warm-up compile
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sdpa_compiled(q, k, v, head_size=head_size, executor=executor,
                      masked=True)
        best = min(best, time.perf_counter() - t0)
    return out, best, executor.codegen_stats()


def compute_results(smoke: bool = False) -> dict:
    if smoke:
        batches = [(4, 4, 10)]
        heads, head_size, repeats = 2, 4, 2
    else:
        batches = [(4, 8, 16), (8, 8, 24)]
        heads, head_size, repeats = 2, 8, 3
    config = _config(heads, head_size)
    cases = []
    for batch, low, high in batches:
        rng = np.random.default_rng(batch)
        lengths = [int(s) for s in rng.integers(low, high + 1, size=batch)]
        qkv = random_qkv(lengths, config=config, seed=batch)
        q, k, v = qkv["q"], qkv["k"], qkv["v"]
        refs = sdpa_slices(q, k, v, head_size=head_size, masked=True)
        case = {"batch": batch, "lengths": lengths}
        for backend in ("scalar", "vector"):
            out, best, stats = _time_chain(q, k, v, head_size, backend,
                                           repeats)
            case[f"{backend}_s"] = best
            case[f"{backend}_correct"] = all(
                np.allclose(a, b, rtol=1e-4, atol=1e-4)
                for a, b in zip(out, refs))
            if backend == "vector":
                case["kernels_vectorized"] = stats["vectorized"]
                case["fallbacks"] = stats["fallbacks"]
                case["fallback_reasons"] = stats["fallback_reasons"]
        case["speedup"] = case["scalar_s"] / max(case["vector_s"], 1e-12)
        cases.append(case)
    return {
        "workload": "masked-sdpa-compiled",
        "heads": heads,
        "head_size": head_size,
        "smoke": smoke,
        "cases": cases,
    }


def report(results: dict) -> None:
    widths = (8, 12, 12, 10, 11, 11, 9)
    lines = ["Figure 18 workload on real compiled kernels: masked SDPA "
             "(QK^T + mask + softmax + AttnV, 7 kernels)",
             format_row(["batch", "scalar ms", "vector ms", "speedup",
                         "vectorized", "fallbacks", "correct"], widths)]
    for case in results["cases"]:
        lines.append(format_row(
            [case["batch"], case["scalar_s"] * 1e3, case["vector_s"] * 1e3,
             case["speedup"], case["kernels_vectorized"], case["fallbacks"],
             str(case["vector_correct"] and case["scalar_correct"])],
            widths))
    write_result("fig18_masked_sdpa", lines)
    write_json_result("fig18_masked_sdpa", results)


def check(results: dict) -> list:
    failures = []
    for case in results["cases"]:
        if case["fallbacks"] != 0:
            failures.append(f"batch {case['batch']}: "
                            f"{case['fallbacks']} fallbacks "
                            f"({case['fallback_reasons']})")
        if not (case["vector_correct"] and case["scalar_correct"]):
            failures.append(f"batch {case['batch']}: "
                            "mismatch vs sdpa_slices(masked=True)")
    return failures


def test_fig18_masked_sdpa():
    results = compute_results(smoke=False)
    report(results)
    failures = check(results)
    assert not failures, failures
    assert all(case["speedup"] > 1.0 for case in results["cases"])


def main(argv) -> int:
    results = compute_results(smoke="--smoke" in argv)
    report(results)
    failures = check(results)
    if failures:
        print(f"FAILED: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
