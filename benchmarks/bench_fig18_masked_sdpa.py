"""Figure 18: masked scaled dot-product attention (decoder-style masking).

Compares CoRa-NoPad (triangular computation), CoRa-Pad (inner vloop fully
padded) and a fully padded PyTorch implementation on the GPU for the RACE
and MNLI datasets.
"""

from harness import PAPER_BATCH_SIZES, format_row, geomean, gpu_model, write_result

from repro.data.datasets import sample_lengths
from repro.ops.attention import masked_sdpa_workload

STRATEGIES = (("pytorch", "PyTorch"), ("cora-pad", "CoRa-Pad"),
              ("cora-nopad", "CoRa-NoPad"))


def compute_table():
    model = gpu_model()
    rows = []
    for ds in ("RACE", "MNLI"):
        for bs in PAPER_BATCH_SIZES:
            lengths = sample_lengths(ds, bs)
            latencies = {key: model.latency_ms(masked_sdpa_workload(lengths, key))
                         for key, _ in STRATEGIES}
            rows.append((ds, bs, latencies))
    return rows


def test_fig18_masked_sdpa(benchmark):
    rows = benchmark(compute_table)
    widths = (8, 6, 10, 10, 12)
    lines = ["Figure 18: masked SDPA execution time (ms, simulated V100)",
             format_row(["dataset", "batch"] + [label for _, label in STRATEGIES],
                        widths)]
    for ds, bs, lat in rows:
        lines.append(format_row([ds, bs] + [lat[k] for k, _ in STRATEGIES], widths))
    vs_pad = geomean([lat["cora-pad"] / lat["cora-nopad"] for _, _, lat in rows])
    vs_pt = geomean([lat["pytorch"] / lat["cora-nopad"] for _, _, lat in rows])
    lines.append("")
    lines.append(f"CoRa-NoPad speedup over CoRa-Pad: {vs_pad:.2f}x (paper: 1.34x)")
    lines.append(f"CoRa-NoPad speedup over PyTorch : {vs_pt:.2f}x (paper: 2.46x)")
    write_result("fig18_masked_sdpa", lines)
    for _, _, lat in rows:
        assert lat["cora-nopad"] < lat["cora-pad"] < lat["pytorch"]
    # The benefit is less pronounced for MNLI (shorter sequences).
    race = [lat["cora-pad"] / lat["cora-nopad"] for ds, _, lat in rows if ds == "RACE"]
    mnli = [lat["cora-pad"] / lat["cora-nopad"] for ds, _, lat in rows if ds == "MNLI"]
    assert geomean(race) > geomean(mnli)
