"""Execution engines and in-place arena scheduling on the encoder stack.

The execution-strategy layer makes two independent knobs swappable above
the compiled program:

* **engine** -- ``SerialEngine`` replays the flat dispatch loop;
  ``PipelinedEngine`` dispatches each node over a worker pool the moment
  its dependence-edge predecessors retire, overlapping host marshalling
  nodes with compiled kernel nodes;
* **in-place planning** -- element-wise nodes (residual adds, the ReLU)
  alias their dying input's arena slab instead of double-buffering,
  shrinking the arena below the liveness-packed baseline.

This benchmark measures both on warm N-layer encoder-stack programs
under three shapes -- unmasked, masked, and an FF-heavy short-sequence
shape (wide feed-forward, sequence lengths 4..12) where the token-linear
buffers dominate the arena: per-batch wall time under each engine
(medians over repeats, both warm, bit-identical outputs) and arena bytes
with/without in-place sharing.  On attention-dominated shapes the greedy
packer often parks the element-wise buffers in recycled score slabs for
free, so in-place breaks even there; on the FF-heavy shape it cuts the
arena by ~25-30%.

Writes ``benchmarks/results/bench_engine.{txt,json}``.  With ``--smoke``
it runs a reduced problem and asserts the headline claims: pipelined +
in-place output bit-identical to serial + double-buffered, zero
vector-backend fallbacks, and arena(in-place) <= arena(double-buffered)
with a strict reduction on at least one encoder program.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.engine import PipelinedEngine
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    encoder_stack_program,
    run_encoder_stack_numeric,
)

from harness import format_row, write_json_result, write_result

_WIDTHS = [10, 11, 13, 8, 12, 12, 10, 9]


def _make_inputs(batch: int, config: TransformerConfig, seed: int = 0,
                 low: int = 8, high: int = 48):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(low, high, size=batch)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def _median_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def run_benchmark(smoke: bool = False) -> dict:
    base = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                             ff_size=128, num_layers=2, loop_pad=4,
                             bulk_pad=16, attention_tile=8)
    # Short sequences + wide feed-forward: the token-linear buffers
    # dominate the arena, so in-place aliasing of the residual adds and
    # the ReLU reliably cuts it (the serving-realistic shape).
    ff_heavy = TransformerConfig(hidden_size=128, num_heads=4, head_size=32,
                                 ff_size=512, num_layers=2, loop_pad=4,
                                 bulk_pad=16, attention_tile=8)
    batch = 8 if smoke else 16
    repeats = 10 if smoke else 30
    n_layers = 2

    serial = Session(backend="vector", engine="serial", inplace=False)
    pipelined = Session(backend="vector",
                        engine=PipelinedEngine(max_workers=4), inplace=True)

    rows = [format_row(["variant", "serial ms", "pipelined ms", "ratio",
                        "arena KiB", "inplace KiB", "ip values",
                        "inflight"], _WIDTHS)]
    payload = {"config": {"batch": batch, "repeats": repeats,
                          "n_layers": n_layers,
                          "hidden_size": base.hidden_size},
               "variants": {}}

    variants = [
        ("unmasked", base, False, dict(seed=0)),
        ("masked", base, True, dict(seed=1)),
        ("ff-heavy", ff_heavy, True, dict(seed=2, low=4, high=13)),
    ]
    for variant, config, masked, input_kwargs in variants:
        # Per-variant engine counters (runs / max_inflight), not a
        # running total across variants; kernel/program caches stay warm.
        pipelined.engine.reset_stats()
        hidden = _make_inputs(batch, config, **input_kwargs)
        weights = EncoderWeights.random(config, seed=2)

        # Warm both sessions (compile kernels, plan arenas) and check the
        # engines agree bit for bit before timing anything.
        ref = run_encoder_stack_numeric(hidden, weights, config,
                                        masked=masked, n_layers=n_layers,
                                        session=serial)
        got = run_encoder_stack_numeric(hidden, weights, config,
                                        masked=masked, n_layers=n_layers,
                                        session=pipelined)
        bit_identical = all(np.array_equal(a, b)
                            for a, b in zip(ref.hidden, got.hidden))

        serial_ms = _median_ms(
            lambda: run_encoder_stack_numeric(hidden, weights, config,
                                              masked=masked,
                                              n_layers=n_layers,
                                              session=serial),
            repeats)
        pipelined_ms = _median_ms(
            lambda: run_encoder_stack_numeric(hidden, weights, config,
                                              masked=masked,
                                              n_layers=n_layers,
                                              session=pipelined),
            repeats)

        lengths = [h.shape[0] for h in hidden]
        plan_db = serial.compile(encoder_stack_program(
            lengths, weights, config, masked=masked, n_layers=n_layers,
            session=serial)).plan
        plan_ip = pipelined.compile(encoder_stack_program(
            lengths, weights, config, masked=masked, n_layers=n_layers,
            session=pipelined)).plan

        payload["variants"][variant] = {
            "serial_ms_per_batch": serial_ms,
            "pipelined_ms_per_batch": pipelined_ms,
            "pipelined_speedup": serial_ms / max(pipelined_ms, 1e-9),
            "bit_identical": bool(bit_identical),
            "arena_bytes_double_buffered": plan_db.arena_bytes,
            "arena_bytes_inplace": plan_ip.arena_bytes,
            "inplace_values": plan_ip.inplace_values,
            "inplace_shared_bytes": plan_ip.inplace_shared_bytes,
            "peak_live_bytes": plan_db.peak_live_bytes,
            "engine": pipelined.stats()["engine"],
            # Both sessions wrap the process-wide shared executor, so the
            # codegen counters are one commingled set -- recorded once,
            # not misattributed per session.
            "codegen": serial.stats()["codegen"],
        }
        rows.append(format_row(
            [variant, serial_ms, pipelined_ms,
             serial_ms / max(pipelined_ms, 1e-9),
             plan_db.arena_bytes / 1024.0, plan_ip.arena_bytes / 1024.0,
             plan_ip.inplace_values,
             pipelined.stats()["engine"]["max_inflight"]], _WIDTHS))

    write_result("bench_engine", rows)
    write_json_result("bench_engine", payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the headline claims")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        strict_reduction = False
        for variant, result in payload["variants"].items():
            assert result["bit_identical"], (
                f"{variant}: pipelined + in-place output != serial + "
                "double-buffered output")
            assert result["codegen"]["fallbacks"] == 0, (
                f"{variant}: vector-backend fallbacks "
                f"{result['codegen']['fallback_reasons']}")
            assert (result["arena_bytes_inplace"]
                    <= result["arena_bytes_double_buffered"]), (
                f"{variant}: in-place arena larger than double-buffered")
            if (result["arena_bytes_inplace"]
                    < result["arena_bytes_double_buffered"]):
                strict_reduction = True
        assert strict_reduction, (
            "in-place planning reduced the arena on no encoder program")
        ff = payload["variants"]["ff-heavy"]
        assert (ff["arena_bytes_inplace"]
                < ff["arena_bytes_double_buffered"]), (
            "ff-heavy shape: in-place must strictly shrink the arena")
        print("smoke checks passed: bit-identical engines, zero fallbacks, "
              "in-place arena <= double-buffered (strict on >= 1 program)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
