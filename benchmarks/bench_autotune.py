"""Autotuning: tuned schedules vs the hand-picked defaults, per signature.

The tentpole claim of the autotuning issue, measured end to end:

1. **Op-level tuning** -- for each raggedness signature, tune the
   attention gemms (``qkt`` with the production softmax scale, ``attnv``)
   through :class:`~repro.core.autotune.AutoTuner`.  The tuner's contract
   is checked per pair: ``tuned_s <= default_s`` (the default is kept
   unless a candidate is *strictly* faster) and the accepted schedule's
   output is bit-identical to the default's.
2. **Chain-level tuning** -- tune the encoder chain's planner-fusion knob
   per signature by warm full-program dispatch, same acceptance rule.
   The full run asserts at least one signature improves by >= 10%.
3. **Cross-process load** -- everything tuned above is persisted to a
   :class:`~repro.core.scheduledb.ScheduleDB` plus a shared AOT disk
   cache; a *fresh interpreter* opens them with ``Session(tune="load")``
   and must reach the tuned configuration with **zero search iterations
   and zero lowerings** (every kernel from the disk cache, every
   schedule point from the DB), producing byte-identical output.

Absolute times depend on the host; the *relations* (tuned never slower,
bit-identity, zero-cost load) are host-independent and asserted in
``--smoke``.  Writes ``benchmarks/results/bench_autotune.{txt,json}``
and, on a full run, the trajectory artifact ``BENCH_autotune.json`` at
the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import textwrap
import time

import numpy as np

from repro.core.autotune import AutoTuner
from repro.core.scheduledb import ScheduleDB
from repro.core.session import Session
from repro.core.tunespace import raggedness_bucket
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights, encoder_stack_program

from harness import format_row, write_json_result, write_result

_WIDTHS = [14, 18, 12, 12, 9, 8, 8]
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Child process: open the schedule DB + AOT cache produced by the
#: offline phase and run the tuned encoder with zero search and zero
#: lowerings.  argv: sdb_root aot_root out_npy hidden heads head_size
#: ff n_layers loop_pad bulk_pad tile lengths...
_CHILD = textwrap.dedent("""
    import sys, time
    import numpy as np
    from repro.core.session import Session
    from repro.models.config import TransformerConfig
    from repro.models.transformer import (EncoderWeights,
                                          encoder_stack_program)

    (hidden, heads, head_size, ff, n_layers,
     loop_pad, bulk_pad, tile) = (int(a) for a in sys.argv[4:12])
    lengths = tuple(int(a) for a in sys.argv[12:])
    cfg = TransformerConfig(hidden_size=hidden, num_heads=heads,
                            head_size=head_size, ff_size=ff,
                            num_layers=n_layers, loop_pad=loop_pad,
                            bulk_pad=bulk_pad, attention_tile=tile)
    w = EncoderWeights.random(cfg, seed=0)
    session = Session(backend="vector", tune="load", schedule_db=sys.argv[1],
                      disk_cache=sys.argv[2])
    program = encoder_stack_program(lengths, w, cfg, masked=True,
                                    session=session)
    rng = np.random.default_rng(2)
    tokens = rng.standard_normal((sum(lengths), cfg.hidden_size)) \\
        .astype(np.float32)
    out = session.run(program, {"tokens": tokens}, signature=lengths)
    t0 = time.perf_counter()
    for _ in range(5):
        out = session.run(program, {"tokens": tokens}, signature=lengths)
    warm_ms = (time.perf_counter() - t0) / 5 * 1e3
    print("LOWERS", session.executor.lower_count)
    print("APPLIED", session._policy.stats()["applied"])
    print("FUSE_OVERRIDES", session.tuned_fuse_overrides)
    print("WARM_MS", warm_ms)
    np.save(sys.argv[3], np.asarray(out["out_tokens"]))
""")


def _signatures(smoke: bool):
    if smoke:
        return [(5, 3, 7, 2)]
    return [(24, 9, 17, 30, 12, 21), (8, 8, 8, 8), (5, 3, 7, 2, 6, 4)]


def _config(smoke: bool) -> TransformerConfig:
    if smoke:
        return TransformerConfig(hidden_size=16, num_heads=2, head_size=8,
                                 ff_size=32, num_layers=2, loop_pad=4,
                                 bulk_pad=8, attention_tile=8)
    return TransformerConfig(hidden_size=32, num_heads=4, head_size=8,
                             ff_size=64, num_layers=2, loop_pad=4,
                             bulk_pad=16, attention_tile=8)


def run_benchmark(smoke: bool = False, work_dir: str | None = None) -> dict:
    import tempfile

    config = _config(smoke)
    signatures = _signatures(smoke)
    repeats = 3 if smoke else 7
    refine_iters = 2 if smoke else 6
    if work_dir is None:
        work_dir = tempfile.mkdtemp(prefix="bench_autotune_")
    sdb_root = os.path.join(work_dir, "sdb")
    aot_root = os.path.join(work_dir, "aot")
    weights = EncoderWeights.random(config, seed=0)
    scale = 1.0 / float(np.sqrt(config.head_size))

    session = Session(backend="vector", tune="offline",
                      schedule_db=sdb_root, disk_cache=aot_root)
    tuner = AutoTuner(session=session, repeats=repeats,
                      refine_iters=refine_iters)

    rows = [format_row(["signature", "op", "default ms", "tuned ms",
                        "gain %", "source", "bit-id"], _WIDTHS)]
    payload = {
        "host": {"cpus": os.cpu_count() or 1},
        "config": {"hidden_size": config.hidden_size,
                   "num_heads": config.num_heads,
                   "head_size": config.head_size,
                   "repeats": repeats, "smoke": bool(smoke)},
        "ops": [], "chains": [], "load": {},
    }

    def record(result, sig):
        entry = result.to_entry()
        entry["signature"] = list(sig)
        gain = result.improvement * 100.0
        rows.append(format_row(
            ["x".join(str(s) for s in sig), result.op,
             result.default_s * 1e3, result.tuned_s * 1e3, gain,
             result.source, "yes" if result.bit_identical else "NO"],
            _WIDTHS))
        return entry

    # Phase 1: op-level tuning (production scale for qkt, so the tuned
    # kernels the measurement lowers into the AOT cache are the ones the
    # real encoder programs will load).
    for sig in signatures:
        for op, ctx in (("qkt", {"scale": scale}), ("attnv", {})):
            result = tuner.tune_op(op, sig, heads=config.num_heads,
                                   head_size=config.head_size, **ctx)
            payload["ops"].append(record(result, sig))

    # Phase 2: chain-level tuning (planner fusion on/off per signature).
    for sig in signatures:
        result = tuner.tune_chain(sig, weights, config, masked=True)
        payload["chains"].append(record(result, sig))

    payload["tuner"] = tuner.stats()
    payload["schedule_db"] = session.schedule_db.stats()

    # Parent-side bit-identity reference for the cross-process phase.
    ref_sig = signatures[0]
    program = encoder_stack_program(ref_sig, weights, config, masked=True,
                                    session=session)
    rng = np.random.default_rng(2)
    tokens = rng.standard_normal(
        (sum(ref_sig), config.hidden_size)).astype(np.float32)
    out_ref = np.asarray(session.run(
        program, {"tokens": tokens}, signature=ref_sig)["out_tokens"]).copy()
    session.close()

    # Phase 3: a fresh interpreter loads the DB + AOT cache and must be
    # tuned at step zero -- no search, no lowerings, same bytes.
    src = os.path.join(_REPO_ROOT, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out_npy = os.path.join(work_dir, "child.npy")
    argv = [sys.executable, "-c", _CHILD, sdb_root, aot_root, out_npy,
            str(config.hidden_size), str(config.num_heads),
            str(config.head_size), str(config.ff_size), "2",
            str(config.loop_pad), str(config.bulk_pad),
            str(config.attention_tile)] + [str(s) for s in ref_sig]
    proc = subprocess.run(argv, env=env, capture_output=True, text=True,
                          timeout=300)
    if proc.returncode != 0:
        raise RuntimeError(f"tune='load' child failed:\n{proc.stderr}")
    values = {}
    for line in proc.stdout.splitlines():
        parts = line.split()
        if len(parts) == 2:
            values[parts[0]] = float(parts[1])
    payload["load"] = {
        "signature": list(ref_sig),
        "lower_count": int(values["LOWERS"]),
        "applied_points": int(values["APPLIED"]),
        "fuse_overrides": int(values["FUSE_OVERRIDES"]),
        "warm_dispatch_ms": values["WARM_MS"],
        "bit_identical": bool(np.array_equal(out_ref, np.load(out_npy))),
    }
    rows.append("")
    rows.append(f"tune='load' child: lowerings={int(values['LOWERS'])} "
                f"applied={int(values['APPLIED'])} "
                f"fuse_overrides={int(values['FUSE_OVERRIDES'])} "
                f"warm={values['WARM_MS']:.2f} ms "
                f"bit_identical={payload['load']['bit_identical']}")

    write_result("bench_autotune", rows)
    write_json_result("bench_autotune", payload)
    if not smoke:
        # the committed trajectory artifact tracks the full sweep only;
        # CI smoke runs must not clobber it with reduced-problem numbers
        with open(os.path.join(_REPO_ROOT, "BENCH_autotune.json"),
                  "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the autotuning "
                             "claims")
    args = parser.parse_args(argv)
    t0 = time.perf_counter()
    payload = run_benchmark(smoke=args.smoke)
    elapsed = time.perf_counter() - t0

    # Host-independent contract, asserted on every run.
    for entry in payload["ops"] + payload["chains"]:
        assert entry["tuned_s"] <= entry["default_s"], (
            f"{entry['op']} {entry['signature']}: tuned "
            f"{entry['tuned_s']:.6f}s slower than default "
            f"{entry['default_s']:.6f}s")
        assert entry["bit_identical"], (
            f"{entry['op']} {entry['signature']}: accepted schedule not "
            "bit-identical")
    load = payload["load"]
    assert load["lower_count"] == 0, (
        f"tune='load' child lowered {load['lower_count']} kernels; "
        "expected all from the AOT disk cache")
    assert load["applied_points"] >= 2, (
        f"tune='load' child applied {load['applied_points']} DB points; "
        "expected the tuned qkt + attnv schedules in effect")
    assert load["bit_identical"], (
        "tune='load' child output differs from the tuning parent's")
    if not args.smoke:
        best = max(e["improvement"] for e in payload["chains"])
        assert best >= 0.10, (
            f"best chain improvement {best:.1%} < 10%; expected the "
            "fusion knob to win at least one signature")
    print(f"autotune checks passed in {elapsed:.1f}s: tuned <= default "
          "and bit-identical on every (op, signature) pair; fresh "
          "tune='load' process reached tuned performance with 0 search "
          "iterations and 0 lowerings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
