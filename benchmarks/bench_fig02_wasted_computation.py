"""Figure 2: wasted computation due to padding in a transformer encoder layer.

Plots (here: tabulates) the ratio of fully padded to unpadded FLOPs for one
encoder layer, per dataset, as the batch size grows from 1 to 128.
"""

from harness import format_row, write_result

from repro.analysis.flops import wasted_computation_ratio
from repro.data.datasets import dataset_names, sample_lengths

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def compute_table():
    rows = {}
    for ds in dataset_names():
        rows[ds] = [wasted_computation_ratio(sample_lengths(ds, bs))
                    for bs in BATCH_SIZES]
    return rows


def test_fig02_wasted_computation(benchmark):
    rows = benchmark(compute_table)
    widths = [9] + [7] * len(BATCH_SIZES)
    lines = ["Figure 2: relative computation of a fully padded encoder layer",
             format_row(["dataset"] + [str(b) for b in BATCH_SIZES], widths)]
    for ds, values in rows.items():
        lines.append(format_row([ds] + values, widths))
    write_result("fig02_wasted_computation", lines)
    # Shape checks: waste grows with batch size and is largest for the
    # short-sequence datasets.
    assert rows["RACE"][-1] >= rows["RACE"][0]
    assert rows["MNLI"][-1] > rows["Wiki128"][-1]
