"""Section 7.4 / Tables 7-8: prelude overheads.

Measures the host-side time and memory needed to build the auxiliary data
structures (storage offsets, loop-fusion maps) for a 6-layer encoder, for
CoRa's dgraph-aware lowering versus the CSF-style scheme of prior sparse
tensor compilers, plus the modelled host-to-device copy time.
"""

import numpy as np

from harness import format_row, write_result

from repro.core.dims import Dim
from repro.core.extents import ConstExtent, VarExtent
from repro.core.prelude import PreludeBuilder, build_sparse_scheme_aux
from repro.core.storage import RaggedLayout
from repro.data.datasets import sample_lengths
from repro.models.config import PAPER_BASE_CONFIG

CASES = (("CoLA", 32), ("CoLA", 128), ("RACE", 32), ("RACE", 128))


def _attention_layout(lengths):
    batch, s1, heads, s2 = Dim("b"), Dim("s1"), Dim("h"), Dim("s2")
    return RaggedLayout(
        [batch, s1, heads, s2],
        [ConstExtent(len(lengths)), VarExtent(batch, lengths),
         ConstExtent(PAPER_BASE_CONFIG.num_heads), VarExtent(batch, lengths)],
    )


def compute_table():
    rows = []
    for ds, bs in CASES:
        lengths = sample_lengths(ds, bs)
        layout = _attention_layout(lengths)
        sparse = build_sparse_scheme_aux(layout)
        builder = PreludeBuilder()
        result = builder.build({"X": layout},
                               fused_loops={"tokens": (lengths, 1)},
                               copy_to_device=True)
        rows.append({
            "dataset": ds,
            "batch": bs,
            "sparse_time_ms": sparse.build_time_s * 1e3,
            "sparse_mem_kb": sparse.memory_bytes / 1024,
            "cora_storage_time_ms": result.storage_time_s * 1e3,
            "cora_storage_mem_kb": result.storage_memory_bytes / 1024,
            "cora_fusion_time_ms": result.fusion_time_s * 1e3,
            "cora_fusion_mem_kb": result.fusion_memory_bytes / 1024,
            "copy_time_ms": result.copy_time_s * 1e3,
        })
    return rows


def test_table07_08_prelude(benchmark):
    rows = benchmark(compute_table)
    widths = (8, 6, 12, 12, 13, 13, 12, 12, 10)
    lines = ["Tables 7-8: prelude overheads (per mini-batch; times in ms, memory in kB)",
             format_row(["dataset", "batch", "sparse t", "sparse kB",
                         "CoRa stor t", "CoRa stor kB", "CoRa fuse t",
                         "CoRa fuse kB", "copy t"], widths)]
    for r in rows:
        lines.append(format_row(
            [r["dataset"], r["batch"], r["sparse_time_ms"], r["sparse_mem_kb"],
             r["cora_storage_time_ms"], r["cora_storage_mem_kb"],
             r["cora_fusion_time_ms"], r["cora_fusion_mem_kb"],
             r["copy_time_ms"]], widths))
    write_result("table07_08_prelude", lines)
    for r in rows:
        # CoRa's storage scheme needs far less auxiliary memory than the
        # CSF-style scheme, and the loop-fusion maps dominate CoRa's part.
        assert r["cora_storage_mem_kb"] * 20 < r["sparse_mem_kb"]
        assert r["cora_fusion_mem_kb"] > r["cora_storage_mem_kb"]
