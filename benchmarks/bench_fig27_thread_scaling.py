"""Figure 27: MHA latency versus thread count on the ARM CPU (MNLI, batch 64)."""

from harness import format_row, write_result

from repro.baselines.dense_padded import framework_mha_latency_ms
from repro.data.datasets import sample_lengths
from repro.models.transformer import mha_workload
from repro.substrates.costmodel import CostModel
from repro.substrates.device import arm_cpu_64core

THREADS = (1, 2, 4, 8, 16, 32, 64)


def compute_table():
    lengths = sample_lengths("MNLI", 64)
    rows = []
    for threads in THREADS:
        device = arm_cpu_64core(threads=threads)
        model = CostModel(device)
        pt = framework_mha_latency_ms(lengths, device, framework="pt")
        tf = model.latency_ms(mha_workload(lengths, "tf"))
        cora = model.latency_ms(mha_workload(lengths, "cora"))
        rows.append((threads, pt, tf, cora))
    return rows


def test_fig27_thread_scaling(benchmark):
    rows = benchmark(compute_table)
    widths = (8, 10, 10, 10)
    lines = ["Figure 27: MHA latency (ms) vs thread count (MNLI, batch 64)",
             format_row(["threads", "PyTorch", "TF", "CoRa"], widths)]
    for row in rows:
        lines.append(format_row(list(row), widths))
    write_result("fig27_thread_scaling", lines)
    # TF and CoRa keep improving with more threads; PyTorch stops scaling
    # (and degrades) beyond a handful of threads.
    assert rows[-1][2] < rows[0][2]
    assert rows[-1][3] < rows[0][3]
    assert rows[-1][1] > rows[3][1]
    # CoRa is the fastest at full thread count.
    assert rows[-1][3] <= min(rows[-1][1], rows[-1][2])
