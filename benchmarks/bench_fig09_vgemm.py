"""Figure 9: variable-sized batched gemm (vgemm) on the GPU and Intel CPU.

Compares CoRa's vgemm against a hand-optimized vgemm and the vendor
library's fully padded batched gemm, reporting speedups relative to the
hand-optimized ragged implementation (the paper's y-axis).
"""

from harness import format_row, gpu_model, intel_model, write_result

from repro.ops import vgemm

BATCH_SIZES = (2, 4, 8, 16, 32, 64, 128, 256, 512)


def compute_table():
    results = {}
    for label, model in (("GPU", gpu_model()), ("Intel CPU", intel_model())):
        rows = []
        for bs in BATCH_SIZES:
            problem = vgemm.paper_problem(bs, seed=bs)
            hand = model.latency_ms(vgemm.hand_optimized_workload(problem))
            cora = model.latency_ms(vgemm.cora_workload(problem))
            padded = model.latency_ms(vgemm.fully_padded_workload(problem))
            rows.append((bs, hand / cora, 1.0, hand / padded))
        results[label] = rows
    return results


def test_fig09_vgemm(benchmark):
    results = benchmark(compute_table)
    widths = (10, 14, 18, 22)
    lines = ["Figure 9: vgemm speedup relative to the hand-optimized ragged impl"]
    for label, rows in results.items():
        lines.append(f"-- {label} --")
        lines.append(format_row(["batch", "Ragged-CoRa", "Ragged-HandOpt",
                                 "FullyPadded-HandOpt"], widths))
        for bs, cora, hand, padded in rows:
            lines.append(format_row([bs, cora, hand, padded], widths))
    write_result("fig09_vgemm", lines)
    for label, rows in results.items():
        # CoRa performs close to (or better than) the hand-optimized vgemm...
        assert all(cora > 0.73 for _, cora, _, _ in rows)
        # ...and the fully padded gemm is much slower at large batch sizes.
        assert rows[-1][3] < 0.6
