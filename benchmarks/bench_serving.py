"""Continuous-batching serving benchmark: signature reuse and stacked arenas.

Two serving-scale claims of the program runtime are measured here:

* **Throughput vs bucket tolerance.**  A stream of individual ragged
  requests is drained through the :class:`repro.serving.BatchScheduler`
  at several bucket tolerances.  Coarser buckets pad more tokens (the
  paper's partial-padding tradeoff) but collapse more batches onto the
  same raggedness signature, so the session's compiled-program cache --
  kernels, arena plan, prelude -- is reused instead of rebuilt; the
  steady-state (warm) drain shows the benefit.

* **Arena savings vs stack depth.**  An N-layer encoder declared as one
  program lets the planner's liveness span every layer: layer k+1 reuses
  layer k's dead slabs, so peak intermediate bytes stay near one layer's
  working set instead of N independent per-layer arenas.

Writes ``benchmarks/results/bench_serving.{txt,json}``.  With ``--smoke``
a reduced problem runs and the headline claims are asserted: scheduler
outputs bit-identical to direct ``Session.run`` over the same batch rows,
at least one signature-cache hit, stacked arena strictly below the sum of
per-layer plans, zero vector-backend fallbacks.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis.memory import intermediate_memory_report
from repro.core.executor import Executor
from repro.core.session import Session
from repro.models.config import TransformerConfig
from repro.models.transformer import EncoderWeights
from repro.serving import BatchScheduler

from harness import format_row, write_json_result, write_result

TOLERANCES = (1, 2, 4, 8)
STACK_DEPTHS = (1, 2, 4)


def _request_stream(num_requests: int, config: TransformerConfig,
                    seed: int = 0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(4, 33, size=num_requests)
    return [rng.standard_normal((int(n), config.hidden_size))
            .astype(np.float32) for n in lengths]


def run_benchmark(smoke: bool = False) -> dict:
    config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                               ff_size=128, num_layers=2, loop_pad=4,
                               bulk_pad=16, attention_tile=8)
    num_requests = 24 if smoke else 96
    n_layers = 2
    max_batch = 4 if smoke else 8
    stream = _request_stream(num_requests, config, seed=0)
    valid_tokens = sum(h.shape[0] for h in stream)

    payload = {
        "config": {"num_requests": num_requests, "n_layers": n_layers,
                   "max_batch_size": max_batch,
                   "hidden_size": config.hidden_size},
        "tolerances": {},
        "stack_arena": {},
    }

    widths = [10, 9, 10, 9, 10, 10, 10, 10, 12]
    rows = [format_row(["tolerance", "batches", "cold hits", "compiles",
                        "pad ovh", "cold ms", "warm hits", "warm ms",
                        "warm tok/s"],
                       widths)]

    for tolerance in TOLERANCES:
        # A private executor per tolerance: the cold drain and the
        # per-tolerance codegen stats must not inherit kernels or
        # counters from earlier tolerances via the shared executor.
        session = Session(backend="vector",
                          executor=Executor(backend="vector"))
        cold = BatchScheduler(EncoderWeights.random(config, seed=1), config,
                              session=session, masked=True,
                              n_layers=n_layers, max_batch_size=max_batch,
                              bucket_tolerance=tolerance, log_batches=True)
        weights = cold.weights

        t0 = time.perf_counter()
        cold.submit_many(stream)
        results = cold.drain()
        cold_s = time.perf_counter() - t0
        # Snapshot before the replay check / warm pass touch the session.
        cold_stats = cold.stats()
        bit_identical = cold.replay_bit_identical(results)

        # Steady state: same traffic once more through the SAME session --
        # every signature is now warm in the compiled-program cache.
        warm = BatchScheduler(weights, config, session=session, masked=True,
                              n_layers=n_layers, max_batch_size=max_batch,
                              bucket_tolerance=tolerance, log_batches=False)
        t0 = time.perf_counter()
        warm.submit_many(stream)
        warm.drain()
        warm_s = time.perf_counter() - t0

        warm_stats = warm.stats()
        entry = {
            "bit_identical": bool(bit_identical),
            "num_batches": cold.num_batches,
            "cold_signature_hits": cold_stats["signature_hits"],
            "cold_signature_misses": cold_stats["signature_misses"],
            "program_compiles": cold_stats["program_compiles"],
            "distinct_signatures": cold_stats["distinct_signatures"],
            "warm_signature_hits": warm_stats["signature_hits"],
            "padding_overhead": cold_stats["padding_overhead"],
            "cold_drain_s": cold_s,
            "warm_drain_s": warm_s,
            "warm_requests_per_s": num_requests / max(warm_s, 1e-9),
            "warm_tokens_per_s": valid_tokens / max(warm_s, 1e-9),
            "codegen": session.stats()["codegen"],
        }
        payload["tolerances"][str(tolerance)] = entry
        rows.append(format_row(
            [tolerance, cold.num_batches, cold_stats["signature_hits"],
             cold_stats["program_compiles"],
             f"{cold_stats['padding_overhead']:.1%}", cold_s * 1e3,
             warm_stats["signature_hits"], warm_s * 1e3,
             f"{entry['warm_tokens_per_s']:.0f}"],
            widths))

    rows.append("")
    stack_widths = [8, 12, 16, 14, 12]
    rows.append(format_row(["layers", "arena KiB", "per-layer sum KiB",
                            "x-layer saves", "slabs"], stack_widths))
    lengths = [h.shape[0] for h in stream[:max_batch]]
    for depth in STACK_DEPTHS:
        report = intermediate_memory_report(lengths, config, masked=True,
                                            n_layers=depth)
        payload["stack_arena"][str(depth)] = report
        rows.append(format_row(
            [depth, report["arena_bytes"] / 1024.0,
             report["per_layer_sum_bytes"] / 1024.0,
             f"{report['cross_layer_savings']:.0%}",
             int(report["num_slabs"])],
            stack_widths))

    write_result("bench_serving", rows)
    write_json_result("bench_serving", payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced problem + assert the headline claims")
    args = parser.parse_args(argv)
    payload = run_benchmark(smoke=args.smoke)
    if args.smoke:
        for tolerance, entry in payload["tolerances"].items():
            assert entry["bit_identical"], (
                f"tolerance {tolerance}: scheduler output != direct "
                "Session.run on the same batch rows")
            assert entry["codegen"]["fallbacks"] == 0, (
                f"tolerance {tolerance}: vector-backend fallbacks "
                f"{entry['codegen']['fallback_reasons']}")
        assert any(e["warm_signature_hits"] >= 1
                   for e in payload["tolerances"].values()), (
            "no bucket tolerance produced a signature-cache hit")
        cold_hits = [payload["tolerances"][str(t)]["cold_signature_hits"]
                     for t in TOLERANCES]
        assert cold_hits == sorted(cold_hits), (
            f"cold signature hits not monotone in bucket tolerance: "
            f"{cold_hits}")
        for depth in STACK_DEPTHS[1:]:
            report = payload["stack_arena"][str(depth)]
            assert report["arena_bytes"] < report["per_layer_sum_bytes"], (
                f"stacked {depth}-layer arena not below the sum of "
                "per-layer plans")
        print("smoke checks passed: bit-identical demux, monotone "
              "signature reuse, >=1 cache hit, stacked arena < sum of "
              "per-layer plans, zero fallbacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
