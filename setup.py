"""Setup shim for environments without PEP 517 build isolation support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Python reproduction of the CoRa tensor compiler for ragged tensors "
        "(MLSys 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
