"""Example: triangular matrix multiplication as a ragged operator.

A lower-triangular matrix is a ragged tensor: row ``r`` holds ``r + 1``
densely packed values.  This example

1. expresses trmm through the compiler core with a *variable reduction
   bound* (the reduction loop of row ``r`` runs to ``r + 1``), generating a
   Python kernel and checking it against NumPy;
2. runs the larger, tile-based ragged trmm from the operator library and
   compares the work it performs against the fully padded dense gemm;
3. evaluates the Figure 10 variants (operation splitting + thread
   remapping) and the Taco-like sparse-compiler baseline on the simulated
   GPU.

Run with:  python examples/triangular_matmul.py
"""

import numpy as np

from repro.baselines.sparse_compiler import CSRMatrix, csr_spmm, taco_trmm_workload
from repro.core.dims import Dim
from repro.core.executor import Executor
from repro.core.extents import ConstExtent, VarExtent
from repro.core.ir import LoopVar
from repro.core.operator import compute, input_tensor, reduce_axis, sum_reduce
from repro.core.schedule import Schedule
from repro.ops import trmm
from repro.substrates.costmodel import CostModel
from repro.substrates.device import v100_gpu


def compiled_trmm_demo(n: int = 12) -> None:
    """Express trmm in the Ragged API and run the generated kernel."""
    row, col = Dim("row"), Dim("col")
    L = input_tensor("L", [row, Dim("k_in")], [ConstExtent(n), ConstExtent(n)])
    B = input_tensor("B", [Dim("k_in2"), col], [ConstExtent(n), ConstExtent(n)])
    # The reduction bound is a function of the row index: k in [0, r].
    k = reduce_axis(VarExtent(row, lambda r: r + 1), "k")
    op = compute("T", [row, col], [ConstExtent(n), ConstExtent(n)],
                 lambda r, c: sum_reduce(L[r, LoopVar(k.dim)] * B[LoopVar(k.dim), c], k))

    lower = trmm.make_lower_triangular(n, seed=0)
    dense = np.random.default_rng(1).standard_normal((n, n)).astype(np.float32)
    out, report = Executor().build_and_run(Schedule(op), {"L": lower, "B": dense})
    err = np.abs(out.to_dense() - lower @ dense).max()
    print(f"[compiler]  n={n}: max error {err:.2e}, "
          f"ragged FLOPs {report.flops} vs dense {report.dense_flops} "
          f"({report.padding_waste:.2f}x saved)")


def library_trmm_demo(n: int = 1024) -> None:
    """The tile-based ragged trmm of the operator library."""
    lower = trmm.make_lower_triangular(n, seed=0)
    dense = np.random.default_rng(1).standard_normal((n, n)).astype(np.float32)
    out = trmm.trmm_ragged(lower, dense, tile=64)
    err = np.abs(out - lower @ dense).max()
    saved = trmm.trmm_dense_flops(n) / trmm.trmm_ragged_flops(n)
    print(f"[library ]  n={n}: max error {err:.2e}, "
          f"{saved:.2f}x fewer FLOPs than the dense gemm")


def simulated_figure10_demo() -> None:
    """Figure 10 shapes on the simulated V100."""
    model = CostModel(v100_gpu())
    print("\nSimulated V100 latencies (ms):")
    header = f"{'n':>6} {'sgemm':>9} {'cuBLAS trmm':>12} {'CoRa-SB':>9} {'Taco CSR':>9}"
    print(header)
    for n in (512, 2048, 8192):
        sgemm = model.latency_ms(trmm.cublas_sgemm_workload(n))
        cublas = model.latency_ms(trmm.cublas_trmm_workload(n))
        cora = model.latency_ms(trmm.cora_trmm_workload(n))
        taco = model.latency_ms(taco_trmm_workload(n, "csr"))
        print(f"{n:>6} {sgemm:>9.2f} {cublas:>12.2f} {cora:>9.2f} {taco:>9.2f}")


def sparse_baseline_demo(n: int = 64) -> None:
    """The Taco-like CSR kernel is correct, just slow."""
    lower = trmm.make_lower_triangular(n, seed=2)
    dense = np.random.default_rng(3).standard_normal((n, 8)).astype(np.float32)
    csr = CSRMatrix.from_dense(lower)
    err = np.abs(csr_spmm(csr, dense) - lower @ dense).max()
    print(f"\n[Taco CSR]  n={n}: max error {err:.2e}, "
          f"index arrays occupy {csr.index_bytes} bytes for {csr.nnz} non-zeros")


if __name__ == "__main__":
    compiled_trmm_demo()
    library_trmm_demo()
    simulated_figure10_demo()
    sparse_baseline_demo()
