"""Example: a ragged transformer encoder layer, CoRa-style vs fully padded.

Builds a mini-batch with the sequence-length distribution of the MNLI
dataset, runs the encoder layer through the ragged program runtime (the
whole layer declared once as a program graph, compiled ahead of time by a
:class:`repro.Session`, SDPA kernels vectorized, intermediates planned
into reusable arena slabs), stacks N layers into a single whole-model
program whose arena plan spans every layer, serves a stream of individual
ragged requests through the continuous-batching
:class:`repro.BatchScheduler`, verifies the result against a fully padded
dense reference, and then uses the simulated V100 device model to compare
the latency of the four execution strategies of the paper's Table 4.

Run with:  python examples/transformer_encoder.py
"""

import numpy as np

from repro import BatchScheduler, Session
from repro.data.datasets import sample_lengths
from repro.models.config import TransformerConfig
from repro.models.transformer import (
    EncoderWeights,
    encoder_layer_workload,
    encoder_program,
    encoder_stack_program,
    run_encoder_layer_dense_reference,
    run_encoder_layer_numeric,
)
from repro.substrates.costmodel import CostModel
from repro.substrates.device import v100_gpu


def main() -> None:
    # A small configuration so the numeric forward pass is quick.
    config = TransformerConfig(hidden_size=64, num_heads=4, head_size=16,
                               ff_size=128, num_layers=2, loop_pad=8,
                               bulk_pad=16, attention_tile=16)
    lengths = sample_lengths("MNLI", 8, seed=0) // 4 + 4
    print("sequence lengths:", list(lengths))

    rng = np.random.default_rng(0)
    hidden = [rng.standard_normal((int(n), config.hidden_size)).astype(np.float32)
              for n in lengths]
    weights = EncoderWeights.random(config, seed=1)

    # Ragged (CoRa-style) execution through the program runtime: the
    # session compiles the whole encoder once for this raggedness
    # signature; repeated mini-batches replay the flat dispatch loop.
    session = Session(backend="vector")
    ragged = run_encoder_layer_numeric(hidden, weights, config,
                                       session=session)

    program = encoder_program([h.shape[0] for h in hidden], weights, config,
                              session=session)
    plan = session.compile(program).plan
    print(f"program: {len(program.nodes)} nodes "
          f"({len(program.kernel_nodes)} compiled kernels), "
          f"arena {plan.arena_bytes / 1024:.0f} KiB across "
          f"{plan.num_slabs} slabs vs {plan.naive_bytes / 1024:.0f} KiB "
          f"per-op ({plan.reuse_savings:.0%} saved)")

    # Execution engines + in-place scheduling: the same program runs
    # bit-identically through the pipelined engine (dependence-driven
    # worker-pool dispatch), and in-place planning lets the residual adds
    # and the ReLU overwrite their dying inputs' slabs.
    pipelined = Session(backend="vector", engine="pipelined", inplace=True)
    ragged_pipelined = run_encoder_layer_numeric(hidden, weights, config,
                                                 session=pipelined)
    plan_ip = pipelined.compile(program).plan
    identical = all(np.array_equal(a, b) for a, b in
                    zip(ragged.hidden, ragged_pipelined.hidden))
    print(f"pipelined engine bit-identical to serial: {identical}; "
          f"in-place arena {plan_ip.arena_bytes / 1024:.0f} KiB "
          f"({plan_ip.inplace_values} values aliased in place, "
          f"{(plan.arena_bytes - plan_ip.arena_bytes) / 1024:.0f} KiB below "
          "the double-buffered plan)")

    # The whole *model* as one program: every layer of the stack is
    # declared in a single graph, so the planner's liveness spans layer
    # boundaries and layer k+1 reuses layer k's dead arena slabs -- peak
    # intermediate bytes stay near ONE layer's working set.
    stack = encoder_stack_program([h.shape[0] for h in hidden], weights,
                                  config, n_layers=config.num_layers,
                                  session=session)
    stack_plan = session.compile(stack).plan
    print(f"{config.num_layers}-layer stack: arena "
          f"{stack_plan.arena_bytes / 1024:.0f} KiB vs "
          f"{config.num_layers * plan.arena_bytes / 1024:.0f} KiB for "
          f"{config.num_layers} per-layer plans "
          f"({1 - stack_plan.arena_bytes / (config.num_layers * plan.arena_bytes):.0%} "
          "saved across layers)")

    # Serving: individual ragged requests, continuously batched.  The
    # scheduler buckets sequence lengths (tolerance 16, causal-masked) so
    # recurring raggedness signatures hit the compiled-program cache;
    # with overlap_demux the demultiplexing of each batch's outputs runs
    # on a background worker while the next batch executes.
    scheduler = BatchScheduler(weights, config, session=session, masked=True,
                               n_layers=config.num_layers, max_batch_size=4,
                               bucket_tolerance=16, overlap_demux=True)
    request_stream = [
        rng.standard_normal((int(n), config.hidden_size)).astype(np.float32)
        for n in sample_lengths("MNLI", 16, seed=2) // 4 + 4
    ]
    scheduler.submit_many(request_stream)
    responses = scheduler.drain()
    stats = scheduler.stats()
    print(f"served {stats['num_completed']} requests in "
          f"{stats['num_batches']} batches: "
          f"{stats['signature_hits']} signature hits / "
          f"{stats['program_compiles']} compiles, "
          f"{stats['padding_overhead']:.1%} padding overhead, "
          f"first response shape {responses[0].shape}")

    # Fully padded dense reference.
    max_len = int(max(lengths))
    dense_in = np.zeros((len(lengths), max_len, config.hidden_size), np.float32)
    for b, h in enumerate(hidden):
        dense_in[b, :h.shape[0]] = h
    dense = run_encoder_layer_dense_reference(dense_in, lengths, weights, config)

    worst = max(
        float(np.abs(ragged.hidden[b] - dense[b, :int(n)]).max())
        for b, n in enumerate(lengths)
    )
    print(f"max |ragged - dense reference| over valid region: {worst:.2e}")

    # Simulated latency comparison at paper scale.
    print("\nSimulated V100 latency of one encoder layer (paper hyperparameters):")
    model = CostModel(v100_gpu())
    paper_lengths = sample_lengths("MNLI", 128, seed=0)
    for strategy in ("pytorch", "ft", "ft-eff", "cora"):
        workload = encoder_layer_workload(paper_lengths, strategy)
        latency = model.latency_ms(workload)
        print(f"  {strategy:>8s}: {latency:7.2f} ms   "
              f"({len(workload.kernels)} kernels, "
              f"{workload.total_flops() / 1e9:.1f} GFLOP)")


if __name__ == "__main__":
    main()
