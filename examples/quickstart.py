"""Quickstart: express, schedule, compile and run a ragged operator.

This walks through the example of Figure 1 / Listing 1 of the CoRa paper:
an elementwise operator over a batch of variable-length sequences.  It
shows the three stages of the pipeline -- describing the computation,
scheduling it (padding + loop fusion), and executing the generated kernel --
and prints the generated Python kernel so you can see the prelude-built
auxiliary arrays being indexed.  The final sections lift the operator
into the program runtime: declared as a one-node :class:`repro.Program`
and executed through a :class:`repro.Session`, which compiles ahead of
time and replays mini-batches without per-op dispatch, then chained into
a two-stage pipeline with :meth:`repro.Session.run_stack`.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Program, Session
from repro.core.dims import Dim
from repro.core.executor import Executor
from repro.core.extents import ConstExtent, VarExtent
from repro.core.operator import compute, input_tensor
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Describe the computation (the Ragged API of Listing 1).
    # ------------------------------------------------------------------ #
    lengths = np.array([5, 2, 3])
    batch, seq = Dim("batch"), Dim("seq")

    A = input_tensor("A", [batch, seq],
                     [ConstExtent(len(lengths)), VarExtent(batch, lengths)])
    op = compute("B", [batch, seq],
                 [ConstExtent(len(lengths)), VarExtent(batch, lengths)],
                 lambda o, i: 2.0 * A[o, i])
    print("operator:", op)

    # ------------------------------------------------------------------ #
    # 2. Schedule it: pad the vloop to 2, the output storage to 4, and
    #    fuse the batch and sequence loops (exactly Listing 1).
    # ------------------------------------------------------------------ #
    schedule = Schedule(op)
    schedule.pad_loop(seq, 2)
    schedule.pad_dimension(seq, 4)
    schedule.pad_input_dimension("A", seq, 2)
    schedule.fuse_loops(batch, seq)

    # ------------------------------------------------------------------ #
    # 3. Compile and run.
    #
    # The executor compiles through a codegen *backend*:
    #   - "vector" (default): the inner loops collapse into NumPy slice /
    #     einsum operations over the flat buffers -- orders of magnitude
    #     faster, with automatic fallback to the scalar backend for
    #     constructs it cannot vectorize (this fused schedule is one);
    #   - "scalar": the readable reference emitter, one Python loop per
    #     axis, used here so the printed kernel shows the loop nest.
    # Compiled kernels are cached: re-running the same schedule performs
    # zero re-lowers (see executor.lower_count / cache_hits).
    # ------------------------------------------------------------------ #
    executor = Executor(backend="scalar")
    compiled = executor.compile(schedule)
    print("\n--- generated kernel (scalar backend) ----------------------")
    print(compiled.source)

    vector_executor = Executor(backend="vector")
    unfused_compiled = vector_executor.compile(Schedule(op))
    print("--- generated kernel (vector backend, unfused schedule) -----")
    print(unfused_compiled.source)

    input_layout = RaggedLayout(
        [batch, seq],
        [ConstExtent(len(lengths)), VarExtent(batch, lengths)],
        storage_padding={seq: 2},
    )
    a = RaggedTensor.random(input_layout, seed=0)
    out, report = executor.run(compiled, {"A": a})

    print("--- results ------------------------------------------------")
    for b in range(len(lengths)):
        valid = int(lengths[b])
        expected = 2 * a.valid_slice(b)[:valid]
        got = out.valid_slice(b)[:valid]
        print(f"sequence {b} (length {valid}): max error "
              f"{np.abs(expected - got).max():.2e}")
    # The fused kernel's own report no longer "sees" the raggedness (the
    # fused loop has a single constant bound), so quantify the padding that
    # a fully dense execution would have needed using the unfused schedule.
    unfused = Schedule(op)
    unfused.pad_input_dimension("A", seq, 2)
    _, unfused_report = executor.build_and_run(unfused, {"A": a})
    print(f"\nragged FLOPs executed : {unfused_report.flops}")
    print(f"fully padded FLOPs    : {unfused_report.dense_flops}")
    print(f"padding waste avoided : {unfused_report.padding_waste:.2f}x")

    # ------------------------------------------------------------------ #
    # 4. The Session API: declare the operator as a (one-node) program
    #    and let the session compile it ahead of time.  Real programs
    #    chain many nodes; the session plans all intermediate buffers
    #    into a reusable arena and replays batches with a flat dispatch
    #    loop (see examples/transformer_encoder.py for the full encoder).
    # ------------------------------------------------------------------ #
    program = Program("quickstart")
    a_val = program.add_input("A", layout=input_layout)
    out_layout = RaggedLayout(
        [batch, seq],
        [ConstExtent(len(lengths)), VarExtent(batch, lengths)])
    scaled = program.add_kernel("scale", unfused, {"A": a_val}, out_layout)
    program.mark_output(scaled)

    session = Session(backend="vector")
    result = session.run(program, {"A": a})[scaled]
    print("\n--- Session API --------------------------------------------")
    print(f"program output matches op-by-op run: "
          f"{result.allclose(out)}")
    print(f"session stats: {session.stats()['codegen']['backend']} backend, "
          f"{session.stats()['program_compiles']} program compile(s)")

    # ------------------------------------------------------------------ #
    # 5. Program stacks: run_stack pipes one program's output into the
    #    next program's input -- here the doubling program followed by a
    #    second (unpadded-input) doubling stage, so the result is 4 * A.
    #    An N-layer transformer declared as ONE stacked program goes
    #    further: a single arena plan spans all layers (see
    #    examples/transformer_encoder.py and repro.serving for the
    #    continuous-batching scheduler built on top).
    # ------------------------------------------------------------------ #
    stage2 = Program("quickstart-stage2")
    a2 = stage2.add_input("A", layout=out_layout)
    scaled2 = stage2.add_kernel("scale", Schedule(op), {"A": a2}, out_layout)
    stage2.mark_output(scaled2)
    stacked = session.run_stack([program, stage2], {"A": a})[scaled2]
    quadrupled = all(
        np.allclose(stacked.valid_slice(b)[:int(lengths[b])],
                    4 * a.valid_slice(b)[:int(lengths[b])])
        for b in range(len(lengths)))
    print(f"run_stack([program, stage2]) doubles twice (4*A): {quadrupled}")

    # ------------------------------------------------------------------ #
    # 6. Execution engines: HOW the compiled steps run is a pluggable
    #    strategy.  The default SerialEngine replays the flat dispatch
    #    loop; the PipelinedEngine dispatches each node over a worker
    #    pool as soon as its dependence-edge predecessors retire --
    #    bit-identical by construction, because the plan records every
    #    data and buffer-reuse edge.
    # ------------------------------------------------------------------ #
    pipelined = Session(backend="vector", engine="pipelined", inplace=True)
    result2 = pipelined.run(program, {"A": a})[scaled]
    print("\n--- execution engines --------------------------------------")
    print(f"pipelined engine matches serial: "
          f"{np.array_equal(result2.data, result.data)}")
    print(f"engine stats: {pipelined.stats()['engine']}")


if __name__ == "__main__":
    main()
