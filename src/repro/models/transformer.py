"""The transformer encoder layer and MHA module, under every execution
strategy compared in the paper.

Strategies (Figure 3, Sections 7.2 and D.8):

* ``"cora"``   -- CoRa's fully compiler-generated implementation: 9 kernels,
  minimal padding everywhere (bulk padding for the fused linear operators,
  small per-sequence padding for the SDPA operators), every padding-change
  operator fused away.
* ``"ft-eff"`` -- FasterTransformer with the EffectiveTransformer
  optimisation: 12 kernels, minimal padding for the linear operators but
  *full* padding inside SDPA, explicit padding-change kernels, cuBLAS gemms.
* ``"ft"``     -- FasterTransformer without that optimisation: full padding
  everywhere.
* ``"pytorch"``-- a framework execution: full padding, one kernel per
  framework operator, per-operator dispatch overhead.
* ``"tf"`` / ``"tf-ub"`` / ``"pt"`` / ``"pt-ub"`` -- the TensorFlow /
  PyTorch CPU configurations of Tables 5 and 9 (``-ub`` = micro-batched
  execution, implemented in :mod:`repro.baselines.microbatch`).

Each builder returns a :class:`~repro.substrates.costmodel.Workload`; the
benchmark harness evaluates it on a simulated device.  A numeric
(small-scale) forward pass is also provided for correctness testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.extents import ceil_to
from repro.core.prelude import PreludeBuilder, bulk_pad_lengths
from repro.core.program import (
    Program,
    merge_programs,
    register_program_builder,
)
from repro.core.session import Session, default_session
from repro.core.storage import RaggedLayout
from repro.core.tunespace import TuneParam, TunePoint, TuneSpace, register_tune_op
from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig
from repro.ops.attention import (
    attn_merge_node,
    attnv_launch,
    qkt_launch,
    qkv_split_node,
    sdpa_nodes,
    sdpa_slices,
)
from repro.ops.elementwise import (
    add_node,
    elementwise_launch,
    padding_change_launch,
    relu_node,
)
from repro.ops.layernorm import (
    layernorm_flat,
    layernorm_launch,
    layernorm_node,
    layernorm_slices,
)
from repro.ops.projection import (
    linear_node,
    linear_packed,
    pack_tokens,
    projection_launch,
    unpack_tokens,
)
from repro.ops.softmax import softmax_launch
from repro.substrates.costmodel import KernelLaunch, Workload


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------


#: The per-mini-batch prelude memo (paper insight I1: raggedness is known
#: up front and shared across all layers, so the aux arrays are built once
#: per mini-batch, not per kernel) now lives on the
#: :class:`~repro.core.session.Session` -- ``session.prelude_memo`` /
#: ``session.prelude_cache`` / ``session.prelude_memo_stats`` -- so tests
#: and long-running processes can clear it deterministically through
#: ``Session.reset()``.  The module-level helpers below are thin
#: deprecated shims over the process-wide default session.


def prelude_memo_stats() -> Dict[str, int]:
    """Hit/miss counters of the per-mini-batch prelude memo (for tests).

    .. deprecated:: use ``default_session().prelude_memo_stats``.
    """
    return dict(default_session().prelude_memo_stats)


def clear_prelude_memo() -> None:
    """Clear the default session's prelude memo and cache.

    .. deprecated:: use ``default_session().reset()`` (which also clears
       the compiled-program and kernel caches) for full determinism.
    """
    session = default_session()
    session.prelude_memo.clear()
    session.prelude_memo_stats["hits"] = 0
    session.prelude_memo_stats["misses"] = 0
    session.prelude_cache.clear()


def _shared_prelude_cache():
    """Deprecated shim: the default session's :class:`PreludeCache`."""
    return default_session().prelude_cache


def _prelude_overheads(lengths: np.ndarray, config: TransformerConfig,
                       on_gpu: bool,
                       session: Optional[Session] = None) -> Dict[str, float]:
    """Prelude time and auxiliary bytes for one mini-batch (shared across layers)."""
    session = session or default_session()
    key = (tuple(int(s) for s in lengths), config.hidden_size,
           config.num_heads, config.loop_pad, bool(on_gpu))
    cached = session.prelude_memo.get(key)
    if cached is not None:
        session.prelude_memo_stats["hits"] += 1
        return dict(cached)
    session.prelude_memo_stats["misses"] += 1
    result = _build_prelude_overheads(lengths, config, on_gpu, session=session)
    session.prelude_memo.put(key, result)
    return dict(result)


def _build_prelude_overheads(lengths: np.ndarray, config: TransformerConfig,
                             on_gpu: bool,
                             session: Optional[Session] = None) -> Dict[str, float]:
    from repro.core.dims import Dim
    from repro.core.extents import ConstExtent, VarExtent

    batch = Dim("batch")
    seq = Dim("seq")
    layouts = {
        "hidden": RaggedLayout(
            [batch, seq, Dim("h")],
            [ConstExtent(lengths.size), VarExtent(batch, lengths),
             ConstExtent(config.hidden_size)],
        ),
        "attn": RaggedLayout(
            [batch, seq, Dim("heads"), Dim("seq2")],
            [ConstExtent(lengths.size),
             VarExtent(batch, ceil_to(lengths, config.loop_pad)),
             ConstExtent(config.num_heads), ConstExtent(1)],
        ),
    }
    cache = (session or default_session()).prelude_cache
    builder = PreludeBuilder(cache=cache)
    result = builder.build(
        layouts,
        fused_loops={"tokens": (lengths, 1)},
        copy_to_device=on_gpu,
    )
    return {
        "time_s": result.storage_time_s + result.fusion_time_s,
        "bytes": float(result.total_memory_bytes),
    }


def _cora_encoder_kernels(lengths: np.ndarray, config: TransformerConfig,
                          impl_class: str = "compiler",
                          fuse_pad_change: bool = True) -> List[KernelLaunch]:
    """The 9 compiler-generated kernels of CoRa's encoder layer (Figure 3)."""
    h, f = config.hidden_size, config.ff_size
    sdpa_lengths = ceil_to(lengths, config.loop_pad)
    kernels = [
        projection_launch(lengths, h, 3 * h, name="Proj1",
                          impl_class=impl_class, bulk_pad=config.bulk_pad,
                          fused_epilogue_flops_per_token=3 * h),
        qkt_launch(sdpa_lengths, config, impl_class=impl_class),
        softmax_launch(sdpa_lengths, config.num_heads, impl_class=impl_class,
                       name="Softmax"),
        attnv_launch(sdpa_lengths, config, impl_class=impl_class),
        projection_launch(lengths, h, h, name="Proj2", impl_class=impl_class,
                          bulk_pad=config.bulk_pad,
                          fused_epilogue_flops_per_token=2 * h),
        layernorm_launch(float(lengths.sum()), h, impl_class=impl_class,
                         name="LayerNorm1"),
        projection_launch(lengths, h, f, name="FF1", impl_class=impl_class,
                          bulk_pad=config.bulk_pad,
                          fused_epilogue_flops_per_token=2 * f),
        projection_launch(lengths, f, h, name="FF2", impl_class=impl_class,
                          bulk_pad=config.bulk_pad,
                          fused_epilogue_flops_per_token=2 * h),
        layernorm_launch(float(lengths.sum()), h, impl_class=impl_class,
                         name="LayerNorm2"),
    ]
    if not fuse_pad_change:
        # Without fusing the padding-change operators, CoRa would need the
        # same explicit AddPad / ChangePad / RemovePad kernels as
        # FasterTransformer (Figure 12 quantifies the benefit of fusing them).
        tokens = float(lengths.sum())
        pad_tokens = float(ceil_to(lengths, config.loop_pad).sum())
        kernels.insert(1, padding_change_launch(
            "AddPad", pad_tokens * config.hidden_size, impl_class=impl_class))
        kernels.insert(3, padding_change_launch(
            "ChangePad", float((config.num_heads * ceil_to(lengths, config.loop_pad) ** 2).sum()),
            impl_class=impl_class))
        kernels.insert(6, padding_change_launch(
            "RemovePad", tokens * config.hidden_size, impl_class=impl_class))
    return kernels


def _ft_encoder_kernels(lengths: np.ndarray, config: TransformerConfig,
                        effective: bool) -> List[KernelLaunch]:
    """FasterTransformer's 12-kernel encoder layer (FT-Eff when ``effective``)."""
    h, f = config.hidden_size, config.ff_size
    s = lengths
    max_len = int(s.max())
    full = np.full_like(s, max_len)
    linear_lengths = s if effective else full
    tokens = float(linear_lengths.sum())
    padded_tokens = float(full.sum())
    kernels = [
        projection_launch(linear_lengths, h, 3 * h, name="QKV Proj.MM",
                          impl_class="vendor", bulk_pad=1,
                          fully_padded=not effective),
        elementwise_launch("QKV Bias + AddPad", padded_tokens * 3 * h,
                           ops_per_element=1.0, impl_class="handopt"),
        qkt_launch(s, config, impl_class="vendor", pad_to=max_len),
        softmax_launch(full, config.num_heads, impl_class="handopt",
                       name="Softmax"),
        attnv_launch(s, config, impl_class="vendor", pad_to=max_len),
        padding_change_launch("Transpose + RemovePad", padded_tokens * h,
                              impl_class="handopt"),
        projection_launch(linear_lengths, h, h, name="Lin.Proj. MM",
                          impl_class="vendor", bulk_pad=1,
                          fully_padded=not effective),
        elementwise_launch("Bias+ResidualAdd+LayerNorm", tokens * h,
                           ops_per_element=12.0, impl_class="handopt"),
        projection_launch(linear_lengths, h, f, name="FF1 MM",
                          impl_class="vendor", bulk_pad=1,
                          fully_padded=not effective),
        elementwise_launch("FF1 Bias+Act.", tokens * f, ops_per_element=6.0,
                           impl_class="handopt"),
        projection_launch(linear_lengths, f, h, name="FF2 MM",
                          impl_class="vendor", bulk_pad=1,
                          fully_padded=not effective),
        elementwise_launch("FF2 Bias+ResidualAdd+LayerNorm", tokens * h,
                           ops_per_element=12.0, impl_class="handopt"),
    ]
    return kernels


def _framework_encoder_kernels(lengths: np.ndarray, config: TransformerConfig,
                               ) -> List[KernelLaunch]:
    """A framework (PyTorch / TensorFlow) execution: fully padded, unfused."""
    h, f = config.hidden_size, config.ff_size
    s = lengths
    max_len = int(s.max())
    full = np.full_like(s, max_len)
    padded_tokens = float(full.sum())
    kernels = [
        projection_launch(full, h, 3 * h, name="QKV Proj", impl_class="vendor",
                          bulk_pad=1, fully_padded=True),
        elementwise_launch("QKV Bias", padded_tokens * 3 * h,
                           impl_class="framework"),
        qkt_launch(s, config, impl_class="vendor", pad_to=max_len),
        softmax_launch(full, config.num_heads, impl_class="framework",
                       name="Masked Softmax"),
        attnv_launch(s, config, impl_class="vendor", pad_to=max_len),
        elementwise_launch("Transpose", padded_tokens * h, impl_class="framework"),
        projection_launch(full, h, h, name="Output Proj", impl_class="vendor",
                          bulk_pad=1, fully_padded=True),
        elementwise_launch("Bias+Residual", padded_tokens * h,
                           ops_per_element=2.0, impl_class="framework"),
        layernorm_launch(padded_tokens, h, impl_class="framework",
                         name="LayerNorm1"),
        projection_launch(full, h, f, name="FF1", impl_class="vendor",
                          bulk_pad=1, fully_padded=True),
        elementwise_launch("FF1 Bias+Act", padded_tokens * f,
                           ops_per_element=6.0, impl_class="framework"),
        projection_launch(full, f, h, name="FF2", impl_class="vendor",
                          bulk_pad=1, fully_padded=True),
        elementwise_launch("FF2 Bias+Residual", padded_tokens * h,
                           ops_per_element=2.0, impl_class="framework"),
        layernorm_launch(padded_tokens, h, impl_class="framework",
                         name="LayerNorm2"),
    ]
    return kernels


def encoder_layer_workload(
    lengths: Sequence[int],
    strategy: str,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    on_gpu: bool = True,
    num_layers: Optional[int] = None,
    fuse_pad_change: bool = True,
) -> Workload:
    """Build the workload of *one* encoder layer under a given strategy.

    CoRa's per-layer prelude overhead is amortised over ``num_layers``
    (defaults to the model's layer count), matching Table 4's accounting.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    num_layers = num_layers or config.num_layers
    strategy = strategy.lower()
    if strategy == "cora":
        kernels = _cora_encoder_kernels(lengths, config,
                                        fuse_pad_change=fuse_pad_change)
        prelude = _prelude_overheads(lengths, config, on_gpu)
        return Workload(
            name="CoRa", kernels=kernels,
            h2d_bytes=prelude["bytes"] / num_layers,
            prelude_time_s=prelude["time_s"] / num_layers,
        )
    if strategy in ("ft", "ft-eff", "fteff"):
        effective = strategy != "ft"
        kernels = _ft_encoder_kernels(lengths, config, effective=effective)
        return Workload(name="FT-Eff" if effective else "FT", kernels=kernels)
    if strategy in ("pytorch", "tf", "framework"):
        kernels = _framework_encoder_kernels(lengths, config)
        return Workload(name=strategy, kernels=kernels,
                        dispatch_overhead_us=6.0 if on_gpu else 12.0)
    raise ValueError(f"unknown encoder strategy {strategy!r}")


# -- MHA-only workloads (Tables 5 and 9, Figures 12 and 25) --------------------------


def mha_workload(
    lengths: Sequence[int],
    strategy: str,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    on_gpu: bool = False,
    fuse_pad_change: Optional[bool] = None,
) -> Workload:
    """The multi-head attention module (Proj1, QKT, Softmax, AttnV, Proj2)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    strategy = strategy.lower()
    h = config.hidden_size
    if strategy == "cora":
        # On the CPU backends CoRa offloads the dense inner gemm tiles to
        # OpenBLAS, which prevents fusing the padding-change operators
        # (Section D.8) -- they appear as separate, cheap kernels.
        if fuse_pad_change is None:
            fuse_pad_change = on_gpu
        # On the CPU backends CoRa offloads the dense inner tiles of the
        # Proj1 / Proj2 gemms to OpenBLAS micro-kernels (Section D.8), so
        # those kernels run at vendor-library efficiency there.
        proj_class = "compiler" if on_gpu else "vendor"
        sdpa_lengths = ceil_to(lengths, config.loop_pad)
        kernels = [
            projection_launch(lengths, h, 3 * h, name="Proj1",
                              impl_class=proj_class, bulk_pad=config.bulk_pad,
                              fused_epilogue_flops_per_token=3 * h),
            qkt_launch(sdpa_lengths, config, impl_class="compiler"),
            softmax_launch(sdpa_lengths, config.num_heads,
                           impl_class="compiler"),
            attnv_launch(sdpa_lengths, config, impl_class="compiler"),
            projection_launch(lengths, h, h, name="Proj2",
                              impl_class=proj_class, bulk_pad=config.bulk_pad,
                              fused_epilogue_flops_per_token=2 * h),
        ]
        if not fuse_pad_change:
            pad_elements = float((config.num_heads
                                  * ceil_to(lengths, config.loop_pad) ** 2).sum())
            kernels.append(padding_change_launch("PadChange",
                                                 pad_elements / 4.0,
                                                 impl_class="compiler"))
        prelude = _prelude_overheads(lengths, config, on_gpu)
        return Workload(name="CoRa", kernels=kernels,
                        h2d_bytes=prelude["bytes"] if on_gpu else 0.0,
                        prelude_time_s=prelude["time_s"])
    if strategy in ("tf", "pytorch", "pt"):
        max_len = int(lengths.max())
        full = np.full_like(lengths, max_len)
        padded_tokens = float(full.sum())
        kernels = [
            projection_launch(full, h, 3 * h, name="Proj1", impl_class="vendor",
                              bulk_pad=1, fully_padded=True),
            qkt_launch(lengths, config, impl_class="vendor", pad_to=max_len),
            softmax_launch(full, config.num_heads, impl_class="framework"),
            attnv_launch(lengths, config, impl_class="vendor", pad_to=max_len),
            projection_launch(full, h, h, name="Proj2", impl_class="vendor",
                              bulk_pad=1, fully_padded=True),
            padding_change_launch("PadChange", padded_tokens * h / 8.0,
                                  impl_class="framework"),
        ]
        # Framework dispatch overhead per operator.  It is what makes very
        # small micro-batches unattractive in the TF-UB / PT-UB
        # configurations (Table 9): each micro-batch re-dispatches every
        # operator, so the optimum micro-batch size stays fairly large on
        # the 64-core CPU.
        dispatch = 40.0 if strategy == "tf" else 25.0
        return Workload(name=strategy.upper(), kernels=kernels,
                        dispatch_overhead_us=dispatch)
    raise ValueError(f"unknown MHA strategy {strategy!r}")


# -- per-operator breakdowns (Figures 13, 24, 25; Table 10) ---------------------------


_BREAKDOWN_GROUPS = {
    "Proj1": ("Proj1", "QKV Proj.MM", "QKV Bias + AddPad", "QKV Proj",
              "QKV Bias", "AddPad"),
    "QKT": ("QKT",),
    "Softmax": ("Softmax", "Masked Softmax", "ChangePad"),
    "AttnV": ("AttnV",),
    "Proj2": ("Proj2", "Transpose + RemovePad", "Lin.Proj. MM",
              "Bias+ResidualAdd+LayerNorm", "LayerNorm1", "Output Proj",
              "Bias+Residual", "Transpose", "RemovePad", "PadChange"),
    "FF1": ("FF1", "FF1 MM", "FF1 Bias+Act.", "FF1 Bias+Act"),
    "FF2": ("FF2", "FF2 MM", "FF2 Bias+ResidualAdd+LayerNorm",
            "FF2 Bias+Residual", "LayerNorm2"),
}


def encoder_operator_breakdown(per_kernel_ms: Dict[str, float]) -> Dict[str, float]:
    """Group per-kernel latencies into the paper's sub-graph breakdown
    (Proj1 / QKT / Softmax / AttnV / Proj2 / FF1 / FF2)."""
    grouped: Dict[str, float] = {k: 0.0 for k in _BREAKDOWN_GROUPS}
    for name, value in per_kernel_ms.items():
        for group, members in _BREAKDOWN_GROUPS.items():
            if name in members:
                grouped[group] += value
                break
        else:
            grouped.setdefault("other", 0.0)
            grouped["other"] += value
    return grouped


# ---------------------------------------------------------------------------
# Numeric (small-scale) forward pass for correctness testing
# ---------------------------------------------------------------------------


@dataclass
class EncoderWeights:
    """Weights of one encoder layer (shared by ragged and dense paths)."""

    wqkv: np.ndarray
    bqkv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray
    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray

    @classmethod
    def zeros(cls, config: TransformerConfig) -> "EncoderWeights":
        """All-zero weights (identity-free): cheap to build at paper scale,
        used by the analytical memory model to declare the encoder program
        without paying for random initialisation."""
        h, f = config.hidden_size, config.ff_size
        return cls(
            wqkv=np.zeros((h, 3 * h), dtype=np.float32),
            bqkv=np.zeros(3 * h, dtype=np.float32),
            wo=np.zeros((h, h), dtype=np.float32),
            bo=np.zeros(h, dtype=np.float32),
            w1=np.zeros((h, f), dtype=np.float32),
            b1=np.zeros(f, dtype=np.float32),
            w2=np.zeros((f, h), dtype=np.float32),
            b2=np.zeros(h, dtype=np.float32),
            ln1_gamma=np.ones(h, dtype=np.float32),
            ln1_beta=np.zeros(h, dtype=np.float32),
            ln2_gamma=np.ones(h, dtype=np.float32),
            ln2_beta=np.zeros(h, dtype=np.float32),
        )

    @classmethod
    def random(cls, config: TransformerConfig, seed: int = 0) -> "EncoderWeights":
        rng = np.random.default_rng(seed)
        h, f = config.hidden_size, config.ff_size
        scale = 1.0 / np.sqrt(h)
        return cls(
            wqkv=(rng.standard_normal((h, 3 * h)) * scale).astype(np.float32),
            bqkv=np.zeros(3 * h, dtype=np.float32),
            wo=(rng.standard_normal((h, h)) * scale).astype(np.float32),
            bo=np.zeros(h, dtype=np.float32),
            w1=(rng.standard_normal((h, f)) * scale).astype(np.float32),
            b1=np.zeros(f, dtype=np.float32),
            w2=(rng.standard_normal((f, h)) * (1.0 / np.sqrt(f))).astype(np.float32),
            b2=np.zeros(h, dtype=np.float32),
            ln1_gamma=np.ones(h, dtype=np.float32),
            ln1_beta=np.zeros(h, dtype=np.float32),
            ln2_gamma=np.ones(h, dtype=np.float32),
            ln2_beta=np.zeros(h, dtype=np.float32),
        )


@dataclass
class EncoderLayerResult:
    """Output of the numeric encoder forward pass."""

    hidden: List[np.ndarray]

    def as_dense(self, max_len: int) -> np.ndarray:
        batch = len(self.hidden)
        h = self.hidden[0].shape[-1]
        out = np.zeros((batch, max_len, h), dtype=np.float32)
        for i, seq in enumerate(self.hidden):
            out[i, :seq.shape[0]] = seq
        return out


def _append_encoder_layer(
    program: Program,
    tokens: str,
    weights: EncoderWeights,
    lengths: Sequence[int],
    config: TransformerConfig,
    masked: bool,
    prefix: str = "",
    out: str = "out_tokens",
) -> str:
    """Append one CoRa encoder layer's nodes to an existing program graph.

    ``tokens`` names the packed ``(total_tokens, hidden)`` input value of
    the layer; ``prefix`` namespaces every node / value / constant of the
    layer (``"L3."`` for layer 3 of a stack), so N layers coexist in one
    graph.  Returns the name of the layer's packed output value.
    """
    heads, d = config.num_heads, config.head_size

    qkv = linear_node(program, tokens, weights.wqkv, weights.bqkv,
                      name=f"{prefix}proj1", out=f"{prefix}qkv")
    q, k, v = qkv_split_node(program, qkv, lengths, heads, d,
                             prefix=f"{prefix}qkv")
    attn = sdpa_nodes(program, q, k, v, lengths, heads, d, masked=masked,
                      prefix=f"{prefix}sdpa")
    attn_tokens = attn_merge_node(program, attn, lengths, heads, d,
                                  name=f"{prefix}attn.merge",
                                  out=f"{prefix}attn_tokens")
    proj = linear_node(program, attn_tokens, weights.wo, weights.bo,
                       name=f"{prefix}proj2", out=f"{prefix}proj")
    resid1 = add_node(program, proj, tokens, name=f"{prefix}resid1")
    norm1 = layernorm_node(program, resid1, weights.ln1_gamma,
                           weights.ln1_beta, name=f"{prefix}ln1")
    ff1_lin = linear_node(program, norm1, weights.w1, weights.b1,
                          name=f"{prefix}ff1", out=f"{prefix}ff1.lin")
    ff1 = relu_node(program, ff1_lin, name=f"{prefix}ff1.relu")
    ff2 = linear_node(program, ff1, weights.w2, weights.b2,
                      name=f"{prefix}ff2")
    resid2 = add_node(program, ff2, norm1, name=f"{prefix}resid2")
    return layernorm_node(program, resid2, weights.ln2_gamma,
                          weights.ln2_beta, name=f"{prefix}ln2", out=out)


def build_encoder_program(
    lengths: Sequence[int],
    weights: EncoderWeights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
) -> Program:
    """Declare the CoRa encoder layer as a ragged program graph.

    The program's single input is the packed (vloop-fused) ``(tokens,
    hidden)`` matrix; its single marked output, ``"out_tokens"``, is the
    packed result of the second layer normalisation.  The graph carries
    the full 9-kernel CoRa structure of Figure 3: fused linear projections
    and layer norms as host nodes over the packed token matrix, and the
    SDPA operators (QK^T, the optionally causal-masked ragged softmax,
    AttnV) as compiled kernel nodes reusing the op-by-op schedules -- so a
    :class:`~repro.core.session.Session` compiles the whole layer ahead of
    time and executes it with a flat dispatch loop over arena buffers.

    The weight arrays are *referenced* as program constants, not copied;
    treat them as immutable for the program's lifetime.
    """
    lengths = [int(n) for n in lengths]
    total = sum(lengths)

    program = Program(
        f"encoder[{'masked' if masked else 'unmasked'}]"
        f"b{len(lengths)}t{total}")
    tokens = program.add_input("tokens", shape=(total, config.hidden_size))
    out_tokens = _append_encoder_layer(program, tokens, weights, lengths,
                                       config, masked)
    program.mark_output(out_tokens)
    program.recipe = ("builder", "repro.models.transformer", "encoder",
                      dict(lengths=lengths, weights=weights, config=config,
                           masked=masked))
    return program


def _weights_per_layer(weights, n_layers: Optional[int],
                       default_layers: int = 1) -> List[EncoderWeights]:
    """Normalise ``weights`` to one :class:`EncoderWeights` per layer.

    ``weights`` is either a single weight set shared by every layer (then
    the depth is ``n_layers``, falling back to ``default_layers`` -- the
    stack builders pass ``config.num_layers`` so an unspecified depth
    means the *model's* layer count, not a silent single layer) or a
    sequence with one entry per layer (then ``n_layers``, if given, must
    agree).
    """
    if isinstance(weights, EncoderWeights):
        n = int(n_layers if n_layers is not None else default_layers)
        if n < 1:
            raise ValueError(f"encoder stack needs n_layers >= 1, got {n}")
        return [weights] * n
    weights = list(weights)
    if not weights:
        raise ValueError("encoder stack needs at least one layer of weights")
    if n_layers is not None and int(n_layers) != len(weights):
        raise ValueError(
            f"n_layers={n_layers} but {len(weights)} weight sets were given")
    return weights


def build_encoder_stack_program(
    lengths: Sequence[int],
    weights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    n_layers: Optional[int] = None,
) -> Program:
    """Declare N stacked CoRa encoder layers as *one* ragged program graph.

    Layer ``i``'s nodes and values are namespaced ``L{i}.``; layer ``i``'s
    packed output feeds layer ``i+1``'s projections and residual add.
    Because the whole stack is a single :class:`Program`, the planner's
    liveness pass spans every layer: layer ``k``'s intermediates die as
    layer ``k+1`` consumes them, so their arena slabs are reused across
    the whole model and peak intermediate bytes stay near one layer's
    arena instead of N of them.

    ``weights`` is a single :class:`EncoderWeights` shared by all
    ``n_layers`` layers (``n_layers`` defaults to ``config.num_layers``),
    or a sequence with one weight set per layer.  The program's input is
    the packed ``"tokens"`` matrix and its single marked output is
    ``"out_tokens"`` -- the same contract as the single-layer
    :func:`build_encoder_program`, so callers are agnostic to the
    stacking depth.
    """
    per_layer = _weights_per_layer(weights, n_layers,
                                   default_layers=config.num_layers)
    lengths = [int(n) for n in lengths]
    total = sum(lengths)

    program = Program(
        f"encoder-stack[{'masked' if masked else 'unmasked'}]"
        f"x{len(per_layer)}b{len(lengths)}t{total}")
    value = program.add_input("tokens", shape=(total, config.hidden_size))
    last = len(per_layer) - 1
    for i, layer_weights in enumerate(per_layer):
        value = _append_encoder_layer(
            program, value, layer_weights, lengths, config, masked,
            prefix=f"L{i}.",
            out="out_tokens" if i == last else f"L{i}.out_tokens")
    program.mark_output(value)
    program.recipe = ("builder", "repro.models.transformer",
                      "encoder_stack",
                      dict(lengths=lengths, weights=per_layer, config=config,
                           masked=masked))
    return program


def encoder_program(
    lengths: Sequence[int],
    weights: EncoderWeights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    session: Optional[Session] = None,
) -> Program:
    """The encoder program for one raggedness signature, memoized on the
    session (keyed by lengths, weights identity, config and masking; the
    weights object is pinned for the lifetime of the memo entry)."""
    session = session or default_session()
    lengths = tuple(int(n) for n in lengths)
    key = ("encoder-program", lengths, id(weights), bool(masked),
           config.hidden_size, config.num_heads, config.head_size,
           config.ff_size, config.loop_pad, config.bulk_pad,
           config.attention_tile)
    program, _pinned = session.memoize(
        key, lambda: (build_encoder_program(lengths, weights, config,
                                            masked), weights))
    return program


def encoder_stack_program(
    lengths: Sequence[int],
    weights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    n_layers: Optional[int] = None,
    session: Optional[Session] = None,
) -> Program:
    """The N-layer encoder stack program for one raggedness signature,
    memoized on the session (keyed by lengths, the per-layer weight
    identities, config and masking; the weight objects are pinned for the
    lifetime of the memo entry).  With a single shared weight set,
    ``n_layers`` defaults to ``config.num_layers``."""
    session = session or default_session()
    per_layer = _weights_per_layer(weights, n_layers,
                                   default_layers=config.num_layers)
    lengths = tuple(int(n) for n in lengths)
    key = ("encoder-stack-program", lengths,
           tuple(id(w) for w in per_layer), bool(masked),
           config.hidden_size, config.num_heads, config.head_size,
           config.ff_size, config.loop_pad, config.bulk_pad,
           config.attention_tile)
    program, _pinned = session.memoize(
        key, lambda: (build_encoder_stack_program(lengths, per_layer, config,
                                                  masked), per_layer))
    return program


def build_encoder_wide_program(
    groups: Sequence[Sequence[int]],
    weights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    n_layers: Optional[int] = None,
    stagger: Optional[int] = None,
) -> Program:
    """Declare K independent encoder stacks fused into *one* wide program.

    ``groups`` is one length vector per request group (or batch shard);
    group ``i`` becomes the disjoint subgraph ``R{i}.`` of the merged
    program, with the weight constants shared across all groups by array
    identity.  The merged graph has K independent chains, so
    ``ready_steps`` carries K entries and a width-aware engine
    (:class:`~repro.core.engine.PipelinedEngine` /
    :class:`~repro.core.engine.ProcessPoolEngine`) can genuinely overlap
    the groups -- the graph width PR 5's chain-shaped stacks lacked.

    The program carries an ``encoder_wide`` rebuild recipe that unpickles
    the weights *once* and shares the one object across every part, so
    worker processes reconstruct the identical deduplicated graph (a
    generic part-by-part rebuild would lose cross-part array identity).
    """
    per_layer = _weights_per_layer(weights, n_layers,
                                   default_layers=config.num_layers)
    groups = [tuple(int(n) for n in g) for g in groups]
    if not groups:
        raise ValueError("encoder wide program needs at least one group")
    parts = [build_encoder_stack_program(g, per_layer, config, masked)
             for g in groups]
    if len(parts) == 1:
        return parts[0]
    merged = merge_programs(parts, share="constants", stagger=stagger)
    merged.recipe = ("builder", "repro.models.transformer", "encoder_wide",
                     dict(groups=groups, weights=per_layer, config=config,
                          masked=masked, stagger=stagger))
    return merged


def encoder_wide_program(
    groups: Sequence[Sequence[int]],
    weights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    n_layers: Optional[int] = None,
    session: Optional[Session] = None,
    stagger: Optional[int] = None,
) -> Program:
    """The K-group fused encoder program, memoized on the session (keyed
    by the group length vectors, per-layer weight identities, config,
    masking and stagger; weights are pinned for the memo entry's life).
    Group ``i``'s input is ``R{i}.tokens`` and its output
    ``R{i}.out_tokens`` (plain ``tokens`` / ``out_tokens`` when only one
    group is given -- the merge is skipped)."""
    session = session or default_session()
    per_layer = _weights_per_layer(weights, n_layers,
                                   default_layers=config.num_layers)
    groups = tuple(tuple(int(n) for n in g) for g in groups)
    key = ("encoder-wide-program", groups,
           tuple(id(w) for w in per_layer), bool(masked), stagger,
           config.hidden_size, config.num_heads, config.head_size,
           config.ff_size, config.loop_pad, config.bulk_pad,
           config.attention_tile)
    program, _pinned = session.memoize(
        key, lambda: (build_encoder_wide_program(
            groups, per_layer, config, masked, stagger=stagger), per_layer))
    return program


register_program_builder("encoder", build_encoder_program)
register_program_builder("encoder_stack", build_encoder_stack_program)
register_program_builder("encoder_wide", build_encoder_wide_program)


def _encoder_chain_tune_space(**_) -> TuneSpace:
    """The chain-level schedule knob: planner kernel fusion on/off.

    Fusion collapses the per-layer kernel chain into a few fused
    dispatches (PR 8: -83..86% dispatches) but pads intermediates to the
    producer's storage extents -- whether that wins depends on how
    dispatch-bound the signature is, which is exactly what the tuner
    measures per raggedness bucket.  The default point is the unfused
    chain (``Session(fuse=False)``, today's default)."""
    return TuneSpace(
        "encoder_chain",
        [TuneParam("fuse", (False, True))],
        TunePoint({"fuse": False}))


register_tune_op("encoder_chain", _encoder_chain_tune_space, kind="chain")


def run_encoder_stack_numeric(
    hidden: Sequence[np.ndarray],
    weights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    n_layers: Optional[int] = None,
    session: Optional[Session] = None,
) -> EncoderLayerResult:
    """Run N stacked encoder layers numerically on ragged inputs.

    The whole stack is declared once per raggedness signature as a single
    ragged program (:func:`build_encoder_stack_program`), compiled ahead
    of time and executed as one flat dispatch loop whose arena plan spans
    every layer.  Bit-identical to running the layers one at a time
    through :func:`run_encoder_layer_numeric` (the differential suite in
    ``tests/test_multilayer_program.py`` pins this down).  With a single
    shared weight set, ``n_layers`` defaults to ``config.num_layers``.
    """
    session = session or default_session()
    lengths = [h.shape[0] for h in hidden]
    program = encoder_stack_program(lengths, weights, config, masked=masked,
                                    n_layers=n_layers, session=session)
    out = session.run(program, {"tokens": pack_tokens(hidden)})["out_tokens"]
    return EncoderLayerResult(hidden=unpack_tokens(out, lengths))


def run_encoder_layer_numeric(
    hidden: Sequence[np.ndarray],
    weights: EncoderWeights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    backend: Optional[str] = None,
    executor: Optional[object] = None,
    session: Optional[Session] = None,
) -> EncoderLayerResult:
    """Run one encoder layer numerically on ragged inputs.

    A thin wrapper over :meth:`Session.run`: the layer is declared once
    per raggedness signature as a ragged program
    (:func:`build_encoder_program`), compiled ahead of time -- one shared
    prelude build, every SDPA kernel lowered and vectorized through the
    executor's codegen backend, intermediates planned into reusable arena
    slabs -- and then executed as a flat dispatch loop.

    ``hidden`` is a list of per-sequence ``(length, hidden)`` matrices.
    ``backend`` (``"vector"`` default / ``"scalar"``) selects the codegen
    backend of the default session; pass an explicit ``executor`` or
    ``session`` to control caching and observe codegen statistics.  The
    op-by-op path is kept as :func:`run_encoder_layer_opbyop` and remains
    bit-identical to this program path for both masked variants.
    """
    if session is None:
        if executor is not None:
            from repro.core.session import session_for_executor

            session = session_for_executor(executor)
        else:
            session = default_session(backend or "vector")
    lengths = [h.shape[0] for h in hidden]
    program = encoder_program(lengths, weights, config, masked=masked,
                              session=session)
    out = session.run(program, {"tokens": pack_tokens(hidden)})["out_tokens"]
    return EncoderLayerResult(hidden=unpack_tokens(out, lengths))


def run_encoder_layer_opbyop(
    hidden: Sequence[np.ndarray],
    weights: EncoderWeights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
    backend: Optional[str] = None,
    executor: Optional[object] = None,
) -> EncoderLayerResult:
    """The op-by-op numeric path: one dispatch and one fresh output
    allocation per operator.

    Linear operators run on the packed (vloop-fused) token matrix; the SDPA
    operators run per sequence -- mirroring CoRa's implementation structure.

    With ``backend`` (``"vector"`` / ``"scalar"``) or an explicit
    ``executor``, the SDPA operators run through the CoRa compiled pipeline
    (lowering + codegen with that backend) instead of the NumPy reference.
    ``masked=True`` routes through the compiled causal-mask kernel chain
    (:func:`repro.ops.softmax.masked_softmax_compiled`); the NumPy
    reference stays the differential oracle for both variants.  This path
    is the baseline the program runtime is benchmarked and differentially
    tested against (``Session.run`` output is bit-identical to it when
    both use compiled SDPA).
    """
    lengths = [h.shape[0] for h in hidden]
    h_size = config.hidden_size
    heads, d = config.num_heads, config.head_size

    tokens = pack_tokens(hidden)
    qkv = linear_packed(tokens, weights.wqkv, weights.bqkv)
    qkv_slices = unpack_tokens(qkv, lengths)
    q, k, v = [], [], []
    for sl in qkv_slices:
        s = sl.shape[0]
        reshaped = sl.reshape(s, 3, heads, d).transpose(1, 2, 0, 3)
        q.append(np.ascontiguousarray(reshaped[0]))
        k.append(np.ascontiguousarray(reshaped[1]))
        v.append(np.ascontiguousarray(reshaped[2]))

    if backend is not None or executor is not None:
        from repro.ops.attention import sdpa_compiled

        attn = sdpa_compiled(q, k, v, head_size=d,
                             backend=backend or "vector", executor=executor,
                             masked=masked)
    else:
        attn = sdpa_slices(q, k, v, head_size=d, masked=masked)
    attn_tokens = pack_tokens([
        a.transpose(1, 0, 2).reshape(a.shape[1], heads * d) for a in attn
    ])
    proj = linear_packed(attn_tokens, weights.wo, weights.bo)
    resid1 = proj + tokens
    norm1 = layernorm_flat(resid1, weights.ln1_gamma, weights.ln1_beta)

    ff1 = np.maximum(linear_packed(norm1, weights.w1, weights.b1), 0.0)
    ff2 = linear_packed(ff1, weights.w2, weights.b2)
    resid2 = ff2 + norm1
    norm2 = layernorm_flat(resid2, weights.ln2_gamma, weights.ln2_beta)
    return EncoderLayerResult(hidden=unpack_tokens(norm2, lengths))


def run_encoder_layer_dense_reference(
    hidden_dense: np.ndarray,
    lengths: Sequence[int],
    weights: EncoderWeights,
    config: TransformerConfig = PAPER_BASE_CONFIG,
    masked: bool = False,
) -> np.ndarray:
    """The fully padded reference: identical math on zero-padded dense inputs,
    with attention masking of the padded columns."""
    from repro.ops.attention import sdpa_dense_reference

    lengths = np.asarray(lengths)
    batch, max_len, h = hidden_dense.shape
    heads, d = config.num_heads, config.head_size
    mask = (np.arange(max_len)[None, :] < lengths[:, None]).astype(np.float32)

    qkv = hidden_dense @ weights.wqkv + weights.bqkv
    qkv = qkv.reshape(batch, max_len, 3, heads, d).transpose(2, 0, 3, 1, 4)
    q, k, v = qkv[0], qkv[1], qkv[2]
    attn = sdpa_dense_reference(q, k, v, lengths, head_size=d, masked=masked)
    attn = attn.transpose(0, 2, 1, 3).reshape(batch, max_len, h)
    proj = attn @ weights.wo + weights.bo
    resid1 = proj + hidden_dense
    mean = resid1.mean(axis=-1, keepdims=True)
    var = resid1.var(axis=-1, keepdims=True)
    norm1 = (resid1 - mean) / np.sqrt(var + 1e-5) * weights.ln1_gamma + weights.ln1_beta
    ff1 = np.maximum(norm1 @ weights.w1 + weights.b1, 0.0)
    ff2 = ff1 @ weights.w2 + weights.b2
    resid2 = ff2 + norm1
    mean = resid2.mean(axis=-1, keepdims=True)
    var = resid2.var(axis=-1, keepdims=True)
    norm2 = (resid2 - mean) / np.sqrt(var + 1e-5) * weights.ln2_gamma + weights.ln2_beta
    return (norm2 * mask[:, :, None]).astype(np.float32)
