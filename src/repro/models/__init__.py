"""Transformer models assembled from CoRa operators and baseline strategies.

``repro.models.config`` is imported eagerly (the operator library depends on
the hyperparameter dataclass); the heavier ``repro.models.transformer``
module is loaded lazily to avoid a circular import with ``repro.ops``.
"""

from repro.models.config import PAPER_BASE_CONFIG, TransformerConfig

__all__ = [
    "TransformerConfig",
    "PAPER_BASE_CONFIG",
    "encoder_layer_workload",
    "encoder_operator_breakdown",
    "mha_workload",
    "run_encoder_layer_numeric",
    "EncoderLayerResult",
]

_LAZY = {
    "encoder_layer_workload",
    "encoder_operator_breakdown",
    "mha_workload",
    "run_encoder_layer_numeric",
    "EncoderLayerResult",
}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.models import transformer

        return getattr(transformer, name)
    raise AttributeError(f"module 'repro.models' has no attribute {name!r}")
