"""Transformer model hyperparameters.

The paper evaluates a 6-layer encoder with the "base" hyperparameters of
Vaswani et al. (2017): hidden size 512, 8 attention heads of size 64 and an
inner feed-forward size of 2048 (Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of the transformer encoder used in the evaluation."""

    hidden_size: int = 512
    num_heads: int = 8
    head_size: int = 64
    ff_size: int = 2048
    num_layers: int = 6
    #: multiple to which individual vloops are padded in CoRa's schedules
    loop_pad: int = 32
    #: multiple to which the fused (bulk-padded) sequence-sum is padded
    bulk_pad: int = 64
    #: tile size used by the attention operators (operation splitting)
    attention_tile: int = 64

    def __post_init__(self) -> None:
        if self.num_heads * self.head_size != self.hidden_size:
            raise ValueError(
                "hidden_size must equal num_heads * head_size "
                f"({self.num_heads} * {self.head_size} != {self.hidden_size})"
            )

    @property
    def qkv_size(self) -> int:
        """Size of the concatenated query/key/value projection output."""
        return 3 * self.hidden_size


#: The configuration used throughout the paper's Section 7.2 evaluation.
PAPER_BASE_CONFIG = TransformerConfig()
