"""Workload generators: the sequence-length datasets of the paper's Table 3."""

from repro.data.datasets import (
    DATASETS,
    Dataset,
    dataset_names,
    get_dataset,
    sample_lengths,
)

__all__ = ["Dataset", "DATASETS", "get_dataset", "dataset_names", "sample_lengths"]
