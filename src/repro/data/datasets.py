"""Synthetic sequence-length workloads matched to the paper's datasets.

The paper's transformer evaluation (Section 7.2, Table 3) uses the sequence
lengths of eight NLP datasets after standard preprocessing.  The raw corpora
are not available offline, so this module generates *synthetic* length
distributions matched to the minimum / mean / maximum statistics the paper
reports for each dataset.  Every experiment in the paper only depends on the
distribution of lengths within a mini-batch, so this substitution preserves
the quantities being measured (amount of padding, load imbalance,
computation savings); see DESIGN.md.

Lengths are sampled from a scaled Beta distribution whose shape parameters
are fitted so that the sample mean matches the reported mean, clipped to the
reported [min, max].  Sampling is deterministic given (dataset, batch size,
seed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """Sequence-length statistics of one evaluation dataset (paper Table 3)."""

    name: str
    min_len: int
    mean_len: int
    max_len: int
    #: concentration of the fitted Beta distribution (higher = tighter around
    #: the mean); tuned per dataset so the tails look plausible.
    concentration: float = 4.0

    def __post_init__(self) -> None:
        if not (self.min_len <= self.mean_len <= self.max_len):
            raise ValueError(
                f"{self.name}: need min <= mean <= max, got "
                f"{self.min_len}/{self.mean_len}/{self.max_len}"
            )

    # -- sampling -------------------------------------------------------------

    def _seed_for(self, batch_size: int, seed: int) -> int:
        digest = hashlib.sha256(
            f"{self.name}:{batch_size}:{seed}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def sample_lengths(self, batch_size: int, seed: int = 0) -> np.ndarray:
        """Sample a mini-batch of sequence lengths.

        The sample is deterministic in ``(dataset, batch_size, seed)`` and is
        adjusted so its mean is close to the dataset's reported mean.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.min_len == self.max_len:
            return np.full(batch_size, self.max_len, dtype=np.int64)
        rng = np.random.default_rng(self._seed_for(batch_size, seed))
        span = self.max_len - self.min_len
        mean_frac = (self.mean_len - self.min_len) / span
        mean_frac = min(max(mean_frac, 0.02), 0.98)
        a = mean_frac * self.concentration
        b = (1.0 - mean_frac) * self.concentration
        frac = rng.beta(a, b, size=batch_size)
        lengths = np.round(self.min_len + frac * span).astype(np.int64)
        lengths = np.clip(lengths, self.min_len, self.max_len)
        # Nudge the sample mean towards the reported mean (keeps experiments
        # such as Figure 2 close to the paper's analytical curves).
        target_total = int(round(self.mean_len * batch_size))
        diff = target_total - int(lengths.sum())
        step = 1 if diff > 0 else -1
        order = rng.permutation(batch_size)
        i = 0
        while diff != 0 and i < 10 * batch_size:
            idx = order[i % batch_size]
            candidate = lengths[idx] + step
            if self.min_len <= candidate <= self.max_len:
                lengths[idx] = candidate
                diff -= step
            i += 1
        return lengths

    @property
    def padding_ratio_estimate(self) -> float:
        """Rough padded-to-useful ratio when padding to the dataset maximum."""
        return self.max_len / max(self.mean_len, 1)


# Table 3 of the paper: Min / Mean / Max sequence lengths per dataset.
DATASETS: Dict[str, Dataset] = {
    "RACE": Dataset("RACE", 80, 364, 512, concentration=4.0),
    "Wiki512": Dataset("Wiki512", 12, 371, 512, concentration=3.0),
    "SQuAD": Dataset("SQuAD", 39, 192, 384, concentration=4.0),
    "Wiki128": Dataset("Wiki128", 14, 117, 128, concentration=3.0),
    "MNLI": Dataset("MNLI", 9, 43, 128, concentration=4.0),
    "XNLI": Dataset("XNLI", 9, 70, 128, concentration=4.0),
    "MRPC": Dataset("MRPC", 21, 59, 102, concentration=5.0),
    "CoLA": Dataset("CoLA", 6, 13, 37, concentration=5.0),
}

#: Dataset order used throughout the paper's tables and figures.
DATASET_ORDER: List[str] = [
    "RACE", "Wiki512", "SQuAD", "Wiki128", "MNLI", "XNLI", "MRPC", "CoLA",
]


def dataset_names() -> List[str]:
    """The eight evaluation datasets in the paper's canonical order."""
    return list(DATASET_ORDER)


def get_dataset(name: str) -> Dataset:
    """Look up a dataset by (case-insensitive) name."""
    for key, ds in DATASETS.items():
        if key.lower() == name.lower():
            return ds
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
    )


def sample_lengths(name: str, batch_size: int, seed: int = 0) -> np.ndarray:
    """Convenience wrapper: sample a mini-batch of lengths for a dataset."""
    return get_dataset(name).sample_lengths(batch_size, seed=seed)


def uniform_multiple_lengths(
    batch_size: int, low: int, high: int, multiple: int, seed: int = 0
) -> np.ndarray:
    """Lengths drawn uniformly from multiples of ``multiple`` in ``[low, high]``.

    This is the synthetic workload of the vgemm experiment (Section 7.1):
    "matrix dimensions are uniformly randomly chosen multiples of 128 in
    [512, 1408]".
    """
    rng = np.random.default_rng(seed)
    choices = np.arange(low, high + 1, multiple, dtype=np.int64)
    if choices.size == 0:
        raise ValueError("no multiples of the given value lie in [low, high]")
    return rng.choice(choices, size=batch_size)
