"""Persistent ahead-of-time kernel cache.

The in-process kernel cache (:class:`repro.core.executor.Executor`)
already makes re-compilation free *within* a process, but every fresh
process -- each CI shard, every :class:`ProcessPoolEngine` worker, every
cold serving replica -- re-lowers and re-``exec``\\ s every kernel from
scratch.  CoRa's central premise (raggedness is known *before*
execution, so compilation can be hoisted out of the hot path entirely)
extends across processes: for a given (operator, schedule, raggedness
signature, backend) the lowered kernel and its generated source are
deterministic, so they can be computed once per machine and reloaded
from disk forever after.

Keys must be *content*-based: the in-memory ``schedule_signature`` keys
on object identities (``id(op)``, ``Dim`` uids from a per-process
counter), which are meaningless in another process.
:func:`stable_schedule_fingerprint` instead canonicalises every ``Dim``
to its first-appearance index over a deterministic traversal and hashes
extents by their length-table bytes.  Anything whose behaviour cannot
be captured by content -- callable-backed extents, callable remap
policies -- raises :class:`Uncacheable` and the kernel simply skips the
disk tier (correctness never depends on cacheability).

Entries are pickled dicts written atomically (temp file +
``os.replace``) under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; any
load failure (truncation, corruption, version skew, unpicklable
content) is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codegen import GeneratedKernel
from repro.core.extents import ConstExtent, Extent, PaddedExtent, VarExtent
from repro.core.ir import (
    BinOp,
    Call,
    Const,
    Expr,
    LoopVar,
    Reduce,
    TensorAccess,
)
from repro.core.lowering import LoweredKernel
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout

#: Bump when the entry payload or fingerprint scheme changes shape.
AOT_VERSION = 1


class Uncacheable(Exception):
    """The schedule depends on process state (callables) that a
    content-based fingerprint cannot capture."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# ---------------------------------------------------------------------------
# Content-based fingerprints
# ---------------------------------------------------------------------------


class _Canon:
    """First-appearance canonical ids for ``Dim`` objects.

    ``Dim`` uids come from a per-process counter, so they cannot appear
    in a cross-process key; the traversal order below is deterministic,
    which makes first-appearance numbering stable.
    """

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}

    def dim(self, d) -> int:
        i = self._ids.get(d)
        if i is None:
            i = self._ids[d] = len(self._ids)
        return i


def _table_digest(table: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(str(table.shape).encode())
    h.update(np.ascontiguousarray(table).tobytes())
    return h.hexdigest()


def _extent_fp(ext: Extent, canon: _Canon) -> Tuple:
    if isinstance(ext, PaddedExtent):
        return ("pad", ext.multiple, _extent_fp(ext.base, canon))
    if isinstance(ext, ConstExtent):
        return ("const", ext.value)
    if isinstance(ext, VarExtent):
        if ext.table is None:
            raise Uncacheable(
                f"extent {ext.name!r} is callable-backed (no length table)")
        return ("var", canon.dim(ext.dep), ext.name, _table_digest(ext.table))
    raise Uncacheable(f"unknown extent type {type(ext).__name__}")


def _expr_fp(expr: Expr, canon: _Canon) -> Tuple:
    if isinstance(expr, Const):
        return ("c", float(expr.value))
    if isinstance(expr, LoopVar):
        return ("lv", canon.dim(expr.dim))
    if isinstance(expr, BinOp):
        return ("b", expr.op, _expr_fp(expr.lhs, canon),
                _expr_fp(expr.rhs, canon))
    if isinstance(expr, Call):
        return ("call", expr.fn,
                tuple(_expr_fp(a, canon) for a in expr.args))
    if isinstance(expr, TensorAccess):
        spec = expr.tensor
        return ("acc", spec.name,
                tuple(canon.dim(d) for d in spec.dims),
                tuple(_extent_fp(e, canon) for e in spec.extents),
                tuple(_expr_fp(i, canon) for i in expr.indices))
    if isinstance(expr, Reduce):
        return ("red", expr.combiner, float(expr.init),
                tuple((canon.dim(a.dim), _extent_fp(a.extent, canon))
                      for a in expr.axes),
                _expr_fp(expr.body, canon))
    raise Uncacheable(f"unknown expression type {type(expr).__name__}")


def _layout_fp(layout: RaggedLayout, canon: _Canon) -> Tuple:
    return (
        tuple(canon.dim(d) for d in layout.dims),
        tuple(_extent_fp(e, canon) for e in layout.base_extents),
        tuple(sorted((canon.dim(d), p)
                     for d, p in layout.storage_padding.items())),
    )


def stable_schedule_fingerprint(
    schedule: Schedule,
    input_layouts: Optional[Dict[str, RaggedLayout]] = None,
) -> Tuple:
    """A cross-process-stable equivalent of ``schedule_signature``.

    Covers everything lowering reads: the operator (dims, extents, body
    expression, input specs), the full mutable schedule state, and the
    input-layout overrides.  Raises :class:`Uncacheable` when any part
    of that state is an arbitrary callable.
    """
    canon = _Canon()
    op = schedule.operator
    op_fp = (
        "op", op.name,
        tuple(canon.dim(d) for d in op.dims),
        tuple(_extent_fp(e, canon) for e in op.loop_extents),
        tuple(_extent_fp(e, canon) for e in op.storage_extents),
        _expr_fp(op.body, canon),
        tuple(("in", t.name, tuple(canon.dim(d) for d in t.dims),
               tuple(_extent_fp(e, canon) for e in t.extents))
              for t in op.inputs),
    )
    remaps = []
    for r in schedule.remaps:
        if not isinstance(r.policy, str):
            raise Uncacheable(
                f"remap policy on {r.dim.name!r} is a callable")
        remaps.append((canon.dim(r.dim), r.policy))
    sched_fp = (
        tuple(sorted((canon.dim(d), p)
                     for d, p in schedule.loop_padding.items())),
        tuple(sorted((canon.dim(d), p)
                     for d, p in schedule.storage_padding.items())),
        tuple(sorted(
            (name, tuple(sorted((canon.dim(d), p) for d, p in pads.items())))
            for name, pads in schedule.input_storage_padding.items())),
        tuple((canon.dim(s.original), canon.dim(s.outer),
               canon.dim(s.inner), s.factor) for s in schedule.splits),
        tuple((canon.dim(f.outer), canon.dim(f.inner), canon.dim(f.fused))
              for f in schedule.fusions),
        tuple((canon.dim(o), canon.dim(i))
              for o, i in schedule.dim_fusions),
        tuple(sorted((canon.dim(d), a.value)
                     for d, a in schedule.annotations.items())),
        tuple(remaps),
        tuple(canon.dim(d) for d in schedule.loop_order),
        schedule.hoist_loads,
    )
    layouts_fp = tuple(sorted(
        (name, _layout_fp(layout, canon))
        for name, layout in (input_layouts or {}).items()))
    return (op_fp, sched_fp, layouts_fp)


def kernel_cache_key(
    schedule: Schedule,
    input_layouts: Optional[Dict[str, RaggedLayout]],
    backend: str,
) -> str:
    """The on-disk key (a sha256 hex digest) for one compiled kernel.

    Mixes in the payload version and the python / numpy versions: a
    pickled ``LoweredKernel`` or generated source is only guaranteed to
    rebuild under the toolchain that produced it.
    """
    fp = (
        AOT_VERSION,
        sys.version_info[:2],
        np.__version__,
        backend,
        stable_schedule_fingerprint(schedule, input_layouts),
    )
    return hashlib.sha256(repr(fp).encode()).hexdigest()


# ---------------------------------------------------------------------------
# The on-disk cache
# ---------------------------------------------------------------------------


class AOTCache:
    """Pickle-per-entry kernel store with atomic writes.

    Layout: ``<root>/kernels/<sha[:2]>/<sha>.pkl``.  All failure modes
    degrade to cache misses -- a corrupt, truncated or version-skewed
    entry is ignored (and left for a later store to overwrite), and an
    unwritable directory silently disables stores.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_failures = 0

    def _path(self, key: str) -> Path:
        return self.root / "kernels" / key[:2] / f"{key}.pkl"

    # -- entry (de)hydration -------------------------------------------------

    @staticmethod
    def _payload(lowered: LoweredKernel,
                 generated: GeneratedKernel) -> Dict[str, object]:
        return {
            "version": AOT_VERSION,
            "lowered": lowered,
            "source": generated.source,
            "fn_name": generated.fn.__name__,
            "backend": generated.backend,
            "fallback_reason": generated.fallback_reason,
            # Bucketed vector kernels close over their compile-time bucket
            # partition; rebuild needs it back in the namespace.
            "buckets": generated.fn.__globals__.get("_BUCKETS"),
        }

    @staticmethod
    def _rebuild(payload: Dict[str, object]) -> Tuple[LoweredKernel,
                                                      GeneratedKernel]:
        from repro.core.codegen_vector import _gather_slices, _scatter_slices
        lowered = payload["lowered"]
        source = payload["source"]
        namespace: Dict[str, object] = {
            "np": np,
            "math": math,
            "_gather_slices": _gather_slices,
            "_scatter_slices": _scatter_slices,
        }
        if payload.get("buckets") is not None:
            namespace["_BUCKETS"] = payload["buckets"]
        exec(compile(source, f"<cora-aot:{lowered.name}>", "exec"), namespace)
        fn = namespace[payload["fn_name"]]
        generated = GeneratedKernel(
            name=lowered.name, source=source, fn=fn,
            backend=payload["backend"],
            fallback_reason=payload.get("fallback_reason"))
        return lowered, generated

    # -- public API ----------------------------------------------------------

    def load(self, key: str) -> Optional[Tuple[LoweredKernel, GeneratedKernel]]:
        """Fetch and rebuild a kernel, or ``None`` on any miss/failure."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict) \
                    or payload.get("version") != AOT_VERSION:
                raise ValueError("stale or malformed cache entry")
            result = self._rebuild(payload)
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, lowered: LoweredKernel,
              generated: GeneratedKernel) -> bool:
        """Persist a kernel atomically; ``False`` (never raise) on failure.

        Unpicklable lowered kernels -- e.g. callable-backed extents that
        slipped past fingerprinting, or closure-carrying generated code
        -- are simply skipped.
        """
        path = self._path(key)
        try:
            payload = pickle.dumps(self._payload(lowered, generated),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".{key[:8]}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.store_failures += 1
            return False
        self.stores += 1
        return True

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_failures": self.store_failures,
        }
