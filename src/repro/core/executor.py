"""The executor: compiling and running scheduled ragged operators.

The executor glues the pipeline of paper Figure 4 together:

1. lower the scheduled operator (:mod:`repro.core.lowering`);
2. generate the kernel through a codegen *backend* (the scalar reference
   emitter of :mod:`repro.core.codegen` or the vectorized NumPy emitter of
   :mod:`repro.core.codegen_vector`);
3. at run time, run the *prelude* (already materialised as the lowered
   kernel's auxiliary arrays -- bound tables, fusion maps, storage offsets,
   remap permutations) and hand the kernel flat buffers for every tensor;
4. report execution statistics: measured host wall time, the analytically
   counted FLOPs of the ragged loop nest, the FLOPs a fully padded
   execution would have needed, and (if a simulated device is attached)
   the modelled device latency.

Compilation is cached: a :class:`CompiledKernel` is keyed by the
(operator, schedule state, input-layout signature) triple, so repeated
``build_and_run`` calls with an unchanged schedule skip re-lowering and
re-``exec`` entirely.  ``Executor.lower_count`` / ``cache_hits`` /
``cache_misses`` expose the cache behaviour to benchmarks and tests.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.aotcache import AOTCache, Uncacheable, kernel_cache_key
from repro.core.cache import LRUDict
from repro.core.codegen import CodegenBackend, GeneratedKernel, get_backend
from repro.core.codegen_vector import (
    FusedMemberPlan,
    VectorizeError,
    generate_fused_kernel,
)
from repro.core.errors import ExecutionError
from repro.core.extents import ConstExtent, Extent, PaddedExtent, VarExtent
from repro.core.ir import count_flops, reductions_in
from repro.core.lowering import LoweredKernel, lower_schedule
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


@dataclass
class ExecutionReport:
    """Statistics of one kernel execution."""

    wall_time_s: float
    flops: int
    dense_flops: int
    device_latency_s: Optional[float] = None

    @property
    def padding_waste(self) -> float:
        """Ratio of fully padded to ragged FLOPs (>= 1)."""
        if self.flops == 0:
            return 1.0
        return self.dense_flops / self.flops


@dataclass
class CompiledKernel:
    """A lowered, generated, ready-to-run kernel.

    The FLOP estimates are pure functions of the lowered kernel, so they
    are computed once on first access and memoized -- ``run`` no longer
    re-walks the loop nest on every execution.
    """

    lowered: LoweredKernel
    generated: GeneratedKernel
    _flops: Optional[int] = field(default=None, repr=False)
    _dense_flops: Optional[int] = field(default=None, repr=False)

    @property
    def source(self) -> str:
        return self.generated.source

    @property
    def backend_name(self) -> str:
        """Which backend emitted the kernel (``"scalar"`` or ``"vector"``)."""
        return self.generated.backend

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why a vector-backend request fell back to scalar (else ``None``)."""
        return self.generated.fallback_reason

    @property
    def output_layout(self) -> RaggedLayout:
        return self.lowered.output_plan.layout

    @property
    def flops(self) -> int:
        if self._flops is None:
            self._flops = estimate_flops(self.lowered)
        return self._flops

    @property
    def dense_flops(self) -> int:
        if self._dense_flops is None:
            self._dense_flops = estimate_dense_flops(self.lowered)
        return self._dense_flops


class _GroupedFusedKernel:
    """Bit-identical fallback execution of a fused kernel region.

    Runs each member's individually compiled kernel in order inside one
    dispatch.  Internal values flow through fresh zero-initialised
    temporaries (allocated per call: fused kernels are cached and may be
    shared across threads), reproducing the pre-zeroed arena-slab
    semantics of the unfused plan exactly; external outputs are
    zero-filled and written in their buffers as usual.
    """

    def __init__(self, plans, members: List["CompiledKernel"]):
        self._parts = []
        for plan, compiled in zip(plans, members):
            self._parts.append((
                compiled.generated,
                compiled.lowered.aux_arrays,
                dict(plan.bindings),
                compiled.lowered.output_plan.spec.name,
                plan.out_value,
                plan.internal,
                int(compiled.output_layout.total_size()),
            ))

    def __call__(self, buffers: Dict[str, np.ndarray],
                 aux: Dict[str, np.ndarray]) -> None:
        temps: Dict[str, np.ndarray] = {}
        for (generated, aux_arrays, bindings, out_tensor, out_value,
                internal, size) in self._parts:
            local: Dict[str, np.ndarray] = {}
            for tensor, value in bindings.items():
                buf = temps.get(value)
                local[tensor] = buffers[value] if buf is None else buf
            if internal:
                out = np.zeros(size, dtype=np.float32)
                temps[out_value] = out
            else:
                out = buffers[out_value]
                out.fill(0.0)
            local[out_tensor] = out
            generated(local, aux_arrays)


@dataclass
class CompiledFusedKernel:
    """A compiled fused region: one dispatch covering several kernels.

    ``generated`` is either the single emitted vector kernel
    (``fused=True``) or a :class:`_GroupedFusedKernel` wrapper running
    the members back-to-back (``fused=False``, with the
    :class:`~repro.core.codegen_vector.VectorizeError` reason).  Either
    way the callable takes ``(buffers, aux)`` with buffers keyed by
    *program value* names and zero-fills its own external outputs.
    """

    node: object
    members: List[CompiledKernel]
    generated: GeneratedKernel
    aux_arrays: Dict[str, np.ndarray]
    fused: bool
    fallback_reason: Optional[str] = None

    @property
    def backend_name(self) -> str:
        return self.generated.backend

    @property
    def flops(self) -> int:
        return sum(m.flops for m in self.members)

    @property
    def dense_flops(self) -> int:
        return sum(m.dense_flops for m in self.members)

    def output_layouts(self) -> Dict[str, Optional[RaggedLayout]]:
        """Program value name -> compiled output layout, per member."""
        return {m_node.outputs[0]: compiled.output_layout
                for m_node, compiled in zip(self.node.members, self.members)}


def _per_point_flops(lowered: LoweredKernel) -> int:
    """FLOPs per output point, excluding the reduction-loop trip counts."""
    body = lowered.body
    reds = reductions_in(body)
    if not reds:
        return max(count_flops(body), 1)
    # count_flops multiplies by max reduction extents; strip that factor and
    # re-apply per-governing-index trip counts in estimate_flops instead.
    total = 0
    for red in reds:
        total += count_flops(red.body) + 1
    return max(total, 1)


def _bound_table(lowered: LoweredKernel, table_name: str, outer: int) -> np.ndarray:
    """Fetch a bound table, validating it covers the outer loop extent."""
    table = lowered.aux_arrays[table_name]
    if table.size != outer:
        raise ExecutionError(
            f"bound table {table_name!r} has {table.size} entries but the "
            f"outer loop of kernel {lowered.name!r} has extent {outer}; the "
            "prelude arrays do not match the compiled schedule"
        )
    return table


def estimate_flops(lowered: LoweredKernel) -> int:
    """Total FLOPs of the lowered (ragged, padded-as-scheduled) loop nest."""
    # Evaluate per-governing-index trip counts of all loops.
    # All bound tables are indexed by the outermost governing dimension; for
    # a fused governing loop the prelude's ``ffo`` map recovers it.
    outer = lowered.loops[0] if lowered.loops else None
    if outer is None:
        return 0
    if outer.bound.is_const:
        m = outer.bound.value
    else:
        m = lowered.aux_arrays[outer.bound.table_name].size
    ffo = None
    gov_count = None
    if outer.fusion is not None:
        ffo = lowered.aux_arrays.get(f"{outer.fusion.map_name}_ffo")
        row = lowered.aux_arrays.get(f"{outer.fusion.map_name}_row")
        gov_count = None if row is None else int(row.size)

    def table_for(table_name: str, outer_size: int) -> np.ndarray:
        table = lowered.aux_arrays[table_name]
        # Bound tables are always registered per *original* governing index
        # (materialise_extent), never per fused iteration -- so under a
        # fused outer loop a table of the governing extent must be gathered
        # through ffo even when that extent coincides with the fused one.
        if ffo is not None and gov_count is not None and table.size == gov_count:
            return table[ffo]
        return _bound_table(lowered, table_name, outer_size)

    per_b = np.ones(max(m, 1), dtype=np.float64)
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            per_b *= loop.bound.value
        else:
            per_b *= table_for(loop.bound.table_name, per_b.size)
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            per_b *= bound.value
        else:
            per_b *= table_for(bound.table_name, per_b.size)
    point_flops = _per_point_flops(lowered)
    return int(float(per_b.sum()) * point_flops)


def estimate_dense_flops(lowered: LoweredKernel) -> int:
    """FLOPs a fully padded execution of the same operator would need."""
    if not lowered.loops:
        return 0
    total = 1.0
    outer = lowered.loops[0].bound
    total *= outer.value if outer.is_const else lowered.aux_arrays[outer.table_name].size
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            total *= loop.bound.value
        else:
            total *= float(lowered.aux_arrays[loop.bound.table_name].max())
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            total *= bound.value
        else:
            total *= float(lowered.aux_arrays[bound.table_name].max())
    return int(total * _per_point_flops(lowered))


# ---------------------------------------------------------------------------
# Compilation-cache signatures
# ---------------------------------------------------------------------------


def _extent_signature(ext: Extent) -> Tuple:
    if isinstance(ext, PaddedExtent):
        return ("pad", ext.multiple, _extent_signature(ext.base))
    if isinstance(ext, ConstExtent):
        return ("const", ext.value)
    if isinstance(ext, VarExtent):
        if ext.table is not None:
            return ("table", ext.dep.uid, ext.table.tobytes())
        return ("fn", ext.dep.uid, id(ext._fn))
    return ("extent", id(ext))


def _layout_signature(layout: RaggedLayout) -> Tuple:
    return (
        tuple(d.uid for d in layout.dims),
        tuple(_extent_signature(e) for e in layout.base_extents),
        tuple(sorted((d.uid, p) for d, p in layout.storage_padding.items())),
    )


def schedule_signature(
    schedule: Schedule,
    input_layouts: Optional[Dict[str, RaggedLayout]] = None,
) -> Tuple:
    """A hashable key capturing everything lowering depends on.

    Covers the operator identity and its (possibly table-backed) extents --
    the *input-layout signature*, since the raggedness pattern is embedded
    in the extents -- plus the full mutable schedule state, so mutating and
    re-compiling a schedule cannot produce a stale cache hit.
    """
    op = schedule.operator
    op_sig = (
        id(op),
        tuple(d.uid for d in op.dims),
        tuple(_extent_signature(e) for e in op.loop_extents),
        tuple(_extent_signature(e) for e in op.storage_extents),
    )
    sched_sig = (
        tuple(sorted((d.uid, p) for d, p in schedule.loop_padding.items())),
        tuple(sorted((d.uid, p) for d, p in schedule.storage_padding.items())),
        tuple(sorted(
            (name, tuple(sorted((d.uid, p) for d, p in pads.items())))
            for name, pads in schedule.input_storage_padding.items()
        )),
        tuple((s.original.uid, s.outer.uid, s.inner.uid, s.factor)
              for s in schedule.splits),
        tuple((f.outer.uid, f.inner.uid, f.fused.uid) for f in schedule.fusions),
        tuple((o.uid, i.uid) for o, i in schedule.dim_fusions),
        tuple(sorted((d.uid, a.value) for d, a in schedule.annotations.items())),
        tuple((r.dim.uid, r.policy if isinstance(r.policy, str) else id(r.policy))
              for r in schedule.remaps),
        tuple(d.uid for d in schedule.loop_order),
        schedule.hoist_loads,
    )
    layouts_sig = tuple(sorted(
        (name, _layout_signature(layout))
        for name, layout in (input_layouts or {}).items()
    ))
    return (op_sig, sched_sig, layouts_sig)


class Executor:
    """Compiles schedules and runs the generated kernels.

    Parameters
    ----------
    device:
        Optional :class:`~repro.substrates.device.Device`; when given, each
        execution report includes a modelled device latency for the kernel.
    backend:
        Codegen backend: ``"vector"`` (default -- NumPy-vectorized with
        automatic scalar fallback), ``"scalar"`` (the reference emitter),
        or a :class:`~repro.core.codegen.CodegenBackend` instance.
    cache:
        Whether to cache compiled kernels across :meth:`compile` /
        :meth:`build_and_run` calls (keyed by operator, schedule state and
        input-layout signature).
    cache_capacity:
        Maximum number of cached kernels; least-recently-used entries are
        evicted beyond that, bounding memory in long-running processes.

    Attributes
    ----------
    lower_count:
        Number of actual lower+generate passes performed (cache misses).
    cache_hits / cache_misses:
        Kernel-cache statistics.
    """

    def __init__(self, device: Optional[object] = None,
                 backend: Union[str, CodegenBackend, None] = "vector",
                 cache: bool = True, cache_capacity: int = 256,
                 disk_cache: Union[AOTCache, str, bool, None] = None):
        self.device = device
        self.backend = get_backend(backend)
        self.cache_enabled = cache
        self.cache_capacity = int(cache_capacity)
        if disk_cache is None or disk_cache is False:
            self.disk_cache: Optional[AOTCache] = None
        elif isinstance(disk_cache, AOTCache):
            self.disk_cache = disk_cache
        elif disk_cache is True:
            self.disk_cache = AOTCache()
        else:
            self.disk_cache = AOTCache(disk_cache)
        #: key -> (compiled kernel, pinned schedule, pinned layouts), LRU.
        #: The schedule/layout references keep the objects (and hence the
        #: ids in the key) alive for as long as the entry exists.
        self._kernel_cache: LRUDict[Tuple, Tuple[CompiledKernel, Schedule, object]] = LRUDict(self.cache_capacity)
        #: fused-region cache: canonical region key -> (compiled, node)
        self._fused_cache: LRUDict[Tuple, Tuple[CompiledFusedKernel, object]] = LRUDict(self.cache_capacity)
        #: guards the kernel cache and compile counters: sessions may
        #: compile concurrently (e.g. a serving scheduler overlapping
        #: batches while another thread warms new signatures), and the
        #: LRU's get/put reordering is not atomic on its own.
        self._lock = threading.RLock()
        self.lower_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: kernels rebuilt from / persisted to the AOT disk cache
        self.disk_hits = 0
        self.disk_stores = 0
        #: fused-region compilation counters
        self.fused_regions = 0
        self.fused_emitted = 0
        self.fused_fallbacks = 0
        self.fused_cache_hits = 0
        self.fused_fallback_reasons: Counter = Counter()

    # -- compilation ----------------------------------------------------------

    def compile(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        """Lower and generate code for a scheduled operator (cached).

        Thread-safe: cache lookups, compile-counter updates and the
        lower+generate pass itself are serialised under the executor's
        lock, so concurrent sessions (or a pipelined engine's worker
        threads hitting a shared executor) never race the LRU or compile
        the same kernel twice.
        """
        with self._lock:
            if not self.cache_enabled:
                return self._compile_or_load(schedule, input_layouts)
            key = (self.backend.name,
                   schedule_signature(schedule, input_layouts))
            entry = self._kernel_cache.get(key)
            if entry is not None:
                self.cache_hits += 1
                return entry[0]
            self.cache_misses += 1
            compiled = self._compile_or_load(schedule, input_layouts)
            self._kernel_cache.put(key, (compiled, schedule, input_layouts))
            return compiled

    def _compile_or_load(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        """The disk tier between the in-memory LRU and a real compile.

        A disk hit rebuilds the kernel without touching ``lower_count``
        -- that counter means "lowering passes actually performed", and
        the zero-lowerings-on-warm-start guarantee is asserted on it.
        Uncacheable schedules (callable-backed extents / remap policies)
        skip the tier entirely.
        """
        if self.disk_cache is None:
            return self._compile_uncached(schedule, input_layouts)
        try:
            key = kernel_cache_key(schedule, input_layouts, self.backend.name)
        except Uncacheable:
            return self._compile_uncached(schedule, input_layouts)
        loaded = self.disk_cache.load(key)
        if loaded is not None:
            lowered, generated = loaded
            self.disk_hits += 1
            return CompiledKernel(lowered=lowered, generated=generated)
        compiled = self._compile_uncached(schedule, input_layouts)
        if self.disk_cache.store(key, compiled.lowered, compiled.generated):
            self.disk_stores += 1
        return compiled

    def _compile_uncached(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        self.lower_count += 1
        lowered = lower_schedule(schedule, input_layouts=input_layouts)
        generated = self.backend.generate(lowered)
        return CompiledKernel(lowered=lowered, generated=generated)

    # -- fused regions ---------------------------------------------------------

    @staticmethod
    def _fused_value_keys(node) -> Dict[str, str]:
        """Canonical buffer keys for a fused region's program values.

        Region inputs become ``i0, i1, ...`` (positional in
        ``node.inputs``), external outputs ``o0, o1, ...`` and internal
        values ``x0, x1, ...``.  Both the emitted kernel's ``buffers``
        dict keys and the fused-cache key are built from these, so
        structurally equal regions under different value names (the same
        SDPA chain in every encoder layer) share one compiled kernel --
        callers just hand in buffers keyed the same canonical way.
        """
        keys: Dict[str, str] = {}
        for j, v in enumerate(node.inputs):
            keys[v] = f"i{j}"
        for j, v in enumerate(node.outputs):
            keys[v] = f"o{j}"
        for j, s in enumerate(node.internal_specs):
            keys[s.name] = f"x{j}"
        return keys

    def _fused_key(self, node) -> Tuple:
        """Cache key for a fused region (canonical value names)."""
        keys = self._fused_value_keys(node)
        parts = []
        for m in node.members:
            sig = schedule_signature(m.schedule, m.input_layouts)
            bindings = tuple((t, keys[v])
                             for t, v in sorted(m.bindings.items()))
            parts.append((sig, bindings, keys[m.outputs[0]]))
        return ("fused", self.backend.name, tuple(parts))

    def compile_fused(self, node) -> CompiledFusedKernel:
        """Compile a :class:`~repro.core.fusion.FusedKernelNode` (cached).

        Members compile through :meth:`compile` (hitting the LRU and the
        disk tier as usual); the region is then emitted as one vector
        kernel, or -- when any member resists vector emission or an
        alias read would leave its producer's store bounds -- wrapped in
        the bit-identical grouped dispatch.  Neither path performs any
        extra lowering, so fused compilation never increments
        ``lower_count`` beyond its members.
        """
        with self._lock:
            key = self._fused_key(node)
            if self.cache_enabled:
                entry = self._fused_cache.get(key)
                if entry is not None:
                    self.fused_cache_hits += 1
                    return entry[0]
            compiled = self._compile_fused_uncached(node)
            if self.cache_enabled:
                self._fused_cache.put(key, (compiled, node))
            return compiled

    def _compile_fused_uncached(self, node) -> CompiledFusedKernel:
        members = [self.compile(m.schedule, input_layouts=m.input_layouts)
                   for m in node.members]
        internal = {s.name for s in node.internal_specs}
        keys = self._fused_value_keys(node)
        self.fused_regions += 1
        plans = [
            FusedMemberPlan(
                kernel=compiled.lowered,
                bindings={t: keys[v] for t, v in m.bindings.items()},
                out_value=keys[m.outputs[0]],
                internal=m.outputs[0] in internal,
            )
            for m, compiled in zip(node.members, members)
        ]
        reason: Optional[str] = None
        try:
            if self.backend.name != "vector":
                raise VectorizeError(
                    f"backend {self.backend.name!r} has no fused emitter")
            for compiled in members:
                if compiled.backend_name != "vector":
                    raise VectorizeError(
                        f"member {compiled.lowered.name!r} fell back to "
                        f"scalar: {compiled.fallback_reason}")
            generated = generate_fused_kernel(node.name, plans)
            self.fused_emitted += 1
        except VectorizeError as err:
            reason = str(err)
            self.fused_fallbacks += 1
            self.fused_fallback_reasons[reason] += 1
            generated = GeneratedKernel(
                name=node.name,
                source=f"# grouped fused dispatch (fallback: {reason})",
                fn=_GroupedFusedKernel(plans, members),
                backend="grouped",
                fallback_reason=reason)
        aux: Dict[str, np.ndarray] = {}
        for i, compiled in enumerate(members):
            for k, v in compiled.lowered.aux_arrays.items():
                aux[f"m{i}/{k}"] = v
        return CompiledFusedKernel(
            node=node, members=members, generated=generated,
            aux_arrays=aux, fused=reason is None, fallback_reason=reason)

    def clear_cache(self) -> None:
        """Drop all cached kernels (counters are left untouched)."""
        with self._lock:
            self._kernel_cache.clear()
            self._fused_cache.clear()

    def reset_stats(self) -> None:
        """Zero the lowering / cache counters and the backend's codegen
        (vectorized vs fallback) counters; cached kernels are kept."""
        with self._lock:
            self.lower_count = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.disk_hits = 0
            self.disk_stores = 0
            self.fused_regions = 0
            self.fused_emitted = 0
            self.fused_fallbacks = 0
            self.fused_cache_hits = 0
            self.fused_fallback_reasons.clear()
            reset = getattr(self.backend, "reset_stats", None)
            if reset is not None:
                reset()

    def reset(self) -> None:
        """Return the executor to its freshly-constructed state: drop the
        kernel cache *and* zero every counter, so a replayed workload
        reproduces the original compile/statistics trajectory exactly."""
        self.clear_cache()
        self.reset_stats()

    # -- codegen observability --------------------------------------------------

    @property
    def vectorized_count(self) -> int:
        """Kernels the (vector) backend emitted on the fast path."""
        return int(getattr(self.backend, "vectorized_count", 0))

    @property
    def fallback_count(self) -> int:
        """Kernels the (vector) backend handed to the scalar fallback."""
        return int(getattr(self.backend, "fallback_count", 0))

    def codegen_stats(self) -> Dict[str, object]:
        """Vectorize successes vs scalar fallbacks, with reason strings.

        Extends the ``lower_count`` / ``cache_hits`` statistics: each actual
        lower+generate pass either vectorizes or falls back, and every
        fallback records the :class:`~repro.core.codegen_vector.VectorizeError`
        message that caused it.  Scalar-only backends report zero for both
        counters and an empty reason map.
        """
        return {
            "backend": self.backend.name,
            "lower_count": self.lower_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "vectorized": self.vectorized_count,
            "fallbacks": self.fallback_count,
            "fallback_reasons": dict(
                getattr(self.backend, "fallback_reasons", {})),
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_cache": (self.disk_cache.stats()
                           if self.disk_cache is not None else None),
            "fused_regions": self.fused_regions,
            "fused_emitted": self.fused_emitted,
            "fused_fallbacks": self.fused_fallbacks,
            "fused_cache_hits": self.fused_cache_hits,
            "fused_fallback_reasons": dict(self.fused_fallback_reasons),
            "schedule_memos": self._schedule_memo_stats(),
        }

    @staticmethod
    def _schedule_memo_stats() -> Dict[str, Dict[str, int]]:
        """Hit/size/cap statistics of every registered bounded schedule
        memo (the ops-layer ``lru_cache`` builders keyed by length-table
        bytes).  The caps bound memory in long-running processes; the
        sizes/hits here let benchmarks confirm the memos -- and hence the
        executor's kernel cache keyed on schedule identity -- are working."""
        try:
            from repro.core.tunespace import schedule_memo_stats
            return schedule_memo_stats()
        except Exception:
            return {}

    # -- execution --------------------------------------------------------------

    def run(
        self,
        compiled: CompiledKernel,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        output: Optional[RaggedTensor] = None,
    ) -> tuple:
        """Execute a compiled kernel.

        Parameters
        ----------
        compiled:
            The kernel returned by :meth:`compile`.
        inputs:
            Mapping from input-tensor name to a :class:`RaggedTensor` (whose
            layout must match the compiled plan's total size) or a flat /
            dense NumPy array.
        output:
            Optional pre-allocated output tensor; allocated if omitted.

        Returns
        -------
        (output, report):
            The output ragged tensor and an :class:`ExecutionReport`.
        """
        lowered = compiled.lowered
        buffers: Dict[str, np.ndarray] = {}
        for name, plan in lowered.input_plans.items():
            if name not in inputs:
                raise ExecutionError(f"missing input tensor {name!r}")
            value = inputs[name]
            if isinstance(value, RaggedTensor):
                flat = value.data
            else:
                flat = np.asarray(value, dtype=np.float32).reshape(-1)
            expected = plan.layout.total_size()
            if flat.size != expected:
                raise ExecutionError(
                    f"input {name!r} has {flat.size} elements but the "
                    f"compiled layout requires {expected}"
                )
            buffers[name] = flat
        if output is None:
            output = RaggedTensor.zeros(compiled.output_layout)
        buffers[lowered.output_plan.spec.name] = output.data

        t0 = time.perf_counter()
        compiled.generated(buffers, lowered.aux_arrays)
        wall = time.perf_counter() - t0

        flops = compiled.flops
        dense_flops = compiled.dense_flops
        device_latency = None
        if self.device is not None:
            bytes_moved = sum(b.nbytes for b in buffers.values())
            device_latency = self.device.kernel_time(flops=flops,
                                                     bytes_moved=bytes_moved)
        report = ExecutionReport(
            wall_time_s=wall,
            flops=flops,
            dense_flops=dense_flops,
            device_latency_s=device_latency,
        )
        return output, report

    # -- convenience -------------------------------------------------------------

    def build_and_run(
        self,
        schedule: Schedule,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> tuple:
        """Compile and immediately execute a scheduled operator."""
        compiled = self.compile(schedule, input_layouts=input_layouts)
        return self.run(compiled, inputs)


#: Process-wide default executors, one per backend name.  The ops-layer
#: convenience wrappers (``vgemm_compiled`` etc.) route through these when
#: no explicit executor is passed, so their kernel caches persist across
#: calls instead of dying with a per-call Executor.
_SHARED_EXECUTORS: Dict[str, Executor] = {}


def shared_executor(backend: str = "vector") -> Executor:
    """The process-wide default :class:`Executor` for the given backend."""
    executor = _SHARED_EXECUTORS.get(backend)
    if executor is None:
        executor = Executor(backend=backend)
        _SHARED_EXECUTORS[backend] = executor
    return executor
