"""The executor: compiling and running scheduled ragged operators.

The executor glues the pipeline of paper Figure 4 together:

1. lower the scheduled operator (:mod:`repro.core.lowering`);
2. generate the kernel (:mod:`repro.core.codegen`);
3. at run time, run the *prelude* (already materialised as the lowered
   kernel's auxiliary arrays -- bound tables, fusion maps, storage offsets,
   remap permutations) and hand the kernel flat buffers for every tensor;
4. report execution statistics: measured host wall time, the analytically
   counted FLOPs of the ragged loop nest, the FLOPs a fully padded
   execution would have needed, and (if a simulated device is attached)
   the modelled device latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core.codegen import GeneratedKernel, generate
from repro.core.errors import ExecutionError
from repro.core.ir import count_flops, reductions_in
from repro.core.lowering import LoweredKernel, lower_schedule
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


@dataclass
class ExecutionReport:
    """Statistics of one kernel execution."""

    wall_time_s: float
    flops: int
    dense_flops: int
    device_latency_s: Optional[float] = None

    @property
    def padding_waste(self) -> float:
        """Ratio of fully padded to ragged FLOPs (>= 1)."""
        if self.flops == 0:
            return 1.0
        return self.dense_flops / self.flops


@dataclass
class CompiledKernel:
    """A lowered, generated, ready-to-run kernel."""

    lowered: LoweredKernel
    generated: GeneratedKernel

    @property
    def source(self) -> str:
        return self.generated.source

    @property
    def output_layout(self) -> RaggedLayout:
        return self.lowered.output_plan.layout


def _per_point_flops(lowered: LoweredKernel) -> int:
    """FLOPs per output point, excluding the reduction-loop trip counts."""
    body = lowered.body
    reds = reductions_in(body)
    if not reds:
        return max(count_flops(body), 1)
    # count_flops multiplies by max reduction extents; strip that factor and
    # re-apply per-governing-index trip counts in estimate_flops instead.
    total = 0
    for red in reds:
        total += count_flops(red.body) + 1
    return max(total, 1)


def estimate_flops(lowered: LoweredKernel) -> int:
    """Total FLOPs of the lowered (ragged, padded-as-scheduled) loop nest."""
    gov_counts = None
    # Evaluate per-governing-index trip counts of all loops.
    # All bound tables are indexed by the outermost governing dimension.
    outer_bound = lowered.loops[0].bound if lowered.loops else None
    if outer_bound is None:
        return 0
    if outer_bound.is_const:
        m = outer_bound.value
    else:
        m = lowered.aux_arrays[outer_bound.table_name].size
    per_b = np.ones(max(m, 1), dtype=np.float64)
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            per_b *= loop.bound.value
        else:
            table = lowered.aux_arrays[loop.bound.table_name]
            per_b *= table[: per_b.size]
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            per_b *= bound.value
        else:
            table = lowered.aux_arrays[bound.table_name]
            per_b *= table[: per_b.size]
    point_flops = _per_point_flops(lowered)
    if lowered.loops and not lowered.loops[0].bound.is_const:
        total_points = float(per_b.sum())
    else:
        total_points = float(per_b.sum())
    return int(total_points * point_flops)


def estimate_dense_flops(lowered: LoweredKernel) -> int:
    """FLOPs a fully padded execution of the same operator would need."""
    if not lowered.loops:
        return 0
    total = 1.0
    outer = lowered.loops[0].bound
    total *= outer.value if outer.is_const else lowered.aux_arrays[outer.table_name].size
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            total *= loop.bound.value
        else:
            total *= float(lowered.aux_arrays[loop.bound.table_name].max())
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            total *= bound.value
        else:
            total *= float(lowered.aux_arrays[bound.table_name].max())
    return int(total * _per_point_flops(lowered))


class Executor:
    """Compiles schedules and runs the generated kernels.

    Parameters
    ----------
    device:
        Optional :class:`~repro.substrates.device.Device`; when given, each
        execution report includes a modelled device latency for the kernel.
    """

    def __init__(self, device: Optional[object] = None):
        self.device = device

    # -- compilation ----------------------------------------------------------

    def compile(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        """Lower and generate code for a scheduled operator."""
        lowered = lower_schedule(schedule, input_layouts=input_layouts)
        generated = generate(lowered)
        return CompiledKernel(lowered=lowered, generated=generated)

    # -- execution --------------------------------------------------------------

    def run(
        self,
        compiled: CompiledKernel,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        output: Optional[RaggedTensor] = None,
    ) -> tuple:
        """Execute a compiled kernel.

        Parameters
        ----------
        compiled:
            The kernel returned by :meth:`compile`.
        inputs:
            Mapping from input-tensor name to a :class:`RaggedTensor` (whose
            layout must match the compiled plan's total size) or a flat /
            dense NumPy array.
        output:
            Optional pre-allocated output tensor; allocated if omitted.

        Returns
        -------
        (output, report):
            The output ragged tensor and an :class:`ExecutionReport`.
        """
        lowered = compiled.lowered
        buffers: Dict[str, np.ndarray] = {}
        for name, plan in lowered.input_plans.items():
            if name not in inputs:
                raise ExecutionError(f"missing input tensor {name!r}")
            value = inputs[name]
            if isinstance(value, RaggedTensor):
                flat = value.data
            else:
                flat = np.asarray(value, dtype=np.float32).reshape(-1)
            expected = plan.layout.total_size()
            if flat.size != expected:
                raise ExecutionError(
                    f"input {name!r} has {flat.size} elements but the "
                    f"compiled layout requires {expected}"
                )
            buffers[name] = flat
        if output is None:
            output = RaggedTensor.zeros(compiled.output_layout)
        buffers[lowered.output_plan.spec.name] = output.data

        t0 = time.perf_counter()
        compiled.generated(buffers, lowered.aux_arrays)
        wall = time.perf_counter() - t0

        flops = estimate_flops(lowered)
        dense_flops = estimate_dense_flops(lowered)
        device_latency = None
        if self.device is not None:
            bytes_moved = sum(b.nbytes for b in buffers.values())
            device_latency = self.device.kernel_time(flops=flops,
                                                     bytes_moved=bytes_moved)
        report = ExecutionReport(
            wall_time_s=wall,
            flops=flops,
            dense_flops=dense_flops,
            device_latency_s=device_latency,
        )
        return output, report

    # -- convenience -------------------------------------------------------------

    def build_and_run(
        self,
        schedule: Schedule,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> tuple:
        """Compile and immediately execute a scheduled operator."""
        compiled = self.compile(schedule, input_layouts=input_layouts)
        return self.run(compiled, inputs)
