"""The executor: compiling and running scheduled ragged operators.

The executor glues the pipeline of paper Figure 4 together:

1. lower the scheduled operator (:mod:`repro.core.lowering`);
2. generate the kernel through a codegen *backend* (the scalar reference
   emitter of :mod:`repro.core.codegen` or the vectorized NumPy emitter of
   :mod:`repro.core.codegen_vector`);
3. at run time, run the *prelude* (already materialised as the lowered
   kernel's auxiliary arrays -- bound tables, fusion maps, storage offsets,
   remap permutations) and hand the kernel flat buffers for every tensor;
4. report execution statistics: measured host wall time, the analytically
   counted FLOPs of the ragged loop nest, the FLOPs a fully padded
   execution would have needed, and (if a simulated device is attached)
   the modelled device latency.

Compilation is cached: a :class:`CompiledKernel` is keyed by the
(operator, schedule state, input-layout signature) triple, so repeated
``build_and_run`` calls with an unchanged schedule skip re-lowering and
re-``exec`` entirely.  ``Executor.lower_count`` / ``cache_hits`` /
``cache_misses`` expose the cache behaviour to benchmarks and tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.cache import LRUDict
from repro.core.codegen import CodegenBackend, GeneratedKernel, get_backend
from repro.core.errors import ExecutionError
from repro.core.extents import ConstExtent, Extent, PaddedExtent, VarExtent
from repro.core.ir import count_flops, reductions_in
from repro.core.lowering import LoweredKernel, lower_schedule
from repro.core.ragged_tensor import RaggedTensor
from repro.core.schedule import Schedule
from repro.core.storage import RaggedLayout


@dataclass
class ExecutionReport:
    """Statistics of one kernel execution."""

    wall_time_s: float
    flops: int
    dense_flops: int
    device_latency_s: Optional[float] = None

    @property
    def padding_waste(self) -> float:
        """Ratio of fully padded to ragged FLOPs (>= 1)."""
        if self.flops == 0:
            return 1.0
        return self.dense_flops / self.flops


@dataclass
class CompiledKernel:
    """A lowered, generated, ready-to-run kernel.

    The FLOP estimates are pure functions of the lowered kernel, so they
    are computed once on first access and memoized -- ``run`` no longer
    re-walks the loop nest on every execution.
    """

    lowered: LoweredKernel
    generated: GeneratedKernel
    _flops: Optional[int] = field(default=None, repr=False)
    _dense_flops: Optional[int] = field(default=None, repr=False)

    @property
    def source(self) -> str:
        return self.generated.source

    @property
    def backend_name(self) -> str:
        """Which backend emitted the kernel (``"scalar"`` or ``"vector"``)."""
        return self.generated.backend

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why a vector-backend request fell back to scalar (else ``None``)."""
        return self.generated.fallback_reason

    @property
    def output_layout(self) -> RaggedLayout:
        return self.lowered.output_plan.layout

    @property
    def flops(self) -> int:
        if self._flops is None:
            self._flops = estimate_flops(self.lowered)
        return self._flops

    @property
    def dense_flops(self) -> int:
        if self._dense_flops is None:
            self._dense_flops = estimate_dense_flops(self.lowered)
        return self._dense_flops


def _per_point_flops(lowered: LoweredKernel) -> int:
    """FLOPs per output point, excluding the reduction-loop trip counts."""
    body = lowered.body
    reds = reductions_in(body)
    if not reds:
        return max(count_flops(body), 1)
    # count_flops multiplies by max reduction extents; strip that factor and
    # re-apply per-governing-index trip counts in estimate_flops instead.
    total = 0
    for red in reds:
        total += count_flops(red.body) + 1
    return max(total, 1)


def _bound_table(lowered: LoweredKernel, table_name: str, outer: int) -> np.ndarray:
    """Fetch a bound table, validating it covers the outer loop extent."""
    table = lowered.aux_arrays[table_name]
    if table.size != outer:
        raise ExecutionError(
            f"bound table {table_name!r} has {table.size} entries but the "
            f"outer loop of kernel {lowered.name!r} has extent {outer}; the "
            "prelude arrays do not match the compiled schedule"
        )
    return table


def estimate_flops(lowered: LoweredKernel) -> int:
    """Total FLOPs of the lowered (ragged, padded-as-scheduled) loop nest."""
    # Evaluate per-governing-index trip counts of all loops.
    # All bound tables are indexed by the outermost governing dimension; for
    # a fused governing loop the prelude's ``ffo`` map recovers it.
    outer = lowered.loops[0] if lowered.loops else None
    if outer is None:
        return 0
    if outer.bound.is_const:
        m = outer.bound.value
    else:
        m = lowered.aux_arrays[outer.bound.table_name].size
    ffo = None
    gov_count = None
    if outer.fusion is not None:
        ffo = lowered.aux_arrays.get(f"{outer.fusion.map_name}_ffo")
        row = lowered.aux_arrays.get(f"{outer.fusion.map_name}_row")
        gov_count = None if row is None else int(row.size)

    def table_for(table_name: str, outer_size: int) -> np.ndarray:
        table = lowered.aux_arrays[table_name]
        # Bound tables are always registered per *original* governing index
        # (materialise_extent), never per fused iteration -- so under a
        # fused outer loop a table of the governing extent must be gathered
        # through ffo even when that extent coincides with the fused one.
        if ffo is not None and gov_count is not None and table.size == gov_count:
            return table[ffo]
        return _bound_table(lowered, table_name, outer_size)

    per_b = np.ones(max(m, 1), dtype=np.float64)
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            per_b *= loop.bound.value
        else:
            per_b *= table_for(loop.bound.table_name, per_b.size)
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            per_b *= bound.value
        else:
            per_b *= table_for(bound.table_name, per_b.size)
    point_flops = _per_point_flops(lowered)
    return int(float(per_b.sum()) * point_flops)


def estimate_dense_flops(lowered: LoweredKernel) -> int:
    """FLOPs a fully padded execution of the same operator would need."""
    if not lowered.loops:
        return 0
    total = 1.0
    outer = lowered.loops[0].bound
    total *= outer.value if outer.is_const else lowered.aux_arrays[outer.table_name].size
    for loop in lowered.loops[1:]:
        if loop.bound.is_const:
            total *= loop.bound.value
        else:
            total *= float(lowered.aux_arrays[loop.bound.table_name].max())
    for bound in lowered.reduction_bounds.values():
        if bound.is_const:
            total *= bound.value
        else:
            total *= float(lowered.aux_arrays[bound.table_name].max())
    return int(total * _per_point_flops(lowered))


# ---------------------------------------------------------------------------
# Compilation-cache signatures
# ---------------------------------------------------------------------------


def _extent_signature(ext: Extent) -> Tuple:
    if isinstance(ext, PaddedExtent):
        return ("pad", ext.multiple, _extent_signature(ext.base))
    if isinstance(ext, ConstExtent):
        return ("const", ext.value)
    if isinstance(ext, VarExtent):
        if ext.table is not None:
            return ("table", ext.dep.uid, ext.table.tobytes())
        return ("fn", ext.dep.uid, id(ext._fn))
    return ("extent", id(ext))


def _layout_signature(layout: RaggedLayout) -> Tuple:
    return (
        tuple(d.uid for d in layout.dims),
        tuple(_extent_signature(e) for e in layout.base_extents),
        tuple(sorted((d.uid, p) for d, p in layout.storage_padding.items())),
    )


def schedule_signature(
    schedule: Schedule,
    input_layouts: Optional[Dict[str, RaggedLayout]] = None,
) -> Tuple:
    """A hashable key capturing everything lowering depends on.

    Covers the operator identity and its (possibly table-backed) extents --
    the *input-layout signature*, since the raggedness pattern is embedded
    in the extents -- plus the full mutable schedule state, so mutating and
    re-compiling a schedule cannot produce a stale cache hit.
    """
    op = schedule.operator
    op_sig = (
        id(op),
        tuple(d.uid for d in op.dims),
        tuple(_extent_signature(e) for e in op.loop_extents),
        tuple(_extent_signature(e) for e in op.storage_extents),
    )
    sched_sig = (
        tuple(sorted((d.uid, p) for d, p in schedule.loop_padding.items())),
        tuple(sorted((d.uid, p) for d, p in schedule.storage_padding.items())),
        tuple(sorted(
            (name, tuple(sorted((d.uid, p) for d, p in pads.items())))
            for name, pads in schedule.input_storage_padding.items()
        )),
        tuple((s.original.uid, s.outer.uid, s.inner.uid, s.factor)
              for s in schedule.splits),
        tuple((f.outer.uid, f.inner.uid, f.fused.uid) for f in schedule.fusions),
        tuple((o.uid, i.uid) for o, i in schedule.dim_fusions),
        tuple(sorted((d.uid, a.value) for d, a in schedule.annotations.items())),
        tuple((r.dim.uid, r.policy if isinstance(r.policy, str) else id(r.policy))
              for r in schedule.remaps),
        tuple(d.uid for d in schedule.loop_order),
        schedule.hoist_loads,
    )
    layouts_sig = tuple(sorted(
        (name, _layout_signature(layout))
        for name, layout in (input_layouts or {}).items()
    ))
    return (op_sig, sched_sig, layouts_sig)


class Executor:
    """Compiles schedules and runs the generated kernels.

    Parameters
    ----------
    device:
        Optional :class:`~repro.substrates.device.Device`; when given, each
        execution report includes a modelled device latency for the kernel.
    backend:
        Codegen backend: ``"vector"`` (default -- NumPy-vectorized with
        automatic scalar fallback), ``"scalar"`` (the reference emitter),
        or a :class:`~repro.core.codegen.CodegenBackend` instance.
    cache:
        Whether to cache compiled kernels across :meth:`compile` /
        :meth:`build_and_run` calls (keyed by operator, schedule state and
        input-layout signature).
    cache_capacity:
        Maximum number of cached kernels; least-recently-used entries are
        evicted beyond that, bounding memory in long-running processes.

    Attributes
    ----------
    lower_count:
        Number of actual lower+generate passes performed (cache misses).
    cache_hits / cache_misses:
        Kernel-cache statistics.
    """

    def __init__(self, device: Optional[object] = None,
                 backend: Union[str, CodegenBackend, None] = "vector",
                 cache: bool = True, cache_capacity: int = 256):
        self.device = device
        self.backend = get_backend(backend)
        self.cache_enabled = cache
        self.cache_capacity = int(cache_capacity)
        #: key -> (compiled kernel, pinned schedule, pinned layouts), LRU.
        #: The schedule/layout references keep the objects (and hence the
        #: ids in the key) alive for as long as the entry exists.
        self._kernel_cache: LRUDict[Tuple, Tuple[CompiledKernel, Schedule, object]] = LRUDict(self.cache_capacity)
        #: guards the kernel cache and compile counters: sessions may
        #: compile concurrently (e.g. a serving scheduler overlapping
        #: batches while another thread warms new signatures), and the
        #: LRU's get/put reordering is not atomic on its own.
        self._lock = threading.RLock()
        self.lower_count = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- compilation ----------------------------------------------------------

    def compile(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        """Lower and generate code for a scheduled operator (cached).

        Thread-safe: cache lookups, compile-counter updates and the
        lower+generate pass itself are serialised under the executor's
        lock, so concurrent sessions (or a pipelined engine's worker
        threads hitting a shared executor) never race the LRU or compile
        the same kernel twice.
        """
        with self._lock:
            if not self.cache_enabled:
                return self._compile_uncached(schedule, input_layouts)
            key = (self.backend.name,
                   schedule_signature(schedule, input_layouts))
            entry = self._kernel_cache.get(key)
            if entry is not None:
                self.cache_hits += 1
                return entry[0]
            self.cache_misses += 1
            compiled = self._compile_uncached(schedule, input_layouts)
            self._kernel_cache.put(key, (compiled, schedule, input_layouts))
            return compiled

    def _compile_uncached(
        self,
        schedule: Schedule,
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> CompiledKernel:
        self.lower_count += 1
        lowered = lower_schedule(schedule, input_layouts=input_layouts)
        generated = self.backend.generate(lowered)
        return CompiledKernel(lowered=lowered, generated=generated)

    def clear_cache(self) -> None:
        """Drop all cached kernels (counters are left untouched)."""
        with self._lock:
            self._kernel_cache.clear()

    def reset_stats(self) -> None:
        """Zero the lowering / cache counters and the backend's codegen
        (vectorized vs fallback) counters; cached kernels are kept."""
        with self._lock:
            self.lower_count = 0
            self.cache_hits = 0
            self.cache_misses = 0
            reset = getattr(self.backend, "reset_stats", None)
            if reset is not None:
                reset()

    def reset(self) -> None:
        """Return the executor to its freshly-constructed state: drop the
        kernel cache *and* zero every counter, so a replayed workload
        reproduces the original compile/statistics trajectory exactly."""
        self.clear_cache()
        self.reset_stats()

    # -- codegen observability --------------------------------------------------

    @property
    def vectorized_count(self) -> int:
        """Kernels the (vector) backend emitted on the fast path."""
        return int(getattr(self.backend, "vectorized_count", 0))

    @property
    def fallback_count(self) -> int:
        """Kernels the (vector) backend handed to the scalar fallback."""
        return int(getattr(self.backend, "fallback_count", 0))

    def codegen_stats(self) -> Dict[str, object]:
        """Vectorize successes vs scalar fallbacks, with reason strings.

        Extends the ``lower_count`` / ``cache_hits`` statistics: each actual
        lower+generate pass either vectorizes or falls back, and every
        fallback records the :class:`~repro.core.codegen_vector.VectorizeError`
        message that caused it.  Scalar-only backends report zero for both
        counters and an empty reason map.
        """
        return {
            "backend": self.backend.name,
            "lower_count": self.lower_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "vectorized": self.vectorized_count,
            "fallbacks": self.fallback_count,
            "fallback_reasons": dict(
                getattr(self.backend, "fallback_reasons", {})),
        }

    # -- execution --------------------------------------------------------------

    def run(
        self,
        compiled: CompiledKernel,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        output: Optional[RaggedTensor] = None,
    ) -> tuple:
        """Execute a compiled kernel.

        Parameters
        ----------
        compiled:
            The kernel returned by :meth:`compile`.
        inputs:
            Mapping from input-tensor name to a :class:`RaggedTensor` (whose
            layout must match the compiled plan's total size) or a flat /
            dense NumPy array.
        output:
            Optional pre-allocated output tensor; allocated if omitted.

        Returns
        -------
        (output, report):
            The output ragged tensor and an :class:`ExecutionReport`.
        """
        lowered = compiled.lowered
        buffers: Dict[str, np.ndarray] = {}
        for name, plan in lowered.input_plans.items():
            if name not in inputs:
                raise ExecutionError(f"missing input tensor {name!r}")
            value = inputs[name]
            if isinstance(value, RaggedTensor):
                flat = value.data
            else:
                flat = np.asarray(value, dtype=np.float32).reshape(-1)
            expected = plan.layout.total_size()
            if flat.size != expected:
                raise ExecutionError(
                    f"input {name!r} has {flat.size} elements but the "
                    f"compiled layout requires {expected}"
                )
            buffers[name] = flat
        if output is None:
            output = RaggedTensor.zeros(compiled.output_layout)
        buffers[lowered.output_plan.spec.name] = output.data

        t0 = time.perf_counter()
        compiled.generated(buffers, lowered.aux_arrays)
        wall = time.perf_counter() - t0

        flops = compiled.flops
        dense_flops = compiled.dense_flops
        device_latency = None
        if self.device is not None:
            bytes_moved = sum(b.nbytes for b in buffers.values())
            device_latency = self.device.kernel_time(flops=flops,
                                                     bytes_moved=bytes_moved)
        report = ExecutionReport(
            wall_time_s=wall,
            flops=flops,
            dense_flops=dense_flops,
            device_latency_s=device_latency,
        )
        return output, report

    # -- convenience -------------------------------------------------------------

    def build_and_run(
        self,
        schedule: Schedule,
        inputs: Dict[str, Union[RaggedTensor, np.ndarray]],
        input_layouts: Optional[Dict[str, RaggedLayout]] = None,
    ) -> tuple:
        """Compile and immediately execute a scheduled operator."""
        compiled = self.compile(schedule, input_layouts=input_layouts)
        return self.run(compiled, inputs)


#: Process-wide default executors, one per backend name.  The ops-layer
#: convenience wrappers (``vgemm_compiled`` etc.) route through these when
#: no explicit executor is passed, so their kernel caches persist across
#: calls instead of dying with a per-call Executor.
_SHARED_EXECUTORS: Dict[str, Executor] = {}


def shared_executor(backend: str = "vector") -> Executor:
    """The process-wide default :class:`Executor` for the given backend."""
    executor = _SHARED_EXECUTORS.get(backend)
    if executor is None:
        executor = Executor(backend=backend)
        _SHARED_EXECUTORS[backend] = executor
    return executor
