"""Tunable schedule spaces.

Every schedule in the ``ops/`` modules was hand-picked: the split
factors, thread remaps and fusion choices are frozen constants chosen
once on one machine.  The paper's premise cuts the other way -- the best
schedule depends on the *raggedness* of the data (how skewed the
lengths are, how many instances, how much total work), which is known
before execution.  This module gives each op a declarative, enumerable
description of its schedule knobs so a search driver
(:mod:`repro.core.autotune`) can explore them, and a process-global
*policy* through which tuned winners (loaded from a
:class:`repro.core.scheduledb.ScheduleDB`) reach the op-level node
builders with zero search on the hot path.

Three pieces live here:

* :class:`TuneParam` / :class:`TunePoint` / :class:`TuneSpace` -- the
  space description.  A ``TunePoint`` serialises to plain JSON
  (``to_json`` / ``from_json``, after AMOS's ``Params``) so winners can
  be persisted per ``(op, raggedness bucket, backend)``.  The current
  hand-picked schedule is always the space's *default point*, so the
  default is a guaranteed-valid member of every space.
* the **op registry** -- op modules call :func:`register_tune_op` with
  callbacks to build the space, build a concrete :class:`Schedule` for
  a point, describe a point as a cost-model workload for analytical
  ranking, and generate measurement inputs.
* the **schedule policy** -- :func:`activate_policy` installs a
  process-global (db, backend) lookup; node builders consult
  :func:`applied_point` and fall back to the default schedule when no
  tuned point exists.  ``Session(tune=...)`` and ``ProcessPoolEngine``
  workers both activate it, so a fresh worker starts tuned.

The module also hosts the registry of the lens-bytes-keyed schedule
memos (``@lru_cache`` in the ops modules): each memo registers itself
via :func:`register_schedule_memo` and
:func:`schedule_memo_stats` exposes hit/size/cap per memo through
``Executor.codegen_stats()`` -- the caps bound what diverse production
traffic can pin in memory.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Raggedness signature buckets
# ---------------------------------------------------------------------------


def _ceil_pow2(n: int) -> int:
    n = int(n)
    if n <= 1:
        return max(n, 0) if n >= 0 else 0
    return 1 << (n - 1).bit_length()


def raggedness_bucket(lengths: Sequence[int]) -> Tuple[int, int, int]:
    """Bucket a raggedness signature to ``(batch, max_len, total_tokens)``,
    each rounded up to a power of two.

    Tuned schedules generalise across signatures with similar shape, so
    the schedule DB keys on this bucket rather than the exact lengths --
    one tuning run covers every signature that lands in the bucket.
    """
    lens = [int(x) for x in lengths]
    if not lens:
        return (0, 0, 0)
    return (_ceil_pow2(len(lens)), _ceil_pow2(max(lens)),
            _ceil_pow2(sum(lens)))


# ---------------------------------------------------------------------------
# The space description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TuneParam:
    """One knob: a name and its finite choice set."""

    name: str
    choices: Tuple[object, ...]

    def __post_init__(self):
        if not self.choices:
            raise ValueError(f"tune param {self.name!r} has no choices")


class TunePoint(Mapping):
    """An immutable assignment of every param, JSON round-trippable."""

    def __init__(self, values: Mapping[str, object]):
        self._values = dict(values)
        self._key = tuple(sorted(self._values.items()))

    def __getitem__(self, name: str) -> object:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def key(self) -> Tuple:
        return self._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other) -> bool:
        return isinstance(other, TunePoint) and self._key == other._key

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._key)
        return f"TunePoint({inner})"

    def to_json(self) -> Dict[str, object]:
        return dict(self._values)

    @classmethod
    def from_json(cls, obj: Mapping[str, object]) -> "TunePoint":
        return cls(obj)

    def replace(self, **updates) -> "TunePoint":
        values = dict(self._values)
        values.update(updates)
        return TunePoint(values)


class TuneSpace:
    """An enumerable/sampleable cartesian space of :class:`TuneParam`
    choices with a guaranteed-valid default point (the hand-picked
    schedule the ops module ships today)."""

    def __init__(self, op: str, params: Sequence[TuneParam],
                 default: TunePoint):
        self.op = op
        self.params = tuple(params)
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tune params in space for {op!r}")
        if not self.contains(default):
            raise ValueError(
                f"default point {default!r} is not a member of the "
                f"space for {op!r}")
        self.default = default

    def size(self) -> int:
        n = 1
        for p in self.params:
            n *= len(p.choices)
        return n

    def contains(self, point: TunePoint) -> bool:
        if set(point) != {p.name for p in self.params}:
            return False
        return all(point[p.name] in p.choices for p in self.params)

    def enumerate(self) -> List[TunePoint]:
        """Every point of the space, default first."""
        points = [self.default]
        for combo in itertools.product(*(p.choices for p in self.params)):
            point = TunePoint({p.name: v
                               for p, v in zip(self.params, combo)})
            if point != self.default:
                points.append(point)
        return points

    def sample(self, rng: random.Random, n: int) -> List[TunePoint]:
        """``n`` distinct points (default always included)."""
        points = self.enumerate()
        if n >= len(points):
            return points
        rest = points[1:]
        rng.shuffle(rest)
        return [points[0]] + rest[:max(n - 1, 0)]

    def neighbor(self, point: TunePoint, rng: random.Random) -> TunePoint:
        """Mutate one randomly chosen param to a different choice
        (epsilon-greedy refinement step)."""
        mutable = [p for p in self.params if len(p.choices) > 1]
        if not mutable:
            return point
        p = rng.choice(mutable)
        alternatives = [c for c in p.choices if c != point[p.name]]
        return point.replace(**{p.name: rng.choice(alternatives)})


# ---------------------------------------------------------------------------
# The op registry
# ---------------------------------------------------------------------------


@dataclass
class TuneOpSpec:
    """How the tuner interacts with one tunable op.

    ``space_fn(**ctx)`` builds the :class:`TuneSpace`;
    ``build_fn(point, lengths, **ctx)`` materialises a concrete
    ``Schedule`` for a point; ``launch_fn(point, lengths, **ctx)``
    describes the point as a cost-model :class:`Workload` for fast
    analytical pruning; ``inputs_fn(lengths, rng, **ctx)`` generates
    the measurement inputs for ``Executor.build_and_run``.  Chain-level
    ops (``kind="chain"``, e.g. the encoder's fuse on/off knob) have no
    single schedule -- the tuner measures them through a ``Session``.
    """

    name: str
    space_fn: Callable[..., TuneSpace]
    build_fn: Optional[Callable] = None
    launch_fn: Optional[Callable] = None
    inputs_fn: Optional[Callable] = None
    kind: str = "op"


_REGISTRY: Dict[str, TuneOpSpec] = {}


def register_tune_op(name: str, space_fn, build_fn=None, launch_fn=None,
                     inputs_fn=None, kind: str = "op") -> TuneOpSpec:
    spec = TuneOpSpec(name=name, space_fn=space_fn, build_fn=build_fn,
                      launch_fn=launch_fn, inputs_fn=inputs_fn, kind=kind)
    _REGISTRY[name] = spec
    return spec


def get_tune_op(name: str) -> TuneOpSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no tune space registered for op {name!r}; "
            f"known: {sorted(_REGISTRY)}") from None


def tune_space(name: str, **ctx) -> TuneSpace:
    return get_tune_op(name).space_fn(**ctx)


def tunable_ops() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# The process-global schedule policy
# ---------------------------------------------------------------------------


class SchedulePolicy:
    """Maps ``(op, lengths)`` to a tuned :class:`TunePoint` via a
    schedule DB, or ``None`` (use the hand-picked default)."""

    def __init__(self, db, backend: str):
        self.db = db
        self.backend = backend
        self.lookups = 0
        self.applied = 0

    def point_for(self, op: str, lengths: Sequence[int],
                  ) -> Optional[TunePoint]:
        if self.db is None:
            return None
        self.lookups += 1
        entry = self.db.get(op, raggedness_bucket(lengths), self.backend)
        if not entry:
            return None
        try:
            point = TunePoint.from_json(entry["point"])
        except Exception:
            return None
        self.applied += 1
        return point

    def stats(self) -> Dict[str, object]:
        return {"backend": self.backend, "lookups": self.lookups,
                "applied": self.applied}


_ACTIVE_POLICY: Optional[SchedulePolicy] = None


def activate_policy(db, backend: str) -> SchedulePolicy:
    """Install the process-global tuned-schedule lookup; returns the
    policy handle (pass it back to :func:`deactivate_policy`)."""
    global _ACTIVE_POLICY
    _ACTIVE_POLICY = SchedulePolicy(db, backend)
    return _ACTIVE_POLICY


def deactivate_policy(policy: Optional[SchedulePolicy] = None) -> None:
    """Clear the global policy (only if ``policy`` still owns it)."""
    global _ACTIVE_POLICY
    if policy is None or _ACTIVE_POLICY is policy:
        _ACTIVE_POLICY = None


def active_policy() -> Optional[SchedulePolicy]:
    return _ACTIVE_POLICY


def applied_point(op: str, lengths: Sequence[int]) -> Optional[TunePoint]:
    """The tuned point for ``(op, lengths)`` under the active policy,
    or ``None`` when no policy is active / no winner is stored."""
    if _ACTIVE_POLICY is None:
        return None
    return _ACTIVE_POLICY.point_for(op, lengths)


# ---------------------------------------------------------------------------
# Schedule-memo registry (bounded lens-bytes-keyed LRU caches)
# ---------------------------------------------------------------------------


_SCHEDULE_MEMOS: Dict[str, Callable] = {}


def register_schedule_memo(name: str, fn: Callable) -> Callable:
    """Register an ``@lru_cache``-wrapped schedule memo for observability.

    The ops modules memoize schedules per lengths-bytes so the
    executor's kernel cache hits; the LRU ``maxsize`` bounds what
    diverse traffic can pin.  Registration makes cap/size/hit counts
    visible through ``Executor.codegen_stats()["schedule_memos"]``.
    """
    if not hasattr(fn, "cache_info"):
        raise TypeError(f"schedule memo {name!r} is not lru_cache-wrapped")
    _SCHEDULE_MEMOS[name] = fn
    return fn


def schedule_memo_stats() -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for name, fn in sorted(_SCHEDULE_MEMOS.items()):
        info = fn.cache_info()
        out[name] = {"hits": info.hits, "misses": info.misses,
                     "size": info.currsize, "cap": info.maxsize}
    return out


__all__ = [
    "TuneParam",
    "TunePoint",
    "TuneSpace",
    "TuneOpSpec",
    "register_tune_op",
    "get_tune_op",
    "tune_space",
    "tunable_ops",
    "raggedness_bucket",
    "SchedulePolicy",
    "activate_policy",
    "deactivate_policy",
    "active_policy",
    "applied_point",
    "register_schedule_memo",
    "schedule_memo_stats",
]
