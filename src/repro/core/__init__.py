"""Core compiler components of the CoRa reproduction.

The core follows the pipeline described in Section 2 / Figure 4 of the paper:

1. The user describes a ragged operator (``repro.core.operator``) using named
   dimensions (``repro.core.dims``) and extents that may be *uninterpreted
   functions* of outer loop variables (``repro.core.extents``).
2. The user schedules the operator (``repro.core.schedule``): loop padding,
   storage padding, loop fusion, splitting/tiling, operation splitting,
   horizontal fusion and thread remapping.
3. Lowering (``repro.core.lowering``) turns the scheduled operator into a
   loop-nest IR (``repro.core.ir``), running bounds inference
   (``repro.core.bounds``) and storage-access lowering
   (``repro.core.storage``), and emits *prelude* code (``repro.core.prelude``)
   that builds the auxiliary arrays needed at runtime.
4. Code generation (``repro.core.codegen``) emits an executable Python kernel.
5. The executor (``repro.core.executor``) runs the prelude on the host and
   the kernel on a (simulated) device, reporting results and latencies.
"""

from repro.core.dims import Dim, DimKind
from repro.core.extents import ConstExtent, Extent, VarExtent
from repro.core.dgraph import DimensionGraph
from repro.core.storage import RaggedLayout
from repro.core.ragged_tensor import RaggedTensor
from repro.core.operator import RaggedOperator, compute, input_tensor, placeholder
from repro.core.schedule import Schedule
from repro.core.codegen import CodegenBackend, ScalarBackend, get_backend
from repro.core.codegen_vector import VectorBackend
from repro.core.executor import Executor

__all__ = [
    "Dim",
    "DimKind",
    "Extent",
    "ConstExtent",
    "VarExtent",
    "DimensionGraph",
    "RaggedLayout",
    "RaggedTensor",
    "RaggedOperator",
    "compute",
    "input_tensor",
    "placeholder",
    "Schedule",
    "CodegenBackend",
    "ScalarBackend",
    "VectorBackend",
    "get_backend",
    "Executor",
]
