"""Code generation: from a :class:`~repro.core.lowering.LoweredKernel` to
executable Python.

Code generation is organised around *backends* behind a common
:class:`CodegenBackend` boundary (mirroring how real ragged compilers keep a
slow reference emitter next to the fast production one):

* :class:`ScalarBackend` -- this module.  The generated code is the Python
  analogue of the C / CUDA C++ CoRa emits: scalar loops over the (constant
  or table-driven) bounds, with ragged tensor accesses lowered to
  flat-buffer offsets through the prelude-built auxiliary arrays.  It
  handles every lowered construct and serves as the reference for
  differential testing.
* :class:`~repro.core.codegen_vector.VectorBackend` -- collapses the inner
  constant / table-bound loops and the reduction loops into NumPy slice,
  ``einsum`` and broadcast operations over the flat buffers, falling back
  to the scalar backend for constructs it cannot vectorize.

The generated source is kept readable on purpose -- it is part of the
public surface (``CompiledKernel.source``) and several tests assert
properties of it (e.g. that a fused kernel indexes the ``ffo`` fusion map,
or that padded loops carry no bound checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.ir import (
    Annotation,
    BinOp,
    Call,
    Const,
    Expr,
    LoopKind,
    LoopVar,
    Reduce,
    TensorAccess,
    reductions_in,
)
from repro.core.lowering import BoundSpec, LoweredKernel, LoopSpec, TensorPlan


_INTRINSICS = {
    "exp": "math.exp",
    "sqrt": "math.sqrt",
    "tanh": "math.tanh",
    "log": "math.log",
}


@dataclass
class GeneratedKernel:
    """The generated source plus the compiled callable.

    ``backend`` records which backend actually emitted the kernel -- for a
    :class:`~repro.core.codegen_vector.VectorBackend` request that hit an
    unvectorizable construct it reads ``"scalar"`` (the fallback), which is
    how tests and benchmarks observe fallback decisions.
    """

    name: str
    source: str
    fn: object
    backend: str = "scalar"
    #: why a vector-backend request fell back to scalar (``None`` otherwise)
    fallback_reason: Optional[str] = None

    def __call__(self, buffers: Dict[str, np.ndarray], aux: Dict[str, np.ndarray]) -> None:
        self.fn(buffers, aux)


class _Emitter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodeGenerator:
    """Generates a Python kernel function for a lowered ragged operator."""

    def __init__(self, kernel: LoweredKernel):
        self.kernel = kernel
        self._var_of_dim: Dict[Dim, str] = {}
        self._reduce_temps: Dict[int, str] = {}

    # -- public API -----------------------------------------------------------

    def generate(self) -> GeneratedKernel:
        source = self.generate_source()
        namespace: Dict[str, object] = {"math": math, "np": np}
        exec(compile(source, f"<cora:{self.kernel.name}>", "exec"), namespace)
        fn = namespace[self._fn_name()]
        return GeneratedKernel(name=self.kernel.name, source=source, fn=fn)

    def generate_source(self) -> str:
        em = _Emitter()
        em.emit(f"def {self._fn_name()}(buffers, aux):")
        em.push()
        em.emit(f'"""Generated CoRa kernel for operator {self.kernel.name!r}."""')
        # Bind buffers to locals for readability and speed.
        out_name = self.kernel.output_plan.spec.name
        em.emit(f"_buf_{self._safe(out_name)} = buffers[{out_name!r}]")
        for name in self.kernel.input_plans:
            em.emit(f"_buf_{self._safe(name)} = buffers[{name!r}]")
        for name in sorted(self.kernel.aux_arrays):
            em.emit(f"_aux_{self._safe(name)} = aux[{name!r}]")
        em.emit()
        self._emit_loops(em, 0)
        em.pop()
        return em.source()

    # -- naming ---------------------------------------------------------------

    def _fn_name(self) -> str:
        return f"cora_kernel_{self._safe(self.kernel.name)}"

    @staticmethod
    def _safe(name: str) -> str:
        return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

    # -- loop emission -----------------------------------------------------------

    def _bound_code(self, bound: BoundSpec) -> str:
        if bound.is_const:
            return str(bound.value)
        gov_code = self._dim_code(bound.governing)
        return f"int(_aux_{self._safe(bound.table_name)}[{gov_code}])"

    def _emit_loops(self, em: _Emitter, index: int) -> None:
        if index == len(self.kernel.loops):
            self._emit_body(em)
            return
        loop = self.kernel.loops[index]
        var = loop.var
        bound_code = self._bound_code(loop.bound)
        if loop.remap_name is not None:
            raw = f"{var}_raw"
            em.emit(f"for {raw} in range({bound_code}):")
            em.push()
            em.emit(f"{var} = int(_aux_{self._safe(loop.remap_name)}[{raw}])")
        else:
            em.emit(f"for {var} in range({bound_code}):")
            em.push()
        self._var_of_dim[loop.dim] = var
        if loop.fusion is not None:
            fmap = loop.fusion.map_name
            outer_var = f"_rec_{self._safe(loop.fusion.outer_dim.name)}"
            inner_var = f"_rec_{self._safe(loop.fusion.inner_dim.name)}"
            em.emit(f"{outer_var} = int(_aux_{self._safe(fmap + '_ffo')}[{var}])")
            em.emit(f"{inner_var} = {var} - int(_aux_{self._safe(fmap + '_row')}[{outer_var}])")
            self._var_of_dim[loop.fusion.outer_dim] = outer_var
            self._var_of_dim[loop.fusion.inner_dim] = inner_var
        if loop.guard is not None:
            guard = loop.guard
            outer_code = self._var_for_guard(guard.outer_var_dim)
            inner_code = self._var_for_guard(guard.inner_var_dim)
            bound = self._bound_code(guard.bound)
            em.emit(f"if {outer_code} * {guard.factor} + {inner_code} < {bound}:")
            em.push()
            self._emit_loops(em, index + 1)
            em.pop()
        else:
            self._emit_loops(em, index + 1)
        em.pop()

    def _var_for_guard(self, dim: Dim) -> str:
        for loop in self.kernel.loops:
            if loop.dim is dim:
                return loop.var
        raise LoweringError(f"guard references unknown loop {dim.name}")

    # -- dim value recovery ----------------------------------------------------------

    def _dim_code(self, dim: Dim) -> str:
        """Python expression giving the value of original dimension ``dim``."""
        if dim in self._var_of_dim:
            return self._var_of_dim[dim]
        recovery = self.kernel.dim_recovery.get(dim)
        if recovery is None:
            raise LoweringError(f"no way to recover dimension {dim.name}")
        kind = recovery[0]
        if kind == "loop":
            return recovery[1]
        if kind == "split":
            _, outer_var, inner_var, factor = recovery
            return f"({outer_var} * {factor} + {inner_var})"
        if kind in ("fused_outer", "fused_inner"):
            # The recovery variable is assigned when the fused loop is
            # emitted, so by the time the body needs it, it is in scope.
            name = dim.name
            return f"_rec_{self._safe(name)}"
        raise LoweringError(f"unknown recovery kind {kind!r}")

    # -- body emission -------------------------------------------------------------------

    def _emit_body(self, em: _Emitter) -> None:
        # Reductions first: each becomes an accumulator loop.
        self._reduce_temps = {}
        for i, red in enumerate(reductions_in(self.kernel.body)):
            temp = f"_red{i}"
            self._reduce_temps[id(red)] = temp
            init = "float('-inf')" if red.combiner == "max" else repr(float(red.init))
            em.emit(f"{temp} = {init}")
            closes = 0
            for axis in red.axes:
                bound = self.kernel.reduction_bounds[axis.dim]
                var = f"_r_{self._safe(axis.dim.name)}"
                self._var_of_dim[axis.dim] = var
                em.emit(f"for {var} in range({self._bound_code(bound)}):")
                em.push()
                closes += 1
            body_code = self._expr_code(red.body)
            if red.combiner == "sum":
                em.emit(f"{temp} = {temp} + {body_code}")
            elif red.combiner == "max":
                em.emit(f"{temp} = max({temp}, {body_code})")
            elif red.combiner == "min":
                em.emit(f"{temp} = min({temp}, {body_code})")
            else:
                raise LoweringError(f"unknown reduction combiner {red.combiner!r}")
            for _ in range(closes):
                em.pop()
        value_code = self._expr_code(self.kernel.body)
        store_code = self._output_offset_code()
        out = f"_buf_{self._safe(self.kernel.output_plan.spec.name)}"
        em.emit(f"{out}[{store_code}] = {value_code}")

    # -- expressions -----------------------------------------------------------------------

    def _expr_code(self, expr: Expr) -> str:
        if isinstance(expr, Reduce):
            return self._reduce_temps[id(expr)]
        if isinstance(expr, Const):
            return repr(float(expr.value))
        if isinstance(expr, LoopVar):
            return self._dim_code(expr.dim)
        if isinstance(expr, BinOp):
            lhs, rhs = self._expr_code(expr.lhs), self._expr_code(expr.rhs)
            if expr.op == "max":
                return f"max({lhs}, {rhs})"
            if expr.op == "min":
                return f"min({lhs}, {rhs})"
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, Call):
            args = ", ".join(self._expr_code(a) for a in expr.args)
            if expr.fn == "relu":
                return f"max(0.0, {args})"
            fn = _INTRINSICS.get(expr.fn)
            if fn is None:
                raise LoweringError(f"unknown intrinsic {expr.fn!r}")
            return f"{fn}({args})"
        if isinstance(expr, TensorAccess):
            return self._access_code(expr)
        raise LoweringError(f"cannot generate code for {expr!r}")

    def _access_code(self, access: TensorAccess) -> str:
        plan = self.kernel.input_plans.get(access.tensor.name)
        if plan is None:
            raise LoweringError(
                f"access to unknown tensor {access.tensor.name!r}"
            )
        idx_codes = [self._index_code(e) for e in access.indices]
        offset = self._offset_code(plan, idx_codes)
        return f"_buf_{self._safe(access.tensor.name)}[{offset}]"

    def _index_code(self, expr: Expr) -> str:
        """Integer-valued index expression."""
        if isinstance(expr, LoopVar):
            return self._dim_code(expr.dim)
        if isinstance(expr, Const):
            return str(int(expr.value))
        if isinstance(expr, BinOp):
            lhs, rhs = self._index_code(expr.lhs), self._index_code(expr.rhs)
            return f"({lhs} {expr.op} {rhs})"
        raise LoweringError(f"unsupported index expression {expr!r}")

    def _offset_code(self, plan: TensorPlan, idx_codes: Sequence[str]) -> str:
        if plan.is_ragged:
            row = f"_aux_{self._safe(plan.row_name)}"
            strides = f"_aux_{self._safe(plan.stride_name)}"
            b = idx_codes[0]
            parts = [f"int({row}[{b}])"]
            for col, idx in enumerate(idx_codes[1:]):
                parts.append(f"({idx}) * int({strides}[{b}, {col}])")
            return " + ".join(parts)
        parts = []
        for idx, stride in zip(idx_codes, plan.dense_strides):
            if stride == 1:
                parts.append(f"({idx})")
            else:
                parts.append(f"({idx}) * {stride}")
        return " + ".join(parts) if parts else "0"

    def _output_offset_code(self) -> str:
        plan = self.kernel.output_plan
        if self.kernel.output_dims_fused:
            # The store index is the fused loop variable followed by the
            # remaining (constant) dimensions.
            fused_loop = next(
                (l for l in self.kernel.loops if l.kind is LoopKind.FUSED), None
            )
            if fused_loop is None:
                raise LoweringError(
                    "output dimensions were fused but no fused loop exists"
                )
            remaining = [d for d in self.kernel.output_dims
                         if d not in (fused_loop.fusion.outer_dim,
                                      fused_loop.fusion.inner_dim)]
            idx_codes = [fused_loop.var] + [self._dim_code(d) for d in remaining]
            return self._offset_code(plan, idx_codes)
        idx_codes = [self._dim_code(d) for d in self.kernel.output_dims]
        return self._offset_code(plan, idx_codes)


# ---------------------------------------------------------------------------
# Backend boundary
# ---------------------------------------------------------------------------


class CodegenBackend:
    """Abstract boundary between lowering and kernel emission.

    A backend turns a :class:`LoweredKernel` into a
    :class:`GeneratedKernel`.  Backends must be stateless with respect to
    individual kernels so one instance can be shared by an executor across
    compilations.
    """

    name: str = "abstract"

    def generate(self, kernel: LoweredKernel) -> GeneratedKernel:
        raise NotImplementedError


class ScalarBackend(CodegenBackend):
    """The reference backend: one Python ``for`` statement per loop.

    Handles every construct lowering can produce (guards, remaps, fused
    loops, thread remapping); used directly and as the fallback target of
    the vector backend.
    """

    name = "scalar"

    def generate(self, kernel: LoweredKernel) -> GeneratedKernel:
        return CodeGenerator(kernel).generate()


def get_backend(backend: Union[str, CodegenBackend, None]) -> CodegenBackend:
    """Resolve a backend name (``"scalar"`` / ``"vector"``) or instance.

    ``None`` resolves to the default backend (``"vector"``), matching the
    :class:`~repro.core.executor.Executor` default, so callers forwarding an
    unset config value get the documented behaviour.
    """
    if isinstance(backend, CodegenBackend):
        return backend
    if backend == "scalar":
        return ScalarBackend()
    if backend is None or backend == "vector":
        from repro.core.codegen_vector import VectorBackend

        return VectorBackend()
    raise LoweringError(
        f"unknown codegen backend {backend!r}; expected 'scalar', 'vector' "
        "or a CodegenBackend instance"
    )


def generate(kernel: LoweredKernel) -> GeneratedKernel:
    """Generate and compile the Python kernel for a lowered operator."""
    return CodeGenerator(kernel).generate()
