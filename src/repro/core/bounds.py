"""Bounds inference for ragged loop nests.

During compilation a tensor compiler infers, for every operator, the loop
ranges needed to produce the region of its output that consumers require.
With ragged operators two complications arise (paper Section 5.2):

* after *vloop fusion* the loop iteration variable ``f`` is related to the
  original variables ``(o, i)`` through uninterpreted functions
  (``foif``, ``ffo``, ``ffi``); iteration ranges must be translated back
  and forth between the two spaces (Figure 7 gives the rules);
* ranges must be matched across producers and consumers, which CoRa does
  through *named dimensions*: the same :class:`~repro.core.dims.Dim` object
  appearing in both operators identifies corresponding iteration variables.

This module implements both: the Figure 7 translation rules on top of
concrete :class:`~repro.core.prelude.FusionMaps`, and a simple region-based
inference for chains of operators whose accesses are identity / affine in
the named dimensions.  The uninterpreted-function axioms of Appendix B.2
(``foif(ffo(f), ffi(f)) = f`` and the two inverses) are exposed as
:func:`check_fusion_axioms` and verified by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dims import Dim
from repro.core.errors import BoundsError
from repro.core.extents import Extent
from repro.core.ir import (
    BinOp,
    Const,
    Expr,
    LoopVar,
    TensorAccess,
    tensor_reads,
)
from repro.core.operator import RaggedOperator
from repro.core.prelude import FusionMaps


@dataclass(frozen=True)
class Range:
    """An inclusive integer range ``[lo, hi]`` of an iteration variable."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise BoundsError(f"empty or inverted range [{self.lo}, {self.hi}]")

    @property
    def extent(self) -> int:
        return self.hi - self.lo + 1

    def union(self, other: "Range") -> "Range":
        return Range(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, other: "Range") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi


# ---------------------------------------------------------------------------
# Figure 7: range translation between fused and unfused iteration spaces
# ---------------------------------------------------------------------------


def fused_range_of(outer: Range, inner: Range, maps: FusionMaps) -> Range:
    """``o in [ol, ou] and i in [il, iu]  ->  f in [foif(ol, il), foif(ou, iu)]``."""
    return Range(maps.foif(outer.lo, inner.lo), maps.foif(outer.hi, inner.hi))


def outer_range_of(fused: Range, maps: FusionMaps) -> Range:
    """``f in [fl, fu]  ->  o in [ffo(fl), ffo(fu)]``."""
    return Range(int(maps.ffo[fused.lo]), int(maps.ffo[fused.hi]))


def inner_range_of(fused: Range, maps: FusionMaps,
                   lengths: Optional[Sequence[int]] = None) -> Range:
    """The inner-variable range corresponding to a fused range (Figure 7).

    If the fused range spans more than one outer iteration the inner range
    is the full ``[0, max length - 1]`` (conservative, as in the paper);
    otherwise it is ``[ffi(fl), ffi(fu)]``.
    """
    o_lo = int(maps.ffo[fused.lo])
    o_hi = int(maps.ffo[fused.hi])
    if o_lo != o_hi:
        if lengths is None:
            raise BoundsError(
                "need the per-outer-iteration lengths to bound the inner "
                "variable of a multi-row fused range"
            )
        lengths = np.asarray(lengths)
        hi = int(lengths[o_lo:o_hi + 1].max()) - 1
        return Range(0, max(hi, 0))
    return Range(int(maps.ffi[fused.lo]), int(maps.ffi[fused.hi]))


def check_fusion_axioms(maps: FusionMaps) -> bool:
    """Verify the uninterpreted-function axioms of Appendix B.2.

    * ``foif(ffo(f), ffi(f)) == f`` for every fused index ``f``;
    * ``ffo(foif(o, i)) == o`` and ``ffi(foif(o, i)) == i`` for every valid
      ``(o, i)`` pair.
    """
    f = np.arange(maps.fused_extent, dtype=np.int64)
    if not np.array_equal(maps.foif_row[maps.ffo] + maps.ffi, f):
        return False
    # Check the inverse direction on every (o, i).
    for o in range(maps.foif_row.size):
        start = int(maps.foif_row[o])
        end = int(maps.foif_row[o + 1]) if o + 1 < maps.foif_row.size else maps.fused_extent
        width = end - start
        for i in (0, max(width - 1, 0)):
            if width == 0:
                continue
            fidx = maps.foif(o, i)
            if int(maps.ffo[fidx]) != o or int(maps.ffi[fidx]) != i:
                return False
    return True


# ---------------------------------------------------------------------------
# Producer/consumer region inference through named dimensions
# ---------------------------------------------------------------------------


def _access_range(expr: Expr, ranges: Dict[Dim, Range]) -> Range:
    """Range of an (affine) index expression given loop-variable ranges."""
    if isinstance(expr, Const):
        v = int(expr.value)
        return Range(v, v)
    if isinstance(expr, LoopVar):
        if expr.dim not in ranges:
            raise BoundsError(f"no range known for dimension {expr.dim.name}")
        return ranges[expr.dim]
    if isinstance(expr, BinOp):
        lhs = _access_range(expr.lhs, ranges)
        rhs = _access_range(expr.rhs, ranges)
        if expr.op == "+":
            return Range(lhs.lo + rhs.lo, lhs.hi + rhs.hi)
        if expr.op == "-":
            return Range(lhs.lo - rhs.hi, lhs.hi - rhs.lo)
        if expr.op == "*":
            candidates = [lhs.lo * rhs.lo, lhs.lo * rhs.hi,
                          lhs.hi * rhs.lo, lhs.hi * rhs.hi]
            return Range(min(candidates), max(candidates))
    raise BoundsError(f"cannot bound index expression {expr!r}")


def infer_input_regions(
    op: RaggedOperator,
    output_ranges: Dict[Dim, Range],
) -> Dict[str, List[Range]]:
    """Infer, per input tensor, the region read when computing a given output region.

    ``output_ranges`` maps each of the operator's named dimensions to the
    iteration range required by the consumer.  Reduction axes are assumed to
    be traversed fully (their extent is evaluated at the *maximum* governing
    index of the provided range, which is conservative).
    """
    ranges: Dict[Dim, Range] = dict(output_ranges)
    for axis in op.reduction_axes():
        ext = axis.extent
        if ext.is_constant:
            hi = int(ext()) - 1
        else:
            governing = ext.deps[0]
            if governing not in ranges:
                raise BoundsError(
                    f"reduction axis {axis.dim.name} depends on "
                    f"{governing.name}, whose range is unknown"
                )
            gov_range = ranges[governing]
            hi = max(int(ext(gov_range.lo)), int(ext(gov_range.hi))) - 1
        ranges[axis.dim] = Range(0, max(hi, 0))

    regions: Dict[str, List[Range]] = {}
    for read in tensor_reads(op.body):
        per_dim = [_access_range(idx, ranges) for idx in read.indices]
        if read.tensor.name in regions:
            regions[read.tensor.name] = [
                a.union(b) for a, b in zip(regions[read.tensor.name], per_dim)
            ]
        else:
            regions[read.tensor.name] = per_dim
    return regions


def infer_loop_ranges(op: RaggedOperator, governing_index: Optional[int] = None,
                      ) -> Dict[Dim, Range]:
    """Full iteration ranges of an operator's loops.

    For vloops the bound is evaluated at ``governing_index`` if provided,
    otherwise at the maximum over the governing dimension.
    """
    ranges: Dict[Dim, Range] = {}
    for dim, ext in zip(op.dims, op.loop_extents):
        if ext.is_constant:
            hi = int(ext()) - 1
        elif governing_index is not None:
            hi = int(ext(governing_index)) - 1
        else:
            hi = int(ext.max_value()) - 1
        ranges[dim] = Range(0, max(hi, 0))
    return ranges
