"""Named dimensions.

CoRa uses *named dimensions* (paper Section 4 and 5.2) to identify loops and
the tensor dimensions they correspond to, and to express the dependences
between them ("the extent of the sequence-length loop is a function of the
batch dimension").  Named dimensions are also how bounds inference matches
iteration variables across producers and consumers.

A :class:`Dim` is a lightweight identity object: two dimensions are the same
only if they are the same object, regardless of their name.  Names exist for
debugging and for the generated code to be readable.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_dim_counter = itertools.count()


class DimKind(enum.Enum):
    """Classification of a dimension in a particular layout or loop nest.

    A dimension is not intrinsically constant or variable -- the same named
    dimension may be a *cdim* (constant extent) in one tensor and a *vdim*
    (variable extent, i.e. its slice sizes depend on an outer dimension's
    index) in another.  The kind is therefore determined per
    :class:`~repro.core.storage.RaggedLayout` / loop nest, not stored on the
    :class:`Dim` itself.
    """

    CONSTANT = "cdim"
    VARIABLE = "vdim"
    FUSED = "fused"


@dataclass(eq=False)
class Dim:
    """A named dimension.

    Parameters
    ----------
    name:
        Human-readable name used in generated code and error messages.
        If omitted a unique name of the form ``dim<N>`` is generated.
    """

    name: str = ""
    uid: int = field(default_factory=lambda: next(_dim_counter))

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"dim{self.uid}"

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Dim({self.name!r})"

    def renamed(self, name: str) -> "Dim":
        """Return a *new* dimension carrying ``name`` (identity is new)."""
        return Dim(name=name)


@dataclass(eq=False)
class FusedDim(Dim):
    """A dimension produced by fusing two adjacent dimensions.

    Fused dimensions are produced by the ``fuse_loops`` /
    ``fuse_dimensions`` scheduling primitives (paper Section 5.1).  They
    remember their parents so that bounds inference can translate iteration
    ranges between the fused and unfused iteration spaces (paper Figure 7).
    """

    outer: Optional[Dim] = None
    inner: Optional[Dim] = None

    def __post_init__(self) -> None:
        if not self.name:
            outer = self.outer.name if self.outer is not None else "?"
            inner = self.inner.name if self.inner is not None else "?"
            self.name = f"{outer}.{inner}"
        super().__post_init__()

    def __hash__(self) -> int:  # dataclass(eq=False) would inherit, be explicit
        return hash(self.uid)

    def parents(self) -> tuple[Dim, Dim]:
        """Return ``(outer, inner)`` parent dimensions."""
        if self.outer is None or self.inner is None:
            raise ValueError("FusedDim missing parent dimensions")
        return (self.outer, self.inner)

    def __repr__(self) -> str:
        return f"FusedDim({self.name!r})"


def fresh_dims(*names: str) -> tuple[Dim, ...]:
    """Convenience helper creating several named dimensions at once.

    >>> batch, seq = fresh_dims("batch", "seq")
    """
    return tuple(Dim(n) for n in names)
