"""The ragged tensor runtime object.

A :class:`RaggedTensor` couples a :class:`~repro.core.storage.RaggedLayout`
with a flat NumPy buffer.  It is what the generated kernels and the operator
library read from and write to, and it provides the conversions to and from
fully padded dense arrays that the baselines use.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dims import Dim
from repro.core.errors import StorageError
from repro.core.extents import ConstExtent, VarExtent
from repro.core.storage import RaggedLayout

ArrayLike = Union[Sequence[float], np.ndarray]


class RaggedTensor:
    """A tensor stored according to a :class:`RaggedLayout`.

    The data lives in a single flat buffer; slices are located through the
    layout's O(1) offset arithmetic.  Construction helpers cover the common
    cases used throughout the operator library and the benchmarks.
    """

    def __init__(self, layout: RaggedLayout, data: Optional[np.ndarray] = None,
                 dtype: np.dtype = np.float32):
        self.layout = layout
        size = layout.total_size()
        if data is None:
            data = np.zeros(size, dtype=dtype)
        else:
            data = np.asarray(data, dtype=dtype).reshape(-1)
            if data.size != size:
                raise StorageError(
                    f"buffer has {data.size} elements but the layout "
                    f"requires {size}"
                )
        self.data = data

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, layout: RaggedLayout, dtype: np.dtype = np.float32) -> "RaggedTensor":
        return cls(layout, None, dtype=dtype)

    @classmethod
    def from_slices(cls, layout: RaggedLayout, slices: Sequence[np.ndarray],
                    dtype: np.dtype = np.float32) -> "RaggedTensor":
        """Build a ragged tensor from one dense array per governing index.

        Each slice array must match the *unpadded* inner shape at that
        index; storage padding (if any) is zero-filled.
        """
        tensor = cls.zeros(layout, dtype=dtype)
        m = layout.governing_extent()
        if len(slices) != m:
            raise StorageError(
                f"expected {m} slices, got {len(slices)}"
            )
        for b, arr in enumerate(slices):
            tensor.set_slice(b, np.asarray(arr, dtype=dtype))
        return tensor

    @classmethod
    def from_dense(cls, layout: RaggedLayout, dense: np.ndarray,
                   dtype: np.dtype = np.float32) -> "RaggedTensor":
        """Copy the valid region of a fully padded dense array into ragged storage."""
        dense = np.asarray(dense, dtype=dtype)
        tensor = cls.zeros(layout, dtype=dtype)
        m = layout.governing_extent()
        for b in range(m):
            valid = tensor.valid_slice_shape(b)
            index = (b,) + tuple(slice(0, s) for s in valid)
            tensor.set_slice(b, dense[index])
        return tensor

    @classmethod
    def random(cls, layout: RaggedLayout, seed: int = 0,
               dtype: np.dtype = np.float32) -> "RaggedTensor":
        """A ragged tensor filled with reproducible uniform random values."""
        rng = np.random.default_rng(seed)
        tensor = cls(layout, rng.standard_normal(layout.total_size()).astype(dtype))
        return tensor

    # -- shapes --------------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nnz(self) -> int:
        """Number of stored elements (including storage padding)."""
        return int(self.data.size)

    @property
    def storage_bytes(self) -> int:
        return int(self.data.nbytes)

    def valid_slice_shape(self, b: int) -> Tuple[int, ...]:
        """Unpadded (useful-data) shape of slice ``b``."""
        shape = []
        for i in range(1, self.layout.ndim):
            ext = self.layout.base_extents[i]
            shape.append(int(ext(b)) if not ext.is_constant else int(ext()))
        return tuple(shape)

    def storage_slice_shape(self, b: int) -> Tuple[int, ...]:
        """Storage (padded) shape of slice ``b``."""
        return self.layout.slice_shape(b)

    # -- element and slice access ---------------------------------------------

    def __getitem__(self, indices: Tuple[int, ...]) -> float:
        if isinstance(indices, int):
            indices = (indices,)
        return float(self.data[self.layout.offset(indices)])

    def __setitem__(self, indices: Tuple[int, ...], value: float) -> None:
        if isinstance(indices, int):
            indices = (indices,)
        self.data[self.layout.offset(indices)] = value

    def slice_view(self, b: int) -> np.ndarray:
        """A writable dense view of the (storage-padded) slice at index ``b``."""
        start, end = self.layout.slice_bounds(b)
        shape = self.storage_slice_shape(b)
        return self.data[start:end].reshape(shape)

    def valid_slice(self, b: int) -> np.ndarray:
        """A view of only the valid (unpadded) region of slice ``b``."""
        view = self.slice_view(b)
        valid = self.valid_slice_shape(b)
        index = tuple(slice(0, s) for s in valid)
        return view[index]

    def set_slice(self, b: int, values: np.ndarray) -> None:
        """Write ``values`` into the valid region of slice ``b``."""
        target = self.valid_slice(b)
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != target.shape:
            raise StorageError(
                f"slice {b}: expected shape {target.shape}, got {values.shape}"
            )
        target[...] = values

    def iter_slices(self):
        """Iterate over ``(index, valid_slice_view)`` pairs."""
        for b in range(self.layout.governing_extent()):
            yield b, self.valid_slice(b)

    # -- conversions ------------------------------------------------------------

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        """Expand into a fully padded dense array (padding filled with ``fill``)."""
        dense = np.full(self.layout.dense_shape(), fill, dtype=self.dtype)
        for b, valid in self.iter_slices():
            index = (b,) + tuple(slice(0, s) for s in valid.shape)
            dense[index] = valid
        return dense

    def copy(self) -> "RaggedTensor":
        return RaggedTensor(self.layout, self.data.copy(), dtype=self.dtype)

    # -- comparisons --------------------------------------------------------------

    def allclose(self, other: Union["RaggedTensor", np.ndarray],
                 rtol: float = 1e-4, atol: float = 1e-5) -> bool:
        """Compare the *valid* regions of two tensors.

        ``other`` may be another ragged tensor with the same governing extent
        or a fully padded dense array (only its valid region is compared).
        """
        for b, mine in self.iter_slices():
            if isinstance(other, RaggedTensor):
                theirs = other.valid_slice(b)
                index = tuple(slice(0, s) for s in mine.shape)
                theirs = theirs[index]
            else:
                index = (b,) + tuple(slice(0, s) for s in mine.shape)
                theirs = np.asarray(other)[index]
            if not np.allclose(mine, theirs, rtol=rtol, atol=atol):
                return False
        return True

    def max_abs_diff(self, other: Union["RaggedTensor", np.ndarray]) -> float:
        worst = 0.0
        for b, mine in self.iter_slices():
            if isinstance(other, RaggedTensor):
                theirs = other.valid_slice(b)[tuple(slice(0, s) for s in mine.shape)]
            else:
                theirs = np.asarray(other)[(b,) + tuple(slice(0, s) for s in mine.shape)]
            if mine.size:
                worst = max(worst, float(np.abs(mine - theirs).max()))
        return worst

    def __repr__(self) -> str:
        return (
            f"RaggedTensor(dims={[d.name for d in self.layout.dims]}, "
            f"nnz={self.nnz}, dtype={self.dtype})"
        )


def ragged_from_lengths(
    lengths: Sequence[int],
    inner_shape: Sequence[int] = (),
    pad: int = 1,
    names: Tuple[str, str] = ("batch", "seq"),
    dtype: np.dtype = np.float32,
    seed: Optional[int] = None,
) -> RaggedTensor:
    """Convenience constructor for the common ``[batch, len(b), *inner]`` tensor.

    Parameters
    ----------
    lengths:
        Per-batch-element sequence lengths.
    inner_shape:
        Trailing constant dimensions (e.g. the hidden size).
    pad:
        Storage padding multiple applied to the variable dimension.
    seed:
        If given, fill with reproducible random values; otherwise zeros.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    batch_dim = Dim(names[0])
    len_dim = Dim(names[1])
    dims = [batch_dim, len_dim] + [Dim(f"inner{i}") for i in range(len(inner_shape))]
    extents = [ConstExtent(len(lengths)), VarExtent(batch_dim, lengths)] + [
        ConstExtent(int(s)) for s in inner_shape
    ]
    padding = {len_dim: pad} if pad > 1 else None
    layout = RaggedLayout(dims, extents, storage_padding=padding)
    if seed is None:
        return RaggedTensor.zeros(layout, dtype=dtype)
    return RaggedTensor.random(layout, seed=seed, dtype=dtype)
