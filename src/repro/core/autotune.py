"""Cost-model-guided schedule autotuning.

The search driver over the :mod:`repro.core.tunespace` spaces.  For one
``(op, raggedness signature)`` pair the tuner:

1. **prunes analytically** -- every candidate point is described as a
   cost-model workload (``launch_fn``) and ranked by
   :func:`repro.substrates.costmodel.rank_workloads`, so only the
   ``top_k`` analytically promising points (plus the default) are ever
   measured;
2. **measures** the survivors on the real
   :class:`~repro.core.executor.Executor` (median wall time of warm
   dispatches, the compile excluded);
3. **verifies bit-identity**: a candidate is only eligible if its output
   matches the default schedule's output exactly (``np.array_equal``
   per valid slice).  A faster-but-different schedule is a bug, not a
   win;
4. **refines epsilon-greedily** (AMOS-style): mutate one knob of the
   incumbent at a time for ``refine_iters`` rounds, keeping strict
   measured improvements;
5. **persists** the winner to a :class:`~repro.core.scheduledb.ScheduleDB`
   keyed by ``(op, raggedness bucket, backend)``.

The default point is kept unless a candidate is *strictly* faster, and
a kept default reports ``tuned_s == default_s`` -- so "tuned is never
slower than the hand-picked schedule" holds by construction, per
measurement noise included.

Chain-level knobs (today: the encoder's planner-fusion on/off) have no
single schedule to hand the executor; :meth:`AutoTuner.tune_chain`
measures them through warm ``Session`` dispatches of the full encoder
stack instead, with the same strict bit-identity + strictly-faster
acceptance rule.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scheduledb import ScheduleDB
from repro.core.tunespace import (
    TunePoint,
    TuneSpace,
    get_tune_op,
    raggedness_bucket,
)
from repro.substrates.costmodel import rank_workloads


@dataclass
class TuneResult:
    """The outcome of tuning one ``(op, signature)`` pair."""

    op: str
    bucket: Tuple[int, ...]
    backend: str
    point: TunePoint
    default_point: TunePoint
    tuned_s: float
    default_s: float
    bit_identical: bool
    iterations: int
    source: str  # "search" when a non-default point won, else "default"
    measured: Dict[Tuple, float] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Fractional speedup over the default (0.0 when the default won)."""
        if self.default_s <= 0:
            return 0.0
        return 1.0 - self.tuned_s / self.default_s

    def to_entry(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "bucket": [int(b) for b in self.bucket],
            "backend": self.backend,
            "point": self.point.to_json(),
            "default_point": self.default_point.to_json(),
            "tuned_s": float(self.tuned_s),
            "default_s": float(self.default_s),
            "improvement": float(self.improvement),
            "bit_identical": bool(self.bit_identical),
            "iterations": int(self.iterations),
            "source": self.source,
        }


class AutoTuner:
    """Greedy + epsilon-greedy schedule search over registered tune spaces.

    Bind it to a :class:`~repro.core.session.Session` (preferred -- the
    tuner then measures through the session's executor, so tuned kernels
    land in the session's AOT disk cache and a later ``tune="load"``
    process starts with zero lowerings) or to a bare ``Executor``.
    """

    def __init__(self, session=None, executor=None, db: Optional[ScheduleDB] = None,
                 device=None, top_k: int = 4, refine_iters: int = 6,
                 repeats: int = 5, seed: int = 0, max_candidates: int = 32):
        if executor is None and session is not None:
            executor = session.executor
        if executor is None:
            from repro.core.executor import Executor
            executor = Executor(backend="vector")
        self.session = session
        self.executor = executor
        self.db = db if db is not None else getattr(session, "schedule_db", None)
        if device is None:
            from repro.substrates.device import intel_cpu
            device = intel_cpu()
        self.device = device
        self.top_k = int(top_k)
        self.refine_iters = int(refine_iters)
        self.repeats = max(int(repeats), 1)
        self.seed = int(seed)
        self.max_candidates = int(max_candidates)
        self.rng = random.Random(seed)
        #: Total schedules actually measured across all tune calls.
        self.iterations = 0
        self.results: List[TuneResult] = []

    # -- measurement ---------------------------------------------------------

    def _time_dispatch(self, run) -> float:
        """Median warm wall time of ``run()`` over ``repeats`` dispatches."""
        times = []
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        return float(statistics.median(times))

    def _measure_schedule(self, schedule, inputs) -> Tuple[object, float]:
        out, _ = self.executor.build_and_run(schedule, inputs)  # compile/warm
        secs = self._time_dispatch(
            lambda: self.executor.build_and_run(schedule, inputs))
        self.iterations += 1
        return out, secs

    @staticmethod
    def _identical(a, b, batch: int) -> bool:
        try:
            return all(np.array_equal(a.valid_slice(i), b.valid_slice(i))
                       for i in range(batch))
        except Exception:
            return False

    # -- op-level tuning -----------------------------------------------------

    def tune_op(self, op: str, lengths: Sequence[int], **ctx) -> TuneResult:
        """Search the registered space of ``op`` for this signature.

        ``ctx`` is forwarded to the op's space/build/launch/inputs
        callbacks (e.g. ``heads=, head_size=, scale=`` for the attention
        gemms) -- pass the *production* values so the tuned kernels the
        measurement stores in the AOT cache are the ones the real
        programs will load.
        """
        spec = get_tune_op(op)
        if spec.kind != "op" or spec.build_fn is None or spec.inputs_fn is None:
            raise ValueError(
                f"op {op!r} is not measurable at the op level "
                f"(kind={spec.kind!r}); use tune_chain for chain knobs")
        lengths = tuple(int(s) for s in lengths)
        bucket = raggedness_bucket(lengths)
        backend = self.executor.backend.name
        space: TuneSpace = spec.space_fn(lengths=lengths, **ctx)
        inputs = spec.inputs_fn(lengths, np.random.default_rng(self.seed),
                                **ctx)
        batch = len(lengths)

        default_point = space.default
        default_schedule = spec.build_fn(default_point, lengths, **ctx)
        default_out, default_s = self._measure_schedule(default_schedule,
                                                        inputs)
        iterations = 1
        measured: Dict[TunePoint, float] = {default_point: default_s}
        best_point, best_s = default_point, default_s

        def consider(point: TunePoint) -> None:
            nonlocal best_point, best_s, iterations
            if point in measured or not space.contains(point):
                return
            schedule = spec.build_fn(point, lengths, **ctx)
            if schedule is default_schedule:
                # Memoized builders return the identical object for
                # points that degenerate to the default (e.g. tile=0
                # with remap toggled) -- nothing new to measure.
                measured[point] = default_s
                return
            out, secs = self._measure_schedule(schedule, inputs)
            iterations += 1
            measured[point] = secs
            if secs < best_s and self._identical(out, default_out, batch):
                best_point, best_s = point, secs

        candidates = space.enumerate()
        if len(candidates) > self.max_candidates:
            candidates = space.sample(self.rng, self.max_candidates)

        # Analytical pruning: measure only the cost model's top-k picks.
        if spec.launch_fn is not None:
            workloads = [spec.launch_fn(p, lengths, **ctx)
                         for p in candidates]
            order = rank_workloads(workloads, self.device)
            shortlist = [candidates[i] for i in order[:self.top_k]]
        else:
            shortlist = candidates[:self.top_k]
        for point in shortlist:
            consider(point)

        # Epsilon-greedy refinement around the incumbent.
        for _ in range(self.refine_iters):
            point = space.neighbor(best_point, self.rng)
            if point in measured:
                point = space.neighbor(
                    self.rng.choice(list(measured)), self.rng)
            consider(point)

        if best_point == default_point:
            best_s = default_s  # tuned IS the default: never slower
        result = TuneResult(
            op=op, bucket=bucket, backend=backend, point=best_point,
            default_point=default_point, tuned_s=best_s,
            default_s=default_s, bit_identical=True, iterations=iterations,
            source="default" if best_point == default_point else "search",
            measured={p.key(): s for p, s in measured.items()})
        self._record(result)
        return result

    # -- chain-level tuning --------------------------------------------------

    def tune_chain(self, lengths: Sequence[int], weights, config,
                   masked: bool = True, n_layers: Optional[int] = None,
                   backend: Optional[str] = None,
                   disk_cache=None) -> TuneResult:
        """Tune the encoder chain's knobs (planner fusion on/off) for one
        signature by measuring warm full-program dispatches.

        Each candidate gets its own throwaway ``Session`` sharing the
        bound session's backend and AOT disk cache, so every kernel the
        winner needs is persisted for later ``tune="load"`` processes.
        """
        from repro.core.session import Session
        from repro.models.transformer import encoder_stack_program

        spec = get_tune_op("encoder_chain")
        space = spec.space_fn(lengths=lengths)
        lengths = tuple(int(s) for s in lengths)
        bucket = raggedness_bucket(lengths)
        if backend is None:
            backend = self.executor.backend.name
        if disk_cache is None and self.session is not None \
                and self.executor.disk_cache is not None:
            disk_cache = str(self.executor.disk_cache.root)

        rng = np.random.default_rng(self.seed)
        tokens = rng.standard_normal(
            (sum(lengths), config.hidden_size)).astype(np.float32)

        default_point = space.default
        measured: Dict[TunePoint, float] = {}
        outputs: Dict[TunePoint, np.ndarray] = {}
        iterations = 0
        for point in space.enumerate():
            session = Session(backend=backend, fuse=bool(point["fuse"]),
                              disk_cache=disk_cache)
            try:
                program = encoder_stack_program(
                    lengths, weights, config, masked=masked,
                    n_layers=n_layers, session=session)
                run = lambda: session.run(program, {"tokens": tokens},
                                          signature=lengths)
                out = run()  # compile + warm
                outputs[point] = np.asarray(out["out_tokens"]).copy()
                measured[point] = self._time_dispatch(run)
                iterations += 1
                self.iterations += 1
            finally:
                session.close()

        default_s = measured[default_point]
        default_out = outputs[default_point]
        best_point, best_s = default_point, default_s
        for point, secs in measured.items():
            if point == default_point:
                continue
            if secs < best_s and np.array_equal(outputs[point], default_out):
                best_point, best_s = point, secs
        if best_point == default_point:
            best_s = default_s
        result = TuneResult(
            op="encoder_chain", bucket=bucket, backend=backend,
            point=best_point, default_point=default_point, tuned_s=best_s,
            default_s=default_s, bit_identical=True, iterations=iterations,
            source="default" if best_point == default_point else "search",
            measured={p.key(): s for p, s in measured.items()})
        self._record(result)
        return result

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, result: TuneResult) -> None:
        self.results.append(result)
        if self.db is not None:
            self.db.put(result.op, result.bucket, result.backend,
                        result.to_entry())

    def stats(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "tuned": sum(1 for r in self.results if r.source == "search"),
            "kept_default": sum(1 for r in self.results
                                if r.source == "default"),
            "results": len(self.results),
        }


__all__ = ["AutoTuner", "TuneResult"]
