"""Vectorized NumPy code generation backend.

Where the scalar backend (:mod:`repro.core.codegen`) emits one Python
``for`` statement per loop and one flat-buffer load per access, this
backend keeps only the outermost (governing) loop as a Python loop and
collapses everything inside it into NumPy operations:

* each ragged tensor's per-instance slice is materialised as a dense
  ndarray *view* of the flat buffer, addressed through the prelude-built
  row-offset and stride auxiliary arrays (the whole row at once, not one
  element at a time);
* constant- and table-bound inner loops become broadcast axes;
* ``sum`` reductions over a product of tensor accesses become a single
  ``np.einsum`` (which dispatches matmul-shaped contractions to BLAS);
* other reductions become ``.sum()`` / ``.max()`` / ``.min()`` over a
  broadcast body.

The backend only handles the subset of lowered kernels it can translate
faithfully: no guards, no thread remaps, no fused loops, no split loops,
and table bounds governed by the outermost loop.  Anything else raises
:class:`VectorizeError` and :class:`VectorBackend` transparently falls
back to the scalar backend, which is why the scalar emitter stays the
reference implementation for differential testing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codegen import (
    CodegenBackend,
    GeneratedKernel,
    ScalarBackend,
    _Emitter,
)
from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.ir import (
    BinOp,
    Call,
    Const,
    Expr,
    LoopVar,
    Reduce,
    TensorAccess,
    reductions_in,
)
from repro.core.lowering import BoundSpec, LoweredKernel, TensorPlan

_NP_INTRINSICS = {
    "exp": "np.exp",
    "sqrt": "np.sqrt",
    "tanh": "np.tanh",
    "log": "np.log",
}


class VectorizeError(LoweringError):
    """The lowered kernel contains a construct this backend cannot vectorize."""


def _slice_view(buf: np.ndarray, row_offsets: np.ndarray,
                shapes: np.ndarray, b: int) -> np.ndarray:
    """Dense ndarray view of ragged slice ``b`` of a flat buffer.

    The slice of governing index ``b`` starts at ``row_offsets[b]`` and is
    packed row-major with the (storage-padded) per-instance shape recorded
    by the prelude in ``shapes[b]``.
    """
    start = int(row_offsets[b])
    shape = tuple(int(s) for s in shapes[b])
    size = 1
    for s in shape:
        size *= s
    return buf[start:start + size].reshape(shape)


def _flatten_product(expr: Expr):
    """Decompose ``expr`` into (constant factors, tensor accesses) if it is a
    pure product of those; return ``None`` otherwise."""
    if isinstance(expr, Const):
        return [float(expr.value)], []
    if isinstance(expr, TensorAccess):
        return [], [expr]
    if isinstance(expr, BinOp) and expr.op == "*":
        left = _flatten_product(expr.lhs)
        right = _flatten_product(expr.rhs)
        if left is None or right is None:
            return None
        return left[0] + right[0], left[1] + right[1]
    return None


class VectorCodeGenerator:
    """Emits the vectorized Python source for one lowered kernel."""

    def __init__(self, kernel: LoweredKernel):
        self.kernel = kernel
        self._analyze()
        #: id(Reduce) -> code of its (out-context aligned) temporary
        self._reduce_code: Dict[int, str] = {}
        #: dims of the per-instance loop index arrays already emitted
        self._index_arrays: Dict[Dim, str] = {}

    # -- analysis ------------------------------------------------------------

    def _analyze(self) -> None:
        kernel = self.kernel
        if not kernel.loops:
            raise VectorizeError("kernel has no loops")
        if kernel.output_dims_fused:
            raise VectorizeError("fused output dimensions are not vectorized")
        gov = kernel.loops[0]
        if not gov.bound.is_const:
            raise VectorizeError("outer loop bound must be constant")
        if gov.guard or gov.remap_name or gov.fusion:
            raise VectorizeError("outer loop carries a guard/remap/fusion")
        self.gov_dim = gov.dim
        self.gov_count = gov.bound.value
        for loop in kernel.loops[1:]:
            if loop.guard or loop.remap_name or loop.fusion:
                raise VectorizeError(
                    f"loop {loop.dim.name} carries a guard/remap/fusion"
                )
            self._check_bound(loop.bound, loop.dim)
        self.inner_dims: Tuple[Dim, ...] = tuple(l.dim for l in kernel.loops[1:])
        if kernel.output_dims[0] is not self.gov_dim:
            raise VectorizeError("outer loop is not the output governing dim")
        if set(kernel.output_dims[1:]) != set(self.inner_dims):
            raise VectorizeError(
                "loop dims do not map 1:1 onto output dims (split/fused loops)"
            )
        self.reduce_dims: Tuple[Dim, ...] = tuple(kernel.reduction_bounds)
        for dim, bound in kernel.reduction_bounds.items():
            self._check_bound(bound, dim)
        reduces = reductions_in(kernel.body)
        for red in reduces:
            if red.combiner not in ("sum", "max", "min"):
                raise VectorizeError(f"unknown combiner {red.combiner!r}")
            if reductions_in(red.body):
                raise VectorizeError("nested reductions are not vectorized")
        self.reduces = reduces
        # Per-dim bound variable names (collision-safe).
        self._bound_var: Dict[Dim, str] = {}
        taken: Dict[str, Dim] = {}
        for dim in self.inner_dims + self.reduce_dims:
            base = f"_n_{self._safe(dim.name)}"
            name = base if taken.get(base, dim) is dim else f"{base}_{dim.uid}"
            taken[name] = dim
            self._bound_var[dim] = name

    def _check_bound(self, bound: BoundSpec, dim: Dim) -> None:
        if not bound.is_const and bound.governing is not self.gov_dim:
            raise VectorizeError(
                f"bound of {dim.name} is governed by {bound.governing.name}, "
                "not the outermost loop"
            )

    # -- public API -----------------------------------------------------------

    def generate(self) -> GeneratedKernel:
        source = self.generate_source()
        namespace: Dict[str, object] = {"np": np, "_slice_view": _slice_view}
        exec(compile(source, f"<cora-vec:{self.kernel.name}>", "exec"), namespace)
        fn = namespace[self._fn_name()]
        return GeneratedKernel(name=self.kernel.name, source=source, fn=fn,
                               backend="vector")

    @staticmethod
    def _safe(name: str) -> str:
        return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

    def _fn_name(self) -> str:
        return f"cora_vkernel_{self._safe(self.kernel.name)}"

    # -- source emission -------------------------------------------------------

    def generate_source(self) -> str:
        kernel = self.kernel
        em = _Emitter()
        em.emit(f"def {self._fn_name()}(buffers, aux):")
        em.push()
        em.emit(f'"""Vectorized (NumPy) CoRa kernel for operator '
                f'{kernel.name!r}."""')
        out_name = kernel.output_plan.spec.name
        em.emit(f"_buf_{self._safe(out_name)} = buffers[{out_name!r}]")
        accessed = self._accessed_tensors()
        for name in kernel.input_plans:
            if name in accessed:
                em.emit(f"_buf_{self._safe(name)} = buffers[{name!r}]")
        for name in sorted(self._aux_names_used()):
            em.emit(f"_aux_{self._safe(name)} = aux[{name!r}]")
        # Dense tensors are reshaped once, outside the instance loop.
        for name in accessed:
            plan = kernel.input_plans[name]
            if not plan.is_ragged:
                shape = ", ".join(str(s) for s in plan.layout.dense_shape())
                em.emit(f"_nd_{self._safe(name)} = "
                        f"_buf_{self._safe(name)}.reshape({shape})")
        if not kernel.output_plan.is_ragged:
            shape = ", ".join(str(s) for s in kernel.output_plan.layout.dense_shape())
            em.emit(f"_nd_{self._safe(out_name)} = "
                    f"_buf_{self._safe(out_name)}.reshape({shape})")
        em.emit(f"for _b in range({self.gov_count}):")
        em.push()
        self._emit_bounds(em)
        self._emit_views(em, accessed)
        self._emit_body(em)
        em.pop()
        em.pop()
        return em.source()

    def _accessed_tensors(self) -> List[str]:
        seen: List[str] = []
        for expr in self._walk(self.kernel.body):
            if isinstance(expr, TensorAccess) and expr.tensor.name not in seen:
                if expr.tensor.name not in self.kernel.input_plans:
                    raise VectorizeError(
                        f"access to unknown tensor {expr.tensor.name!r}"
                    )
                seen.append(expr.tensor.name)
        return seen

    @staticmethod
    def _walk(expr: Expr):
        yield expr
        for child in expr.children():
            yield from VectorCodeGenerator._walk(child)

    @staticmethod
    def _walk_values(expr: Expr):
        """Like :meth:`_walk` but does not descend into access indices."""
        yield expr
        if isinstance(expr, TensorAccess):
            return
        for child in expr.children():
            yield from VectorCodeGenerator._walk_values(child)

    def _aux_names_used(self) -> List[str]:
        names: List[str] = []
        for loop in self.kernel.loops[1:]:
            if not loop.bound.is_const:
                names.append(loop.bound.table_name)
        for bound in self.kernel.reduction_bounds.values():
            if not bound.is_const:
                names.append(bound.table_name)
        for name in self._accessed_tensors():
            plan = self.kernel.input_plans[name]
            if plan.is_ragged:
                names.extend([plan.row_name, plan.shape_name])
        if self.kernel.output_plan.is_ragged:
            names.extend([self.kernel.output_plan.row_name,
                          self.kernel.output_plan.shape_name])
        return list(dict.fromkeys(names))

    def _emit_bounds(self, em: _Emitter) -> None:
        for dim in self.inner_dims:
            loop = next(l for l in self.kernel.loops[1:] if l.dim is dim)
            em.emit(f"{self._bound_var[dim]} = {self._bound_code(loop.bound)}")
        for dim, bound in self.kernel.reduction_bounds.items():
            em.emit(f"{self._bound_var[dim]} = {self._bound_code(bound)}")

    def _bound_code(self, bound: BoundSpec) -> str:
        if bound.is_const:
            return str(bound.value)
        return f"int(_aux_{self._safe(bound.table_name)}[_b])"

    def _emit_views(self, em: _Emitter, accessed: Sequence[str]) -> None:
        for name in accessed:
            plan = self.kernel.input_plans[name]
            if plan.is_ragged:
                em.emit(self._view_assignment(name, plan))
        out_plan = self.kernel.output_plan
        if out_plan.is_ragged:
            em.emit(self._view_assignment(out_plan.spec.name, out_plan))

    def _view_assignment(self, name: str, plan: TensorPlan) -> str:
        safe = self._safe(name)
        return (f"_v_{safe} = _slice_view(_buf_{safe}, "
                f"_aux_{self._safe(plan.row_name)}, "
                f"_aux_{self._safe(plan.shape_name)}, _b)")

    # -- body -----------------------------------------------------------------

    def _emit_body(self, em: _Emitter) -> None:
        ctx_out = self.inner_dims
        self._reduce_code = {}
        self._index_arrays = {}
        # Loop variables used as *values* in the body become arange arrays.
        # (Loop variables inside tensor-access indices become slices instead,
        # so the walk does not descend into accesses.)
        for expr in self._walk_values(self.kernel.body):
            if (isinstance(expr, LoopVar) and expr.dim is not self.gov_dim
                    and expr.dim in self._bound_var
                    and expr.dim not in self._index_arrays):
                var = "_ix" + self._bound_var[expr.dim][2:]
                em.emit(f"{var} = np.arange({self._bound_var[expr.dim]})")
                self._index_arrays[expr.dim] = var
        for i, red in enumerate(self.reduces):
            self._emit_reduce(em, red, f"_red{i}", ctx_out)
        value_code = self._expr_code(self.kernel.body, ctx_out)
        self._emit_store(em, value_code)

    def _emit_reduce(self, em: _Emitter, red: Reduce, temp: str,
                     ctx_out: Tuple[Dim, ...]) -> None:
        axes = tuple(a.dim for a in red.axes)
        for dim in axes:
            if dim not in self.kernel.reduction_bounds:
                raise VectorizeError(
                    f"reduction axis {dim.name} has no materialised bound"
                )
        if self._try_emit_einsum(em, red, temp, ctx_out, axes):
            return
        ctx_red = ctx_out + axes
        body_code = self._expr_code(red.body, ctx_red)
        shape = self._shape_code(ctx_red)
        axis_positions = tuple(range(len(ctx_out), len(ctx_red)))
        axis_code = (str(axis_positions[0]) if len(axis_positions) == 1
                     else repr(axis_positions))
        # Match the scalar backend's accumulator semantics (including empty
        # reductions): sum starts at ``init``, max at -inf, min at ``init``.
        if red.combiner == "sum":
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".sum(axis={axis_code})")
            if float(red.init) != 0.0:
                em.emit(f"{temp} = {temp} + {self._float_code(red.init)}")
        elif red.combiner == "max":
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".max(axis={axis_code}, initial=-np.inf)")
        else:
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".min(axis={axis_code}, "
                    f"initial={self._float_code(red.init)})")
        self._reduce_code[id(red)] = temp

    @staticmethod
    def _float_code(value: float) -> str:
        value = float(value)
        if np.isinf(value):
            return "-np.inf" if value < 0 else "np.inf"
        return repr(value)

    def _try_emit_einsum(self, em: _Emitter, red: Reduce, temp: str,
                         ctx_out: Tuple[Dim, ...], axes: Tuple[Dim, ...]) -> bool:
        if red.combiner != "sum":
            return False
        flattened = _flatten_product(red.body)
        if flattened is None:
            return False
        consts, accesses = flattened
        if not accesses:
            return False
        operand_dims = [self._access_dims(a) for a in accesses]
        union: List[Dim] = []
        for dims in operand_dims:
            for d in dims:
                if d not in union:
                    union.append(d)
        if any(axis not in union for axis in axes):
            # A reduction axis the body never indexes multiplies the result
            # by its trip count; the broadcast path handles that correctly.
            return False
        letters: Dict[Dim, str] = {}
        for d in list(ctx_out) + list(axes):
            letters[d] = chr(ord("a") + len(letters))
        for d in union:
            if d not in letters:
                raise VectorizeError(
                    f"access dimension {d.name} is neither a loop nor a "
                    "reduction dimension"
                )
        subs = ",".join("".join(letters[d] for d in dims)
                        for dims in operand_dims)
        out_dims = [d for d in ctx_out if d in union and d not in axes]
        out_sub = "".join(letters[d] for d in out_dims)
        operands = ", ".join(self._access_raw_code(a) for a in accesses)
        scale = ""
        factor = float(np.prod(consts)) if consts else 1.0
        if factor != 1.0:
            scale = f" * {factor!r}"
        em.emit(f"{temp} = np.einsum({subs + '->' + out_sub!r}, {operands}, "
                f"optimize=True){scale}")
        if float(red.init) != 0.0:
            em.emit(f"{temp} = {temp} + {float(red.init)!r}")
        self._reduce_code[id(red)] = self._aligned_code(temp, tuple(out_dims),
                                                        ctx_out)
        return True

    # -- expressions -----------------------------------------------------------

    def _expr_code(self, expr: Expr, ctx: Tuple[Dim, ...]) -> str:
        if isinstance(expr, Reduce):
            code = self._reduce_code.get(id(expr))
            if code is None:
                raise VectorizeError("reduction used before it was emitted")
            return code
        if isinstance(expr, Const):
            return repr(float(expr.value))
        if isinstance(expr, LoopVar):
            return self._loop_var_code(expr.dim, ctx)
        if isinstance(expr, BinOp):
            lhs = self._expr_code(expr.lhs, ctx)
            rhs = self._expr_code(expr.rhs, ctx)
            if expr.op == "max":
                return f"np.maximum({lhs}, {rhs})"
            if expr.op == "min":
                return f"np.minimum({lhs}, {rhs})"
            if expr.op not in ("+", "-", "*", "/"):
                raise VectorizeError(f"unknown operator {expr.op!r}")
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, Call):
            args = ", ".join(self._expr_code(a, ctx) for a in expr.args)
            if expr.fn == "relu":
                return f"np.maximum(0.0, {args})"
            fn = _NP_INTRINSICS.get(expr.fn)
            if fn is None:
                raise VectorizeError(f"unknown intrinsic {expr.fn!r}")
            return f"{fn}({args})"
        if isinstance(expr, TensorAccess):
            dims = self._access_dims(expr)
            return self._aligned_code(self._access_raw_code(expr), dims, ctx)
        raise VectorizeError(f"cannot vectorize expression {expr!r}")

    def _loop_var_code(self, dim: Dim, ctx: Tuple[Dim, ...]) -> str:
        if dim is self.gov_dim:
            return "float(_b)"
        if dim not in ctx:
            raise VectorizeError(
                f"loop variable {dim.name} is not available here"
            )
        var = self._index_arrays.get(dim)
        if var is None:
            raise VectorizeError(
                f"index array for {dim.name} was not pre-emitted"
            )
        return self._aligned_code(var, (dim,), ctx)

    # -- tensor accesses --------------------------------------------------------

    def _access_dims(self, access: TensorAccess) -> Tuple[Dim, ...]:
        """Non-governing loop/reduction dims indexing ``access``, in axis order."""
        dims: List[Dim] = []
        for idx in access.indices:
            if isinstance(idx, LoopVar) and idx.dim is not self.gov_dim:
                if idx.dim in dims:
                    # Diagonal accesses (A[b, i, i]) would need a gather,
                    # not a slice view; leave them to the scalar backend.
                    raise VectorizeError(
                        f"access to {access.tensor.name!r} indexes "
                        f"{idx.dim.name} more than once"
                    )
                dims.append(idx.dim)
        return tuple(dims)

    def _access_raw_code(self, access: TensorAccess) -> str:
        """Code for the access as an array whose axes follow the tensor's own
        axis order (governing and constant indices collapsed)."""
        plan = self.kernel.input_plans.get(access.tensor.name)
        if plan is None:
            raise VectorizeError(
                f"access to unknown tensor {access.tensor.name!r}"
            )
        if plan.is_ragged:
            first = access.indices[0]
            if not (isinstance(first, LoopVar) and first.dim is self.gov_dim):
                raise VectorizeError(
                    f"ragged access to {access.tensor.name!r} is not "
                    "governed by the outer loop"
                )
            indices = access.indices[1:]
        else:
            indices = access.indices
        for col, idx in enumerate(indices):
            self._check_index_fits(plan, col, idx)
        subs = [self._index_sub(idx, access) for idx in indices]
        prefix = "_v_" if plan.is_ragged else "_nd_"
        name = f"{prefix}{self._safe(access.tensor.name)}"
        return f"{name}[{', '.join(subs)}]" if subs else name

    def _bound_of(self, dim: Dim) -> BoundSpec:
        for loop in self.kernel.loops[1:]:
            if loop.dim is dim:
                return loop.bound
        bound = self.kernel.reduction_bounds.get(dim)
        if bound is None:
            raise VectorizeError(f"{dim.name} is not a vectorized loop")
        return bound

    def _bound_values(self, bound: BoundSpec) -> np.ndarray:
        if bound.is_const:
            return np.asarray([bound.value], dtype=np.int64)
        return np.asarray(self.kernel.aux_arrays[bound.table_name],
                          dtype=np.int64)

    def _check_index_fits(self, plan: TensorPlan, col: int, idx: Expr) -> None:
        """Reject (-> scalar fallback) accesses whose loop bound can exceed
        the instance's storage extent -- slicing a view would silently
        truncate where the scalar backend's flat-offset arithmetic does not.
        Happens when a loop is padded without matching storage padding."""
        if isinstance(idx, Const):
            needed = np.asarray([int(idx.value) + 1], dtype=np.int64)
        elif isinstance(idx, LoopVar) and idx.dim is not self.gov_dim:
            needed = self._bound_values(self._bound_of(idx.dim))
        else:
            return
        if plan.is_ragged:
            available = np.asarray(
                self.kernel.aux_arrays[plan.shape_name][:, col],
                dtype=np.int64)
        else:
            available = np.asarray([plan.layout.dense_shape()[col]],
                                   dtype=np.int64)
        n = min(needed.size, available.size) or 1
        needed = needed if needed.size == 1 else needed[:n]
        available = available if available.size == 1 else available[:n]
        if np.any(needed > available):
            raise VectorizeError(
                f"loop bound exceeds the storage extent of "
                f"{plan.spec.name!r} axis {col} (loop padding without "
                "matching storage padding)"
            )

    def _index_sub(self, idx: Expr, access: TensorAccess) -> str:
        if isinstance(idx, Const):
            return str(int(idx.value))
        if isinstance(idx, LoopVar):
            if idx.dim is self.gov_dim:
                return "_b"
            var = self._bound_var.get(idx.dim)
            if var is None:
                raise VectorizeError(
                    f"access to {access.tensor.name!r} indexes "
                    f"{idx.dim.name}, which is not a vectorized loop"
                )
            return f":{var}"
        raise VectorizeError(
            f"unsupported index expression {idx!r} on {access.tensor.name!r}"
        )

    # -- alignment --------------------------------------------------------------

    def _aligned_code(self, raw: str, raw_dims: Tuple[Dim, ...],
                      ctx: Tuple[Dim, ...]) -> str:
        """Align an array whose axes are ``raw_dims`` to the ``ctx`` axis order
        (transposing and inserting broadcast axes as needed)."""
        if not raw_dims:
            return raw
        for d in raw_dims:
            if d not in ctx:
                raise VectorizeError(
                    f"dimension {d.name} is out of scope in this context"
                )
        order = [d for d in ctx if d in raw_dims]
        perm = [raw_dims.index(d) for d in order]
        code = raw
        if perm != sorted(perm):
            code = f"{code}.transpose({', '.join(map(str, perm))})"
        if len(order) == len(ctx):
            return code
        subs = ", ".join(":" if d in raw_dims else "None" for d in ctx)
        return f"{code}[{subs}]"

    def _shape_code(self, ctx: Tuple[Dim, ...]) -> str:
        parts = [self._bound_var[d] for d in ctx]
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    # -- store -------------------------------------------------------------------

    def _emit_store(self, em: _Emitter, value_code: str) -> None:
        kernel = self.kernel
        out_plan = kernel.output_plan
        safe = self._safe(out_plan.spec.name)
        store_dims = kernel.output_dims[1:]
        ctx_out = self.inner_dims
        for col, dim in enumerate(store_dims):
            # Ragged shape columns exclude the governing axis; a dense
            # output's shape includes it at position 0.
            axis = col if out_plan.is_ragged else col + 1
            self._check_index_fits(out_plan, axis, LoopVar(dim))
        if not store_dims:
            target = f"_v_{safe}" if out_plan.is_ragged else f"_nd_{safe}[_b]"
            em.emit(f"{target} = {value_code}")
            return
        em.emit(f"_val = np.broadcast_to({value_code}, "
                f"{self._shape_code(ctx_out)})")
        perm = [ctx_out.index(d) for d in store_dims]
        val = "_val"
        if perm != sorted(perm):
            val = f"_val.transpose({', '.join(map(str, perm))})"
        subs = ", ".join(f":{self._bound_var[d]}" for d in store_dims)
        if out_plan.is_ragged:
            em.emit(f"_v_{safe}[{subs}] = {val}")
        else:
            em.emit(f"_nd_{safe}[_b, {subs}] = {val}")


class VectorBackend(CodegenBackend):
    """NumPy-vectorized backend with automatic scalar fallback.

    ``generate`` first attempts vectorized emission; a
    :class:`VectorizeError` (guards, remaps, fused or split loops, exotic
    index expressions...) silently falls back to the scalar reference
    backend, whose result is marked ``backend="scalar"``.
    """

    name = "vector"

    def __init__(self, fallback: Optional[CodegenBackend] = None):
        self.fallback = fallback or ScalarBackend()
        #: counts of vectorized vs fallen-back kernels, for introspection
        self.vectorized_count = 0
        self.fallback_count = 0

    def generate(self, kernel: LoweredKernel) -> GeneratedKernel:
        try:
            generated = VectorCodeGenerator(kernel).generate()
        except VectorizeError:
            self.fallback_count += 1
            return self.fallback.generate(kernel)
        self.vectorized_count += 1
        return generated


def can_vectorize(kernel: LoweredKernel) -> bool:
    """Whether the vector backend can emit ``kernel`` without falling back."""
    try:
        VectorCodeGenerator(kernel).generate_source()
    except VectorizeError:
        return False
    return True
