"""Vectorized NumPy code generation backend.

Where the scalar backend (:mod:`repro.core.codegen`) emits one Python
``for`` statement per loop and one flat-buffer load per access, this
backend collapses the lowered loop nest into NumPy operations.  It has two
emission modes:

* **bucketed governing loop** (the common case): governing-loop indices are
  grouped into *buckets* of identical raggedness signature (identical bound
  -table and storage-shape entries, see
  :func:`repro.core.prelude.bucket_by_signature`).  Each bucket executes as
  one stacked operation -- the ragged slices are gathered into a dense
  ``(bucket, ...)`` array, inner and reduction loops become broadcast axes
  or a single ``np.einsum`` (which dispatches matmul-shaped contractions to
  BLAS, batched over the bucket axis), and the result is scattered back.
  The remaining Python loop is O(distinct signatures), not O(batch).
* **flat fused gather**: a fused governing vloop (``fuse_loops`` of the
  governing cloop with its vloop) executes as a single flat gather over the
  prelude's ``ffo`` / ``ffi`` fusion maps -- no Python loop at all.

Construct coverage (the matrix below is asserted by the differential tests
in ``tests/test_codegen_vector.py``):

============================  =========  =====================================
construct                     backend    how
============================  =========  =====================================
constant / table inner loops  vector     broadcast axes / slice bounds
sum / max / min reductions    vector     ``einsum`` or broadcast + reduce
guarded split vloops          vector     split pair collapsed back to the
                                         original domain; the guard becomes
                                         the trailing slice ``[:bound]``
unguarded (padded) splits     vector     collapsed, bound = tiles * factor
fused governing vloops        vector     flat gather through ``ffo``/``ffi``
thread remaps                 vector     order-only: stores are disjoint, so
                                         the permutation is a no-op for the
                                         result (noted in the source)
table-bound governing chains  vector     bucketed by bound signature
masked (triangular) SDPA      vector     mask-add operator + softmax chain
                                         (see ``repro.ops.softmax``)
loop pad > storage pad        scalar     slice would silently truncate
diagonal accesses A[b, i, i]  scalar     needs a gather per element
nested splits                 scalar     split of a split-derived loop
non-governing loop fusion     scalar     fusion maps assume the governing dim
variable bounds under fusion  scalar     per-f bounds break rectangularity
remap on variable inner loop  scalar     permutation outruns the bound
============================  =========  =====================================

Anything in the ``scalar`` rows raises :class:`VectorizeError` and
:class:`VectorBackend` transparently falls back to the scalar backend
(recording the reason), which is why the scalar emitter stays the reference
implementation for differential testing.

Bucketing note: buckets are computed at *compile* time from the lowered
kernel's auxiliary arrays (they are baked into the kernel, so the grouping
can never go stale) and injected into the kernel namespace as ``_BUCKETS``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codegen import (
    CodegenBackend,
    GeneratedKernel,
    ScalarBackend,
    _Emitter,
)
from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.ir import (
    BinOp,
    Call,
    Const,
    Expr,
    LoopVar,
    Reduce,
    TensorAccess,
    reductions_in,
)
from repro.core.lowering import BoundSpec, LoweredKernel, LoopSpec, TensorPlan
from repro.core.prelude import bucket_by_signature

_NP_INTRINSICS = {
    "exp": "np.exp",
    "sqrt": "np.sqrt",
    "tanh": "np.tanh",
    "log": "np.log",
}


class VectorizeError(LoweringError):
    """The lowered kernel contains a construct this backend cannot vectorize."""


# ---------------------------------------------------------------------------
# Runtime helpers (injected into the generated kernel's namespace)
# ---------------------------------------------------------------------------


def _gather_slices(buf: np.ndarray, row_offsets: np.ndarray,
                   shapes: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Stack the ragged slices at governing indices ``idx``.

    All indexed slices must share one (storage-padded) shape -- guaranteed
    by signature bucketing.  A single-instance bucket returns a zero-copy
    view; larger buckets gather into a dense ``(len(idx), *shape)`` array.
    """
    shape = tuple(int(s) for s in shapes[idx[0]])
    size = 1
    for s in shape:
        size *= s
    if idx.size == 1:
        start = int(row_offsets[idx[0]])
        return buf[start:start + size].reshape((1,) + shape)
    flat = buf[row_offsets[idx][:, None] + np.arange(size)[None, :]]
    return flat.reshape((idx.size,) + shape)


def _scatter_slices(buf: np.ndarray, row_offsets: np.ndarray,
                    shapes: np.ndarray, idx: np.ndarray,
                    bounds: Tuple[int, ...], values: np.ndarray) -> None:
    """Scatter ``values`` into the ``[:b1, :b2, ...]`` region of each slice.

    The inverse of :func:`_gather_slices` restricted to the loop-bounded
    region (the vectorized equivalent of a guard: elements past the bounds
    are never touched).
    """
    shape = tuple(int(s) for s in shapes[idx[0]])
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    if idx.size == 1:
        start = int(row_offsets[idx[0]])
        size = 1
        for s in shape:
            size *= s
        view = buf[start:start + size].reshape(shape)
        view[tuple(slice(0, int(b)) for b in bounds)] = values[0]
        return
    off = row_offsets[idx].reshape((idx.size,) + (1,) * len(bounds))
    for axis, n in enumerate(bounds):
        view = [1] * (len(bounds) + 1)
        view[axis + 1] = int(n)
        off = off + np.arange(int(n)).reshape(view) * strides[axis]
    buf[off] = values


def _flatten_product(expr: Expr):
    """Decompose ``expr`` into (constant factors, tensor accesses) if it is a
    pure product of those; return ``None`` otherwise."""
    if isinstance(expr, Const):
        return [float(expr.value)], []
    if isinstance(expr, TensorAccess):
        return [], [expr]
    if isinstance(expr, BinOp) and expr.op == "*":
        left = _flatten_product(expr.lhs)
        right = _flatten_product(expr.rhs)
        if left is None or right is None:
            return None
        return left[0] + right[0], left[1] + right[1]
    return None


@dataclass
class _VecBound:
    """An effective loop bound: a :class:`BoundSpec` times a constant scale.

    The scale collapses an unguarded split pair back into its original
    domain (``tiles * factor``); guarded pairs use the guard bound with
    scale 1 (the guard *is* the original domain).
    """

    base: BoundSpec
    scale: int = 1

    @property
    def is_const(self) -> bool:
        return self.base.is_const

    def const_value(self) -> int:
        return int(self.base.value) * self.scale

    def values(self, kernel: LoweredKernel) -> np.ndarray:
        if self.base.is_const:
            return np.asarray([self.const_value()], dtype=np.int64)
        table = np.asarray(kernel.aux_arrays[self.base.table_name],
                           dtype=np.int64)
        return table * self.scale


@dataclass
class _AliasSource:
    """A fused-region internal value held in a loop-local temporary.

    ``var`` names the temporary: shape ``(_nb, *padded_extents)`` per
    bucket, zero-filled with the loop-bounded region assigned in -- a
    bit-exact stand-in for the scatter/gather round-trip through an
    arena slab.  ``tables`` holds, per store axis, the producer's
    storage-padded extents over every governing index; consumers check
    both their own padding (must be equal) and their loop bounds (must
    fit) against them at compile time.
    """

    var: str
    tables: Tuple[np.ndarray, ...]


@dataclass
class _AliasOut:
    """Where a member kernel's store goes inside a fused region.

    ``var`` is the temporary receiving the (float32-cast) store values;
    with ``external=True`` the store *also* scatters into the real
    output buffer (the value has readers outside the region too).
    """

    var: str
    external: bool = False


class VectorCodeGenerator:
    """Emits the vectorized Python source for one lowered kernel.

    With a ``prefix`` the generator namespaces every emitted local
    (buffers, aux views, bounds, index arrays, reduction temporaries)
    so several member kernels can share one function body and one
    bucket loop -- the fused-region emission of
    :func:`generate_fused_kernel`.  ``value_of`` remaps tensor names to
    program value names for the ``buffers`` dict, ``aux_ns`` prefixes
    the ``aux`` dict keys, ``alias`` redirects reads of internalised
    values to their producer's temporary, and ``alias_out`` redirects
    (or tees) the store into a temporary.
    """

    def __init__(self, kernel: LoweredKernel, prefix: str = "",
                 value_of: Optional[Dict[str, str]] = None,
                 aux_ns: str = "",
                 alias: Optional[Dict[str, _AliasSource]] = None,
                 alias_out: Optional[_AliasOut] = None):
        self.kernel = kernel
        self._prefix = prefix
        self._values = value_of or {}
        self._aux_ns = aux_ns
        self._alias = alias or {}
        self._alias_out = alias_out
        #: synthetic leading axis: the bucket axis (loop mode) or the fused
        #: iteration axis (fused mode)
        self._stack_dim = Dim("stack")
        self._analyze()
        #: id(Reduce) -> code of its (out-context aligned) temporary
        self._reduce_code: Dict[int, str] = {}
        #: dims of the per-instance loop index arrays already emitted
        self._index_arrays: Dict[Dim, str] = {}
        self._gov_value_var: Optional[str] = None
        self._inner_value_var: Optional[str] = None
        self._buckets_cache: Optional[List[np.ndarray]] = None
        self._fused_lengths_cache: Optional[np.ndarray] = None

    # -- analysis ------------------------------------------------------------

    def _analyze(self) -> None:
        kernel = self.kernel
        if not kernel.loops:
            raise VectorizeError("kernel has no loops")
        gov = kernel.loops[0]
        if gov.guard is not None:
            raise VectorizeError("outer loop carries a guard")
        if not gov.bound.is_const:
            raise VectorizeError("outer loop bound must be constant")
        if gov.fusion is not None:
            self.mode = "fused"
            self._analyze_fused(gov)
        else:
            self.mode = "loop"
            self._analyze_loop(gov)
        reduces = reductions_in(kernel.body)
        for red in reduces:
            if red.combiner not in ("sum", "max", "min"):
                raise VectorizeError(f"unknown combiner {red.combiner!r}")
            if reductions_in(red.body):
                raise VectorizeError("nested reductions are not vectorized")
        self.reduces = reduces
        # Per-dim bound variable names (collision-safe).
        self._bound_var: Dict[Dim, str] = {
            self._stack_dim: "_nb" if self.mode == "loop" else "_F",
        }
        taken: Dict[str, Dim] = {}
        for dim in self.inner_dims + self.reduce_dims:
            base = f"_n_{self._safe(dim.name)}"
            name = base if taken.get(base, dim) is dim else f"{base}_{dim.uid}"
            taken[name] = dim
            self._bound_var[dim] = name

    def _analyze_loop(self, gov: LoopSpec) -> None:
        kernel = self.kernel
        if kernel.output_dims_fused:
            raise VectorizeError(
                "fused output dimensions without a fused governing loop")
        if gov.split is not None:
            raise VectorizeError("the governing loop itself is split")
        self.gov_dim = gov.dim
        self.gov_count = gov.bound.value
        if kernel.output_dims[0] is not self.gov_dim:
            raise VectorizeError("outer loop is not the output governing dim")
        # Collapse split pairs back into their original dims; everything else
        # maps 1:1.  ``eff`` keeps loop order (split pairs at first member).
        eff: Dict[Dim, Optional[_VecBound]] = {}
        pending: Dict[Dim, Dict[str, LoopSpec]] = {}
        for loop in kernel.loops[1:]:
            if loop.fusion is not None:
                raise VectorizeError(
                    f"inner loop {loop.dim.name} is fused")
            if loop.remap_name is not None and not loop.bound.is_const:
                raise VectorizeError(
                    f"thread remap on variable inner loop {loop.dim.name}")
            if loop.split is None:
                if loop.guard is not None:
                    raise VectorizeError(
                        f"guard on unsplit loop {loop.dim.name}")
                self._check_bound(loop.bound, loop.dim)
                eff[loop.dim] = _VecBound(loop.bound)
                continue
            link = loop.split
            if link.original not in kernel.output_dims:
                raise VectorizeError("nested loop splits are not vectorized")
            pending.setdefault(link.original, {})[link.role] = loop
            eff.setdefault(link.original, None)
        for orig, group in pending.items():
            if "outer" not in group or "inner" not in group:
                raise VectorizeError(
                    f"split of {orig.name} is only partially in the nest")
            outer, inner = group["outer"], group["inner"]
            if outer.guard is not None:
                raise VectorizeError("guard attached to the outer split loop")
            factor = outer.split.factor
            guard = inner.guard
            if guard is not None:
                if (guard.outer_var_dim is not outer.dim
                        or guard.inner_var_dim is not inner.dim
                        or guard.factor != factor):
                    raise VectorizeError("guard does not match its split pair")
                self._check_bound(guard.bound, orig)
                eff[orig] = _VecBound(guard.bound)
            else:
                if not inner.bound.is_const or inner.bound.value != factor:
                    raise VectorizeError(
                        "inner split bound is not the split factor")
                self._check_bound(outer.bound, orig)
                eff[orig] = _VecBound(outer.bound, scale=factor)
        self.inner_dims: Tuple[Dim, ...] = tuple(eff.keys())
        self._eff_bounds: Dict[Dim, _VecBound] = eff  # type: ignore[assignment]
        if set(kernel.output_dims[1:]) != set(self.inner_dims):
            raise VectorizeError(
                "loop dims do not map 1:1 onto output dims")
        self.reduce_dims: Tuple[Dim, ...] = tuple(kernel.reduction_bounds)
        self._red_bounds: Dict[Dim, _VecBound] = {}
        for dim, bound in kernel.reduction_bounds.items():
            self._check_bound(bound, dim)
            self._red_bounds[dim] = _VecBound(bound)

    def _analyze_fused(self, gov: LoopSpec) -> None:
        kernel = self.kernel
        fusion = gov.fusion
        self.fused_extent = gov.bound.value
        self.map_name = fusion.map_name
        self.gov_dim = fusion.outer_dim
        self.inner_fused_dim = fusion.inner_dim
        if (kernel.output_dims[0] is not fusion.outer_dim
                or len(kernel.output_dims) < 2
                or kernel.output_dims[1] is not fusion.inner_dim):
            raise VectorizeError(
                "fused loop does not cover the two leading output dims")
        eff: Dict[Dim, _VecBound] = {}
        for loop in kernel.loops[1:]:
            if loop.guard or loop.fusion or loop.split:
                raise VectorizeError(
                    f"loop {loop.dim.name} carries a guard/fusion/split "
                    "under a fused governing loop")
            if not loop.bound.is_const:
                raise VectorizeError(
                    "variable inner bound under a fused governing loop")
            eff[loop.dim] = _VecBound(loop.bound)
        self.inner_dims = tuple(eff.keys())
        self._eff_bounds = eff
        if set(kernel.output_dims[2:]) != set(self.inner_dims):
            raise VectorizeError("loop dims do not map 1:1 onto output dims")
        self.reduce_dims = tuple(kernel.reduction_bounds)
        self._red_bounds = {}
        for dim, bound in kernel.reduction_bounds.items():
            if not bound.is_const:
                raise VectorizeError(
                    "variable reduction bound under a fused governing loop")
            self._red_bounds[dim] = _VecBound(bound)
        if kernel.output_dims_fused:
            total = int(kernel.output_plan.layout.dense_shape()[0])
            if total != self.fused_extent:
                raise VectorizeError(
                    "fused loop extent differs from fused storage extent")

    def _check_bound(self, bound: BoundSpec, dim: Dim) -> None:
        if not bound.is_const and bound.governing is not self.gov_dim:
            raise VectorizeError(
                f"bound of {dim.name} is governed by {bound.governing.name}, "
                "not the outermost loop"
            )

    def _vb_of(self, dim: Dim) -> _VecBound:
        vb = self._eff_bounds.get(dim)
        if vb is None:
            vb = self._red_bounds.get(dim)
        if vb is None:
            raise VectorizeError(f"{dim.name} is not a vectorized loop")
        return vb

    # -- public API -----------------------------------------------------------

    def generate(self) -> GeneratedKernel:
        source = self.generate_source()
        namespace: Dict[str, object] = {
            "np": np,
            "_gather_slices": _gather_slices,
            "_scatter_slices": _scatter_slices,
        }
        if self.mode == "loop":
            namespace["_BUCKETS"] = self._buckets()
        exec(compile(source, f"<cora-vec:{self.kernel.name}>", "exec"), namespace)
        fn = namespace[self._fn_name()]
        return GeneratedKernel(name=self.kernel.name, source=source, fn=fn,
                               backend="vector")

    def _buckets(self) -> List[np.ndarray]:
        if self._buckets_cache is None:
            arrays = [self.kernel.aux_arrays[n]
                      for n in self._signature_tables()]
            self._buckets_cache = bucket_by_signature(self.gov_count, arrays)
        return self._buckets_cache

    def _signature_tables(self) -> List[str]:
        names: List[str] = []
        for vb in list(self._eff_bounds.values()) + list(self._red_bounds.values()):
            if not vb.base.is_const:
                names.append(vb.base.table_name)
        for name in self._accessed_tensors():
            plan = self.kernel.input_plans[name]
            if plan.is_ragged:
                names.append(plan.shape_name)
        if self.kernel.output_plan.is_ragged:
            names.append(self.kernel.output_plan.shape_name)
        return list(dict.fromkeys(names))

    @staticmethod
    def _sanitize(name: str) -> str:
        return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

    def _safe(self, name: str) -> str:
        clean = self._sanitize(name)
        return f"{self._prefix}_{clean}" if self._prefix else clean

    def _local(self, base: str) -> str:
        """Namespace a fixed-name local (``_ixb``, ``_val``, ``_red0``...)."""
        return f"{base}_{self._prefix}" if self._prefix else base

    def _aux_key(self, name: str) -> str:
        return f"{self._aux_ns}{name}"

    def _value_name(self, tensor_name: str) -> str:
        """The ``buffers`` dict key for a tensor (program value name when
        emitted as a fused-region member, the tensor name otherwise)."""
        return self._values.get(tensor_name, tensor_name)

    def _fn_name(self) -> str:
        return f"cora_vkernel_{self._sanitize(self.kernel.name)}"

    # -- source emission -------------------------------------------------------

    def generate_source(self) -> str:
        kernel = self.kernel
        em = _Emitter()
        em.emit(f"def {self._fn_name()}(buffers, aux):")
        em.push()
        em.emit(f'"""Vectorized (NumPy) CoRa kernel for operator '
                f'{kernel.name!r}."""')
        accessed = self._accessed_tensors()
        self.emit_prolog(em, accessed)
        if self.mode == "fused":
            self._emit_fused_prolog(em)
            self._emit_body(em)
        else:
            gov = kernel.loops[0]
            if gov.remap_name is not None:
                em.emit(f"# thread remap {gov.remap_name!r} is execution-order "
                        "only; bucketed stores are order-independent")
            em.emit(f"# {len(self._buckets()) if self._have_aux() else '?'} "
                    f"instance bucket(s) over {self.gov_count} governing "
                    "indices")
            em.emit("for _bs in _BUCKETS:")
            em.push()
            em.emit("_nb = _bs.size")
            em.emit("_b0 = int(_bs[0])")
            self.emit_bucket_body(em, accessed)
            em.pop()
        em.pop()
        return em.source()

    def emit_prolog(self, em: _Emitter, accessed: Sequence[str]) -> None:
        """Emit the per-call setup: buffer views, aux views, dense reshapes.

        Aliased tensors (fused-region internals) have no buffer -- their
        reads and stores go through loop-local temporaries instead.
        """
        kernel = self.kernel
        out_name = kernel.output_plan.spec.name
        out_has_buffer = (self._alias_out is None or self._alias_out.external)
        if out_has_buffer:
            em.emit(f"_buf_{self._safe(out_name)} = "
                    f"buffers[{self._value_name(out_name)!r}]")
        for name in kernel.input_plans:
            if name in accessed and name not in self._alias:
                em.emit(f"_buf_{self._safe(name)} = "
                        f"buffers[{self._value_name(name)!r}]")
        for name in sorted(self._aux_names_used()):
            em.emit(f"_aux_{self._safe(name)} = aux[{self._aux_key(name)!r}]")
        # Dense tensors are reshaped once, outside any instance loop.  In
        # fused mode the reshape is skipped only when *every* access to the
        # tensor goes through the flat-gather path instead.
        for name in accessed:
            plan = kernel.input_plans[name]
            if name in self._alias or plan.is_ragged:
                continue
            if self.mode != "fused" or self._dense_needs_nd(name):
                shape = ", ".join(str(s) for s in plan.layout.dense_shape())
                em.emit(f"_nd_{self._safe(name)} = "
                        f"_buf_{self._safe(name)}.reshape({shape})")
        if out_has_buffer and not kernel.output_plan.is_ragged:
            shape = ", ".join(str(s) for s in kernel.output_plan.layout.dense_shape())
            em.emit(f"_nd_{self._safe(out_name)} = "
                    f"_buf_{self._safe(out_name)}.reshape({shape})")

    def emit_bucket_body(self, em: _Emitter, accessed: Sequence[str]) -> None:
        """Emit one loop-mode bucket iteration (bounds, gathers, body).

        Assumes ``_bs`` / ``_nb`` / ``_b0`` are in scope -- shared across
        all members when composed into a fused-region kernel.
        """
        self._emit_bounds(em)
        self._emit_views(em, accessed)
        self._emit_body(em)

    def _have_aux(self) -> bool:
        try:
            for name in self._signature_tables():
                self.kernel.aux_arrays[name]
            return True
        except KeyError:
            return False

    def _dense_needs_nd(self, name: str) -> bool:
        """Whether any fused-mode access to dense tensor ``name`` takes the
        plain ``_nd_`` slicing path (no fused outer/inner index) -- such
        accesses need the reshaped view even when other accesses to the
        same tensor go through the flat gather."""
        for expr in self._walk(self.kernel.body):
            if isinstance(expr, TensorAccess) and expr.tensor.name == name:
                if not any(isinstance(idx, LoopVar)
                           and idx.dim in (self.gov_dim, self.inner_fused_dim)
                           for idx in expr.indices):
                    return True
        return False

    def _accessed_tensors(self) -> List[str]:
        seen: List[str] = []
        for expr in self._walk(self.kernel.body):
            if isinstance(expr, TensorAccess) and expr.tensor.name not in seen:
                if expr.tensor.name not in self.kernel.input_plans:
                    raise VectorizeError(
                        f"access to unknown tensor {expr.tensor.name!r}"
                    )
                seen.append(expr.tensor.name)
        return seen

    @staticmethod
    def _walk(expr: Expr):
        yield expr
        for child in expr.children():
            yield from VectorCodeGenerator._walk(child)

    @staticmethod
    def _walk_values(expr: Expr):
        """Like :meth:`_walk` but does not descend into access indices."""
        yield expr
        if isinstance(expr, TensorAccess):
            return
        for child in expr.children():
            yield from VectorCodeGenerator._walk_values(child)

    def _aux_names_used(self) -> List[str]:
        names: List[str] = []
        if self.mode == "fused":
            names.extend([f"{self.map_name}_ffo", f"{self.map_name}_ffi"])
        for vb in list(self._eff_bounds.values()) + list(self._red_bounds.values()):
            if not vb.base.is_const:
                names.append(vb.base.table_name)
        for name in self._accessed_tensors():
            if name in self._alias:
                continue  # reads come from a temporary, no gather aux
            plan = self.kernel.input_plans[name]
            if plan.is_ragged:
                if self.mode == "fused":
                    names.extend([plan.row_name, plan.stride_name])
                else:
                    names.extend([plan.row_name, plan.shape_name])
        out_plan = self.kernel.output_plan
        if out_plan.is_ragged:
            if self._alias_out is None or self._alias_out.external:
                if self.mode == "fused":
                    names.extend([out_plan.row_name, out_plan.stride_name])
                else:
                    names.extend([out_plan.row_name, out_plan.shape_name])
            elif len(self.kernel.output_dims) > 1:
                # Internal alias temporaries are padded to the storage
                # extents, read from the shape table at runtime.
                names.append(out_plan.shape_name)
        return list(dict.fromkeys(names))

    # -- bounds / views --------------------------------------------------------

    def _vb_code(self, vb: _VecBound) -> str:
        if vb.is_const:
            return str(vb.const_value())
        code = f"int(_aux_{self._safe(vb.base.table_name)}[_b0])"
        if vb.scale != 1:
            code = f"{code} * {vb.scale}"
        return code

    def _emit_bounds(self, em: _Emitter) -> None:
        for dim in self.inner_dims:
            em.emit(f"{self._bound_var[dim]} = "
                    f"{self._vb_code(self._eff_bounds[dim])}")
        for dim in self.reduce_dims:
            em.emit(f"{self._bound_var[dim]} = "
                    f"{self._vb_code(self._red_bounds[dim])}")

    def _emit_views(self, em: _Emitter, accessed: Sequence[str]) -> None:
        for name in accessed:
            if name in self._alias:
                continue  # fed from the producing member's temporary
            plan = self.kernel.input_plans[name]
            if plan.is_ragged:
                safe = self._safe(name)
                em.emit(f"_v_{safe} = _gather_slices(_buf_{safe}, "
                        f"_aux_{self._safe(plan.row_name)}, "
                        f"_aux_{self._safe(plan.shape_name)}, _bs)")

    def _emit_fused_prolog(self, em: _Emitter) -> None:
        em.emit(f"_F = {self.fused_extent}")
        em.emit(f"_ffo = _aux_{self._safe(self.map_name + '_ffo')}")
        em.emit(f"_ffi = _aux_{self._safe(self.map_name + '_ffi')}")
        for dim in self.inner_dims:
            em.emit(f"{self._bound_var[dim]} = "
                    f"{self._vb_code(self._eff_bounds[dim])}")
        for dim in self.reduce_dims:
            em.emit(f"{self._bound_var[dim]} = "
                    f"{self._vb_code(self._red_bounds[dim])}")
        # Index arrays double as gather-offset components.
        for dim in self.inner_dims + self.reduce_dims:
            var = "_ix" + self._bound_var[dim][2:]
            em.emit(f"{var} = np.arange({self._bound_var[dim]})")
            self._index_arrays[dim] = var

    # -- body -----------------------------------------------------------------

    def _ctx_out(self) -> Tuple[Dim, ...]:
        return (self._stack_dim,) + self.inner_dims

    def _emit_body(self, em: _Emitter) -> None:
        ctx_out = self._ctx_out()
        self._reduce_code = {}
        if self.mode == "loop":
            self._index_arrays = {}
        self._gov_value_var = None
        self._inner_value_var = None
        # Loop variables used as *values* in the body become arange arrays
        # (governing-loop values become per-instance index arrays).  The walk
        # does not descend into accesses: loop variables inside tensor-access
        # indices become slices / gather offsets instead.
        for expr in self._walk_values(self.kernel.body):
            if not isinstance(expr, LoopVar):
                continue
            dim = expr.dim
            if dim is self.gov_dim and self._gov_value_var is None:
                self._gov_value_var = self._local("_ixb")
                src = "_bs" if self.mode == "loop" else "_ffo"
                em.emit(f"{self._gov_value_var} = {src}.astype(np.float64)")
            elif (self.mode == "fused" and dim is self.inner_fused_dim
                    and self._inner_value_var is None):
                self._inner_value_var = self._local("_ixf")
                em.emit(f"{self._inner_value_var} = _ffi.astype(np.float64)")
            elif (dim in self._bound_var and dim is not self._stack_dim
                    and dim not in self._index_arrays):
                var = "_ix" + self._bound_var[dim][2:]
                em.emit(f"{var} = np.arange({self._bound_var[dim]})")
                self._index_arrays[dim] = var
        for i, red in enumerate(self.reduces):
            self._emit_reduce(em, red, self._local(f"_red{i}"), ctx_out)
        value_code = self._expr_code(self.kernel.body, ctx_out)
        self._emit_store(em, value_code)

    def _emit_reduce(self, em: _Emitter, red: Reduce, temp: str,
                     ctx_out: Tuple[Dim, ...]) -> None:
        axes = tuple(a.dim for a in red.axes)
        for dim in axes:
            if dim not in self.kernel.reduction_bounds:
                raise VectorizeError(
                    f"reduction axis {dim.name} has no materialised bound"
                )
        if self._try_emit_einsum(em, red, temp, ctx_out, axes):
            return
        ctx_red = ctx_out + axes
        body_code = self._expr_code(red.body, ctx_red)
        shape = self._shape_code(ctx_red)
        axis_positions = tuple(range(len(ctx_out), len(ctx_red)))
        axis_code = (str(axis_positions[0]) if len(axis_positions) == 1
                     else repr(axis_positions))
        # Match the scalar backend's accumulator semantics (including empty
        # reductions): sum starts at ``init``, max at -inf, min at ``init``.
        if red.combiner == "sum":
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".sum(axis={axis_code})")
            if float(red.init) != 0.0:
                em.emit(f"{temp} = {temp} + {self._float_code(red.init)}")
        elif red.combiner == "max":
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".max(axis={axis_code}, initial=-np.inf)")
        else:
            em.emit(f"{temp} = np.broadcast_to({body_code}, {shape})"
                    f".min(axis={axis_code}, "
                    f"initial={self._float_code(red.init)})")
        self._reduce_code[id(red)] = temp

    @staticmethod
    def _float_code(value: float) -> str:
        value = float(value)
        if np.isinf(value):
            return "-np.inf" if value < 0 else "np.inf"
        return repr(value)

    def _try_emit_einsum(self, em: _Emitter, red: Reduce, temp: str,
                         ctx_out: Tuple[Dim, ...], axes: Tuple[Dim, ...]) -> bool:
        if red.combiner != "sum":
            return False
        flattened = _flatten_product(red.body)
        if flattened is None:
            return False
        consts, accesses = flattened
        if not accesses:
            return False
        infos = [self._access_info(a) for a in accesses]
        operand_dims = [dims for _, dims in infos]
        union: List[Dim] = []
        for dims in operand_dims:
            for d in dims:
                if d not in union:
                    union.append(d)
        if any(axis not in union for axis in axes):
            # A reduction axis the body never indexes multiplies the result
            # by its trip count; the broadcast path handles that correctly.
            return False
        letters: Dict[Dim, str] = {}
        for d in list(ctx_out) + list(axes):
            letters[d] = chr(ord("a") + len(letters))
        for d in union:
            if d not in letters:
                raise VectorizeError(
                    f"access dimension {d.name} is neither a loop nor a "
                    "reduction dimension"
                )
        subs = ",".join("".join(letters[d] for d in dims)
                        for dims in operand_dims)
        out_dims = [d for d in ctx_out if d in union and d not in axes]
        out_sub = "".join(letters[d] for d in out_dims)
        operands = ", ".join(code for code, _ in infos)
        scale = ""
        factor = float(np.prod(consts)) if consts else 1.0
        if factor != 1.0:
            scale = f" * {factor!r}"
        em.emit(f"{temp} = np.einsum({subs + '->' + out_sub!r}, {operands}, "
                f"optimize=True){scale}")
        if float(red.init) != 0.0:
            em.emit(f"{temp} = {temp} + {float(red.init)!r}")
        self._reduce_code[id(red)] = self._aligned_code(temp, tuple(out_dims),
                                                        ctx_out)
        return True

    # -- expressions -----------------------------------------------------------

    def _expr_code(self, expr: Expr, ctx: Tuple[Dim, ...]) -> str:
        if isinstance(expr, Reduce):
            code = self._reduce_code.get(id(expr))
            if code is None:
                raise VectorizeError("reduction used before it was emitted")
            return code
        if isinstance(expr, Const):
            return repr(float(expr.value))
        if isinstance(expr, LoopVar):
            return self._loop_var_code(expr.dim, ctx)
        if isinstance(expr, BinOp):
            lhs = self._expr_code(expr.lhs, ctx)
            rhs = self._expr_code(expr.rhs, ctx)
            if expr.op == "max":
                return f"np.maximum({lhs}, {rhs})"
            if expr.op == "min":
                return f"np.minimum({lhs}, {rhs})"
            if expr.op not in ("+", "-", "*", "/"):
                raise VectorizeError(f"unknown operator {expr.op!r}")
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, Call):
            args = ", ".join(self._expr_code(a, ctx) for a in expr.args)
            if expr.fn == "relu":
                return f"np.maximum(0.0, {args})"
            fn = _NP_INTRINSICS.get(expr.fn)
            if fn is None:
                raise VectorizeError(f"unknown intrinsic {expr.fn!r}")
            return f"{fn}({args})"
        if isinstance(expr, TensorAccess):
            code, dims = self._access_info(expr)
            return self._aligned_code(code, dims, ctx)
        raise VectorizeError(f"cannot vectorize expression {expr!r}")

    def _loop_var_code(self, dim: Dim, ctx: Tuple[Dim, ...]) -> str:
        if dim is self.gov_dim:
            if self._gov_value_var is None:
                raise VectorizeError("governing index array was not emitted")
            return self._aligned_code(self._gov_value_var,
                                      (self._stack_dim,), ctx)
        if self.mode == "fused" and dim is self.inner_fused_dim:
            if self._inner_value_var is None:
                raise VectorizeError("fused index array was not emitted")
            return self._aligned_code(self._inner_value_var,
                                      (self._stack_dim,), ctx)
        if dim not in ctx:
            raise VectorizeError(
                f"loop variable {dim.name} is not available here"
            )
        var = self._index_arrays.get(dim)
        if var is None:
            raise VectorizeError(
                f"index array for {dim.name} was not pre-emitted"
            )
        return self._aligned_code(var, (dim,), ctx)

    # -- tensor accesses --------------------------------------------------------

    def _access_info(self, access: TensorAccess) -> Tuple[str, Tuple[Dim, ...]]:
        """Code + axis dims for an access.

        The returned dims follow the produced array's axis order; the stack
        sentinel marks the bucket / fused axis.
        """
        plan = self.kernel.input_plans.get(access.tensor.name)
        if plan is None:
            raise VectorizeError(
                f"access to unknown tensor {access.tensor.name!r}"
            )
        if self.mode == "fused":
            return self._access_info_fused(access, plan)
        return self._access_info_loop(access, plan)

    def _access_info_loop(self, access: TensorAccess,
                          plan: TensorPlan) -> Tuple[str, Tuple[Dim, ...]]:
        alias = self._alias.get(access.tensor.name)
        if alias is not None:
            return self._access_info_alias(access, alias)
        indices = access.indices
        if plan.is_ragged:
            first = indices[0]
            if not (isinstance(first, LoopVar) and first.dim is self.gov_dim):
                raise VectorizeError(
                    f"ragged access to {access.tensor.name!r} is not "
                    "governed by the outer loop"
                )
            inner_indices = indices[1:]
            dims: List[Dim] = [self._stack_dim]
            subs: List[str] = [":"]
            col_base = 0
        else:
            inner_indices = indices
            dims = []
            subs = []
            col_base = 0
        for col, idx in enumerate(inner_indices):
            self._check_index_fits(plan, col_base + col, idx)
            if isinstance(idx, Const):
                subs.append(str(int(idx.value)))
                continue
            if not isinstance(idx, LoopVar):
                raise VectorizeError(
                    f"unsupported index expression {idx!r} on "
                    f"{access.tensor.name!r}"
                )
            if idx.dim is self.gov_dim:
                d: Dim = self._stack_dim
                subs.append("_bs")
            else:
                var = self._bound_var.get(idx.dim)
                if var is None:
                    raise VectorizeError(
                        f"access to {access.tensor.name!r} indexes "
                        f"{idx.dim.name}, which is not a vectorized loop"
                    )
                d = idx.dim
                subs.append(f":{var}")
            if d in dims:
                # Diagonal accesses (A[b, i, i]) would need a per-element
                # gather; leave them to the scalar backend.
                raise VectorizeError(
                    f"access to {access.tensor.name!r} indexes "
                    f"{d.name} more than once"
                )
            dims.append(d)
        prefix = "_v_" if plan.is_ragged else "_nd_"
        name = f"{prefix}{self._safe(access.tensor.name)}"
        code = f"{name}[{', '.join(subs)}]" if subs else name
        return code, tuple(dims)

    def _access_info_alias(self, access: TensorAccess,
                           alias: _AliasSource) -> Tuple[str, Tuple[Dim, ...]]:
        """Read a fused-region internal value straight from its producer's
        padded loop-local temporary (axes: stack, then the producer's
        store axes at their storage-padded extents).

        The temporary reproduces buffer semantics bit-for-bit -- padded
        contiguous layout with zeros in the slack, exactly like a
        gathered arena slab -- so the consumer's own storage-padded
        extents must match the producer's, and its loop bounds must stay
        within them.  Any violation rejects the fused emission (the
        grouped fallback reproduces buffer semantics exactly).
        """
        name = access.tensor.name
        plan = self.kernel.input_plans.get(name)
        indices = access.indices
        first = indices[0] if indices else None
        if not (isinstance(first, LoopVar) and first.dim is self.gov_dim):
            raise VectorizeError(
                f"fused alias read of {name!r} is not governed by the "
                "outer loop"
            )
        inner = indices[1:]
        if len(inner) != len(alias.tables):
            raise VectorizeError(
                f"fused alias read of {name!r} has rank {len(inner)}, "
                f"producer stores rank {len(alias.tables)}"
            )
        self._alias_padding_matches(name, plan, alias)
        dims: List[Dim] = [self._stack_dim]
        subs: List[str] = [":"]
        for col, idx in enumerate(inner):
            if isinstance(idx, Const):
                needed = np.asarray([int(idx.value) + 1], dtype=np.int64)
                self._alias_fit(needed, alias.tables[col], name, col)
                subs.append(str(int(idx.value)))
                continue
            if not isinstance(idx, LoopVar) or idx.dim is self.gov_dim:
                raise VectorizeError(
                    f"unsupported index expression {idx!r} on fused alias "
                    f"read of {name!r}"
                )
            var = self._bound_var.get(idx.dim)
            if var is None:
                raise VectorizeError(
                    f"fused alias read of {name!r} indexes "
                    f"{idx.dim.name}, which is not a vectorized loop"
                )
            needed = self._vb_of(idx.dim).values(self.kernel)
            self._alias_fit(needed, alias.tables[col], name, col)
            if idx.dim in dims:
                raise VectorizeError(
                    f"fused alias read of {name!r} indexes "
                    f"{idx.dim.name} more than once"
                )
            dims.append(idx.dim)
            subs.append(f":{var}")
        code = f"{alias.var}[{', '.join(subs)}]"
        if plan is not None and not plan.is_ragged:
            # The unfused plan reads dense tensors through an
            # advanced-index copy; match its contiguity.
            code = f"np.ascontiguousarray({code})"
        return code, tuple(dims)

    def _alias_padding_matches(self, name: str, plan: Optional[TensorPlan],
                               alias: _AliasSource) -> None:
        """The consumer's storage-padded extents for ``name`` must equal
        the producer's: the unfused plan would gather an array padded to
        the *consumer's* shape table, and a padding mismatch would hand
        NumPy's layout-sensitive reductions a differently shaped operand.
        """
        if plan is None:
            raise VectorizeError(
                f"fused alias read of unknown tensor {name!r}")
        if plan.is_ragged:
            try:
                shapes = np.asarray(self.kernel.aux_arrays[plan.shape_name])
            except KeyError:
                raise VectorizeError(
                    f"fused alias read of {name!r} has no consumer shape "
                    "table to check padding against")
            if shapes.ndim != 2 or shapes.shape[1] != len(alias.tables):
                raise VectorizeError(
                    f"fused alias read of {name!r}: consumer shape table "
                    f"rank does not match {len(alias.tables)} store axes")
            for col, avail in enumerate(alias.tables):
                if not np.array_equal(np.asarray(shapes[:, col]).ravel(),
                                      np.asarray(avail).ravel()):
                    raise VectorizeError(
                        f"fused consumer pads {name!r} axis {col} "
                        "differently from the producer's storage extents")
            return
        dense = tuple(plan.layout.dense_shape()[1:])
        if len(dense) != len(alias.tables):
            raise VectorizeError(
                f"fused alias read of {name!r}: consumer dense rank does "
                f"not match {len(alias.tables)} store axes")
        for col, avail in enumerate(alias.tables):
            if not bool(np.all(np.asarray(avail) == int(dense[col]))):
                raise VectorizeError(
                    f"fused consumer pads {name!r} axis {col} differently "
                    "from the producer's storage extents")

    @staticmethod
    def _alias_fit(needed: np.ndarray, available: np.ndarray,
                   name: str, col: int) -> None:
        if needed.size != available.size and 1 in (needed.size, available.size):
            exceeded = bool(np.any(needed > available))
        else:
            n = min(needed.size, available.size) or 1
            exceeded = bool(np.any(needed[:n] > available[:n]))
        if exceeded:
            raise VectorizeError(
                f"fused consumer bound exceeds the producer storage extent "
                f"of {name!r} axis {col}"
            )

    def store_bound_tables(self) -> Tuple[np.ndarray, ...]:
        """Per-store-axis *storage-padded* extents -- the shape of this
        kernel's alias temporary, and what a consuming member checks its
        reads against (loop mode only).

        These are the padded extents a gathered buffer view would have,
        not the tighter loop bounds: the temporary mirrors the buffer
        round-trip bit-for-bit (zeros in the slack, padded contiguous
        layout), because NumPy reductions are layout-sensitive at the
        ULP level.
        """
        if self.mode != "loop":
            raise VectorizeError(
                "fused-mode members cannot feed an alias temporary")
        out_plan = self.kernel.output_plan
        store_rank = len(self.kernel.output_dims) - 1
        if out_plan.is_ragged:
            try:
                shapes = np.asarray(self.kernel.aux_arrays[out_plan.shape_name])
            except KeyError:
                raise VectorizeError(
                    f"output {out_plan.spec.name!r} has no shape table for "
                    "its alias temporary")
            if shapes.ndim != 2 or shapes.shape[1] != store_rank:
                raise VectorizeError(
                    f"output {out_plan.spec.name!r} shape table rank "
                    f"{shapes.shape} does not match {store_rank} store axes")
            return tuple(shapes[:, col] for col in range(store_rank))
        dense = tuple(out_plan.layout.dense_shape()[1:])
        if len(dense) != store_rank:
            raise VectorizeError(
                f"output {out_plan.spec.name!r} dense shape {dense} does "
                f"not match {store_rank} store axes")
        return tuple(np.asarray([int(n)], dtype=np.int64) for n in dense)

    # -- fused-mode gathers ------------------------------------------------------

    def _fused_lengths(self) -> np.ndarray:
        """Per-governing-index fused (loop-padded) lengths, from the maps."""
        if self._fused_lengths_cache is None:
            ffo = np.asarray(self.kernel.aux_arrays[f"{self.map_name}_ffo"])
            row = np.asarray(self.kernel.aux_arrays[f"{self.map_name}_row"])
            total = int(ffo.size)
            self._fused_lengths_cache = np.diff(
                np.concatenate([row, [total]])).astype(np.int64)
        return self._fused_lengths_cache

    def _access_info_fused(self, access: TensorAccess,
                           plan: TensorPlan) -> Tuple[str, Tuple[Dim, ...]]:
        indices = access.indices
        uses_stack = any(
            isinstance(i, LoopVar) and i.dim in (self.gov_dim,
                                                 self.inner_fused_dim)
            for i in indices)
        if not plan.is_ragged and not uses_stack:
            # Fused-index-free dense access: plain slicing, no gather.
            return self._access_info_loop(access, plan)
        if plan.is_ragged:
            first = indices[0]
            if not (isinstance(first, LoopVar) and first.dim is self.gov_dim):
                raise VectorizeError(
                    f"ragged access to {access.tensor.name!r} is not "
                    "governed by the fused outer dim"
                )
        return self._fused_gather_code(access, plan)

    def _check_fused_col_fits(self, plan: TensorPlan, col: int,
                              needed: np.ndarray) -> None:
        if plan.is_ragged:
            available = np.asarray(
                self.kernel.aux_arrays[plan.shape_name][:, col],
                dtype=np.int64)
        else:
            available = np.asarray([plan.layout.dense_shape()[col]],
                                   dtype=np.int64)
        self._compare_fit(needed, available, plan, col)

    def _fused_gather_code(self, access: TensorAccess,
                           plan: TensorPlan) -> Tuple[str, Tuple[Dim, ...]]:
        """Flat-gather code for one fused-mode access: the flat-buffer offset
        of every touched element is built as a broadcast sum of per-index
        terms, then gathered in one fancy-indexing operation."""
        safe = self._safe(access.tensor.name)
        indices = access.indices[1:] if plan.is_ragged else access.indices
        # Offset context: fused axis first, then loop-var dims in index order.
        octx: List[Dim] = [self._stack_dim]
        seen_special = 0
        for idx in indices:
            if not isinstance(idx, (Const, LoopVar)):
                raise VectorizeError(
                    f"unsupported index expression {idx!r} on "
                    f"{access.tensor.name!r}"
                )
            if isinstance(idx, LoopVar):
                if idx.dim in (self.gov_dim, self.inner_fused_dim):
                    seen_special += 1
                    if seen_special > 2 or (plan.is_ragged
                                            and idx.dim is self.gov_dim):
                        raise VectorizeError(
                            f"access to {access.tensor.name!r} re-indexes "
                            "the fused governing pair"
                        )
                elif idx.dim in octx:
                    raise VectorizeError(
                        f"access to {access.tensor.name!r} indexes "
                        f"{idx.dim.name} more than once"
                    )
                elif idx.dim in self._index_arrays:
                    octx.append(idx.dim)
                else:
                    raise VectorizeError(
                        f"access to {access.tensor.name!r} indexes "
                        f"{idx.dim.name}, which is not a vectorized loop"
                    )
        octx_t = tuple(octx)
        parts: List[str] = []
        if plan.is_ragged:
            parts.append(self._aligned_code(
                f"_aux_{self._safe(plan.row_name)}[_ffo]",
                (self._stack_dim,), octx_t))
        const_sum = 0
        for col, idx in enumerate(indices):
            if plan.is_ragged:
                stride_code = (f"_aux_{self._safe(plan.stride_name)}"
                               f"[_ffo, {col}]")
                stride_varies = True
            else:
                stride_code = str(plan.dense_strides[col])
                stride_varies = False
            if isinstance(idx, Const):
                self._check_index_fits(plan, col, idx)
                c = int(idx.value)
                if not c:
                    continue
                if stride_varies:
                    parts.append(self._aligned_code(
                        f"({c} * {stride_code})", (self._stack_dim,), octx_t))
                else:
                    const_sum += c * plan.dense_strides[col]
                continue
            if idx.dim is self.inner_fused_dim:
                self._check_fused_col_fits(plan, col, self._fused_lengths())
                code = "_ffi" if stride_code == "1" \
                    else f"(_ffi * {stride_code})"
                parts.append(self._aligned_code(code, (self._stack_dim,),
                                                octx_t))
            elif idx.dim is self.gov_dim:
                m = int(self._fused_lengths().size)
                self._check_fused_col_fits(
                    plan, col, np.asarray([m], dtype=np.int64))
                code = "_ffo" if stride_code == "1" \
                    else f"(_ffo * {stride_code})"
                parts.append(self._aligned_code(code, (self._stack_dim,),
                                                octx_t))
            else:
                self._check_index_fits(plan, col, idx)
                var = self._index_arrays[idx.dim]
                if stride_varies:
                    stride_aligned = self._aligned_code(
                        stride_code, (self._stack_dim,), octx_t)
                    var_aligned = self._aligned_code(var, (idx.dim,), octx_t)
                    parts.append(f"({stride_aligned} * {var_aligned})")
                else:
                    code = var if stride_code == "1" \
                        else f"({var} * {stride_code})"
                    parts.append(self._aligned_code(code, (idx.dim,), octx_t))
        if const_sum:
            parts.append(str(const_sum))
        offset = " + ".join(parts) if parts else "0"
        return f"_buf_{safe}[{offset}]", octx_t

    # -- index-fit validation -----------------------------------------------------

    def _check_index_fits(self, plan: TensorPlan, col: int, idx: Expr) -> None:
        """Reject (-> scalar fallback) accesses whose loop bound can exceed
        the instance's storage extent -- slicing / gathering would silently
        truncate where the scalar backend's flat-offset arithmetic does not.
        Happens when a loop is padded without matching storage padding."""
        if isinstance(idx, Const):
            needed = np.asarray([int(idx.value) + 1], dtype=np.int64)
        elif isinstance(idx, LoopVar) and idx.dim is not self.gov_dim:
            if self.mode == "fused" and idx.dim is self.inner_fused_dim:
                needed = self._fused_lengths()
            else:
                needed = self._vb_of(idx.dim).values(self.kernel)
        else:
            return
        if plan.is_ragged:
            available = np.asarray(
                self.kernel.aux_arrays[plan.shape_name][:, col],
                dtype=np.int64)
        else:
            available = np.asarray([plan.layout.dense_shape()[col]],
                                   dtype=np.int64)
        self._compare_fit(needed, available, plan, col)

    @staticmethod
    def _compare_fit(needed: np.ndarray, available: np.ndarray,
                     plan: TensorPlan, col: int) -> None:
        if needed.size != available.size and 1 in (needed.size, available.size):
            exceeded = bool(np.any(needed > available))
        else:
            n = min(needed.size, available.size) or 1
            exceeded = bool(np.any(needed[:n] > available[:n]))
        if exceeded:
            raise VectorizeError(
                f"loop bound exceeds the storage extent of "
                f"{plan.spec.name!r} axis {col} (loop padding without "
                "matching storage padding)"
            )

    # -- alignment --------------------------------------------------------------

    def _aligned_code(self, raw: str, raw_dims: Tuple[Dim, ...],
                      ctx: Tuple[Dim, ...]) -> str:
        """Align an array whose axes are ``raw_dims`` to the ``ctx`` axis order
        (transposing and inserting broadcast axes as needed)."""
        if not raw_dims:
            return raw
        for d in raw_dims:
            if d not in ctx:
                raise VectorizeError(
                    f"dimension {d.name} is out of scope in this context"
                )
        order = [d for d in ctx if d in raw_dims]
        perm = [raw_dims.index(d) for d in order]
        code = raw
        if perm != sorted(perm):
            code = f"{code}.transpose({', '.join(map(str, perm))})"
        if len(order) == len(ctx):
            return code
        subs = ", ".join(":" if d in raw_dims else "None" for d in ctx)
        return f"{code}[{subs}]"

    def _shape_code(self, ctx: Tuple[Dim, ...]) -> str:
        parts = [self._bound_var[d] for d in ctx]
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    # -- store -------------------------------------------------------------------

    def _emit_store(self, em: _Emitter, value_code: str) -> None:
        if self.mode == "fused":
            self._emit_store_fused(em, value_code)
            return
        kernel = self.kernel
        out_plan = kernel.output_plan
        safe = self._safe(out_plan.spec.name)
        store_dims = kernel.output_dims[1:]
        ctx_out = self._ctx_out()
        for col, dim in enumerate(store_dims):
            # Ragged shape columns exclude the governing axis; a dense
            # output's shape includes it at position 0.
            axis = col if out_plan.is_ragged else col + 1
            self._check_index_fits(out_plan, axis, LoopVar(dim))
        temp = self._alias_out.var if self._alias_out is not None else None
        if not store_dims:
            if temp is not None:
                # Materialized contiguous float32, matching the buffer
                # assignment downstream consumers would otherwise read back.
                em.emit(f"{temp} = np.zeros((_nb,), dtype=np.float32)")
                em.emit(f"{temp}[:] = {value_code}")
                if self._alias_out.external:
                    em.emit(f"_nd_{safe}[_bs] = {temp}")
            else:
                em.emit(f"_nd_{safe}[_bs] = {value_code}")
            return
        val_var = self._local("_val")
        em.emit(f"{val_var} = np.broadcast_to({value_code}, "
                f"{self._shape_code(ctx_out)})")
        perm = [0] + [1 + self.inner_dims.index(d) for d in store_dims]
        val = val_var
        if perm != sorted(perm):
            val = f"{val_var}.transpose({', '.join(map(str, perm))})"
        if temp is not None:
            # The temporary replays the scatter/gather round-trip exactly:
            # zero-filled, padded to the storage extents, loop-bounded
            # region assigned in.  Tight-extent temps would feed NumPy's
            # layout-sensitive reductions differently (ULP divergence).
            if out_plan.is_ragged:
                em.emit(f"{temp} = np.zeros((_nb,) + tuple(int(_s) for _s "
                        f"in _aux_{self._safe(out_plan.shape_name)}[_b0]), "
                        f"dtype=np.float32)")
            else:
                pad = ", ".join(
                    str(int(s))
                    for s in out_plan.layout.dense_shape()[1:])
                em.emit(f"{temp} = np.zeros((_nb, {pad}), dtype=np.float32)")
            region = ", ".join(f":{self._bound_var[d]}" for d in store_dims)
            em.emit(f"{temp}[:, {region}] = {val}")
            if not self._alias_out.external:
                return
            val = f"{temp}[:, {region}]"
        bounds = ", ".join(self._bound_var[d] for d in store_dims)
        if out_plan.is_ragged:
            em.emit(f"_scatter_slices(_buf_{safe}, "
                    f"_aux_{self._safe(out_plan.row_name)}, "
                    f"_aux_{self._safe(out_plan.shape_name)}, _bs, "
                    f"({bounds},), {val})")
        else:
            subs = ", ".join(f":{self._bound_var[d]}" for d in store_dims)
            em.emit(f"_nd_{safe}[_bs, {subs}] = {val}")

    def _emit_store_fused(self, em: _Emitter, value_code: str) -> None:
        kernel = self.kernel
        out_plan = kernel.output_plan
        safe = self._safe(out_plan.spec.name)
        rest_dims = kernel.output_dims[2:]
        ctx_out = self._ctx_out()
        em.emit(f"_val = np.broadcast_to({value_code}, "
                f"{self._shape_code(ctx_out)})")
        perm = [0] + [1 + self.inner_dims.index(d) for d in rest_dims]
        val = "_val"
        if perm != sorted(perm):
            val = f"_val.transpose({', '.join(map(str, perm))})"
        if kernel.output_dims_fused:
            # Flat storage: axis 0 is the fused index itself (extent checked
            # against the loop's fused extent during analysis).
            for col, dim in enumerate(rest_dims):
                self._check_index_fits(out_plan, col + 1, LoopVar(dim))
            subs = ", ".join([":"] + [f":{self._bound_var[d]}"
                                      for d in rest_dims])
            em.emit(f"_nd_{safe}[{subs}] = {val}")
            return
        if out_plan.is_ragged:
            self._check_fused_col_fits(out_plan, 0, self._fused_lengths())
            octx = (self._stack_dim,) + tuple(rest_dims)
            parts = [self._aligned_code(
                f"_aux_{self._safe(out_plan.row_name)}[_ffo]",
                (self._stack_dim,), octx)]
            parts.append(self._aligned_code(
                f"(_ffi * _aux_{self._safe(out_plan.stride_name)}[_ffo, 0])",
                (self._stack_dim,), octx))
            for col, dim in enumerate(rest_dims):
                self._check_index_fits(out_plan, col + 1, LoopVar(dim))
                stride = self._aligned_code(
                    f"_aux_{self._safe(out_plan.stride_name)}"
                    f"[_ffo, {col + 1}]", (self._stack_dim,), octx)
                var = self._aligned_code(self._index_arrays[dim], (dim,), octx)
                parts.append(f"({stride} * {var})")
            em.emit(f"_buf_{safe}[{' + '.join(parts)}] = {val}")
            return
        # Dense, unfused storage: two adjacent advanced indices land the
        # fused axis at position 0, matching the value's axis order.
        m = int(self._fused_lengths().size)
        self._compare_fit(np.asarray([m], dtype=np.int64),
                          np.asarray([out_plan.layout.dense_shape()[0]],
                                     dtype=np.int64), out_plan, 0)
        self._check_fused_col_fits(out_plan, 1, self._fused_lengths())
        for col, dim in enumerate(rest_dims):
            self._check_index_fits(out_plan, col + 2, LoopVar(dim))
        subs = ", ".join(["_ffo", "_ffi"] + [f":{self._bound_var[d]}"
                                             for d in rest_dims])
        em.emit(f"_nd_{safe}[{subs}] = {val}")


class VectorBackend(CodegenBackend):
    """NumPy-vectorized backend with automatic scalar fallback.

    ``generate`` first attempts vectorized emission; a
    :class:`VectorizeError` (diagonal accesses, nested splits, loop padding
    without storage padding, exotic index expressions...) falls back to the
    scalar reference backend, whose result is marked ``backend="scalar"``
    and carries the reason in ``fallback_reason``.  ``vectorized_count`` /
    ``fallback_count`` / ``fallback_reasons`` expose the decisions to the
    executor, tests and benchmarks.
    """

    name = "vector"

    def __init__(self, fallback: Optional[CodegenBackend] = None):
        self.fallback = fallback or ScalarBackend()
        #: counts of vectorized vs fallen-back kernels, for introspection
        self.vectorized_count = 0
        self.fallback_count = 0
        #: VectorizeError reason string -> occurrence count
        self.fallback_reasons: Counter = Counter()

    def generate(self, kernel: LoweredKernel) -> GeneratedKernel:
        try:
            generated = VectorCodeGenerator(kernel).generate()
        except VectorizeError as err:
            self.fallback_count += 1
            self.fallback_reasons[str(err)] += 1
            generated = self.fallback.generate(kernel)
            generated.fallback_reason = str(err)
            return generated
        self.vectorized_count += 1
        return generated

    def reset_stats(self) -> None:
        """Zero the vectorized / fallback counters and reason map."""
        self.vectorized_count = 0
        self.fallback_count = 0
        self.fallback_reasons.clear()


def can_vectorize(kernel: LoweredKernel) -> bool:
    """Whether the vector backend can emit ``kernel`` without falling back."""
    try:
        VectorCodeGenerator(kernel).generate_source()
    except VectorizeError:
        return False
    return True


# ---------------------------------------------------------------------------
# Fused-region emission
# ---------------------------------------------------------------------------


@dataclass
class FusedMemberPlan:
    """One member of a fused region, as the executor hands it to
    :func:`generate_fused_kernel`.

    ``bindings`` maps the member's *input* tensor names to program value
    names; ``out_value`` is the program value its output feeds.  An
    ``internal`` output has no reader outside the region and lives in a
    loop-local temporary instead of a buffer.
    """

    kernel: LoweredKernel
    bindings: Dict[str, str]
    out_value: str
    internal: bool


def generate_fused_kernel(name: str,
                          members: Sequence[FusedMemberPlan],
                          ) -> GeneratedKernel:
    """Emit one vector kernel executing a whole fused region.

    Every member's body is namespaced (prefix ``m{i}``) and composed
    inside a *single* shared bucket loop, so the chain pays one Python
    dispatch and one signature-bucketing pass instead of one per member.
    Internal values flow producer -> consumer through loop-local
    temporaries (their gathers and scatters disappear along with their
    arena slabs); values with external readers are still scattered to
    their buffers and re-gathered by in-region consumers, preserving
    buffer semantics exactly.

    Legality (anything else raises :class:`VectorizeError` and the
    executor falls back to the bit-identical grouped dispatch): every
    member vectorizes in bucketed-loop mode over the *same* governing
    extent, and every alias read stays within its producer's store
    bounds (checked per governing index at compile time).
    """
    if not members:
        raise VectorizeError("fused region has no members")
    gens: List[VectorCodeGenerator] = []
    alias_reg: Dict[str, _AliasSource] = {}
    for i, m in enumerate(members):
        alias = {}
        for tensor, value in m.bindings.items():
            src = alias_reg.get(value)
            if src is not None:
                alias[tensor] = src
        out_tensor = m.kernel.output_plan.spec.name
        gen = VectorCodeGenerator(
            m.kernel,
            prefix=f"m{i}",
            value_of={**m.bindings, out_tensor: m.out_value},
            aux_ns=f"m{i}/",
            alias=alias,
            alias_out=_AliasOut(var=f"_t{i}") if m.internal else None,
        )
        if gen.mode != "loop":
            raise VectorizeError(
                f"member {m.kernel.name!r} uses a fused governing loop")
        gens.append(gen)
        if m.internal:
            alias_reg[m.out_value] = _AliasSource(
                var=f"_t{i}", tables=gen.store_bound_tables())
    gov_count = gens[0].gov_count
    for gen in gens[1:]:
        if gen.gov_count != gov_count:
            raise VectorizeError(
                "fused members disagree on the governing extent")
    # One shared bucket partition: the union of every member's signature
    # tables, so each member's per-bucket bound reads stay constant.
    arrays: List[np.ndarray] = []
    for gen in gens:
        arrays.extend(gen.kernel.aux_arrays[n]
                      for n in gen._signature_tables())
    buckets = bucket_by_signature(gov_count, arrays)
    for gen in gens:
        gen._buckets_cache = buckets

    em = _Emitter()
    fn_name = f"cora_vfused_{VectorCodeGenerator._sanitize(name)}"
    em.emit(f"def {fn_name}(buffers, aux):")
    em.push()
    em.emit(f'"""Fused vectorized CoRa kernel for region {name!r} '
            f'({len(members)} members)."""')
    accessed = [gen._accessed_tensors() for gen in gens]
    for gen, acc in zip(gens, accessed):
        gen.emit_prolog(em, acc)
    # One zero-fill per external output replaces the per-step prezero of
    # the unfused dispatch loop (internal values never need one: alias
    # reads are bound-checked against the producer's store region).
    for m, gen in zip(members, gens):
        if not m.internal:
            em.emit(f"_buf_{gen._safe(m.kernel.output_plan.spec.name)}"
                    ".fill(0.0)")
    em.emit(f"# {len(buckets)} shared instance bucket(s) over "
            f"{gov_count} governing indices")
    em.emit("for _bs in _BUCKETS:")
    em.push()
    em.emit("_nb = _bs.size")
    em.emit("_b0 = int(_bs[0])")
    for gen, acc in zip(gens, accessed):
        em.emit(f"# member {gen.kernel.name!r}")
        gen.emit_bucket_body(em, acc)
    em.pop()
    em.pop()
    source = em.source()
    namespace: Dict[str, object] = {
        "np": np,
        "_gather_slices": _gather_slices,
        "_scatter_slices": _scatter_slices,
        "_BUCKETS": buckets,
    }
    exec(compile(source, f"<cora-vfused:{name}>", "exec"), namespace)
    return GeneratedKernel(name=name, source=source,
                           fn=namespace[fn_name], backend="vector")
