"""The Session: ahead-of-time compilation and execution of ragged programs.

A :class:`Session` is the program-level runtime boundary of the paper's
insight I1: the raggedness signature of a mini-batch is known before
anything executes and is shared across the whole model, so *all* auxiliary
work -- kernel lowering and code generation, prelude arrays, buffer
planning and allocation -- is hoisted out of the per-batch path:

* :meth:`Session.compile` lowers every kernel node of a
  :class:`~repro.core.program.Program` through the executor's codegen
  backend (LRU-cached per program), plans the intermediate buffers with
  the :mod:`~repro.core.planner` liveness/arena pass, and allocates the
  arena slabs once;
* :meth:`Session.run` then executes repeated mini-batches with a single
  flat dispatch loop over prebuilt buffer tables -- no per-op output
  allocation, no per-op schedule lookups, no per-op report objects.

The session also owns the state that previously lived in module-level
globals: the per-mini-batch prelude memo, the shared
:class:`~repro.core.prelude.PreludeCache`, and a generic builder memo used
by the model layer.  :meth:`Session.reset` clears all of it
deterministically, which tests and long-running processes rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.aotcache import AOTCache
from repro.core.cache import LRUDict
from repro.core.engine import (
    ExecutionEngine,
    HOST_STEP,
    KERNEL_STEP,
    SerialEngine,
    get_engine,
)
from repro.core.executor import (
    CompiledFusedKernel,
    CompiledKernel,
    Executor,
    shared_executor,
)
from repro.core.fusion import FusedHostNode, FusedKernelNode
from repro.core.planner import ProgramPlan, ShardSpec, plan_program, plan_shards
from repro.core.prelude import PreludeCache
from repro.core.program import (
    HostNode,
    KernelNode,
    Program,
    ProgramError,
    ROLE_CONSTANT,
    ROLE_INPUT,
    ROLE_INTERMEDIATE,
    merge_programs,
)
from repro.core.ragged_tensor import RaggedTensor
from repro.core.scheduledb import ScheduleDB
from repro.core.tunespace import activate_policy, deactivate_policy


#: Backwards-compatible aliases; the step kinds live in the engine module.
_KERNEL_STEP = KERNEL_STEP
_HOST_STEP = HOST_STEP

#: The fallback engine used when ``CompiledProgram.run`` is called without
#: one (the original flat-dispatch-loop behaviour, bit for bit).
_FALLBACK_ENGINE = SerialEngine()


class CompiledProgram:
    """One program compiled for one raggedness signature.

    Holds the compiled kernels, the arena plan (double-buffered by
    default; in-place slab sharing with ``inplace=True``), the allocated
    slabs and a flat list of dispatch steps with every buffer
    pre-resolved.  *How* the steps run is the
    :class:`~repro.core.engine.ExecutionEngine`'s job -- ``run`` takes an
    engine and hands it the steps plus the plan's dependence edges.
    """

    def __init__(self, program: Program, executor: Executor,
                 inplace: bool = False,
                 fuse: bool = False,
                 slab_buffers: Optional[Sequence[np.ndarray]] = None,
                 input_buffers: Optional[Dict[str, np.ndarray]] = None):
        program.validate()
        self.program = program
        self.executor = executor
        self.fuse = bool(fuse)

        # 1. Liveness + arena planning.  With ``fuse`` the planner first
        #    collapses fusable regions (:mod:`repro.core.fusion`) and the
        #    plan -- order, slab assignment, dependence edges -- is the
        #    *fused* program's; internalised intermediates have no slab at
        #    all.  Everything below (compilation, buffers, steps) follows
        #    the planned graph, while ``self.program`` stays the original
        #    (callers address it; engines ship its recipe).
        self.plan: ProgramPlan = plan_program(program, inplace=inplace,
                                              fuse=fuse)
        work = self.plan.fused_program \
            if self.plan.fused_program is not None else program
        self._work = work

        # 2. Lower + codegen every kernel node (shared executor cache);
        #    fused regions compile through ``executor.compile_fused``
        #    (one emitted vector kernel, or a bit-identical grouped
        #    dispatch when a member resists vector emission).
        self.kernels: Dict[int, CompiledKernel] = {}
        self.fused_kernels: Dict[int, CompiledFusedKernel] = {}
        #: value name -> compiled output layout, for ragged wrapping.
        self._kernel_layouts: Dict[str, Any] = {}
        for idx, node in enumerate(work.nodes):
            if isinstance(node, KernelNode):
                compiled = executor.compile(node.schedule,
                                            input_layouts=node.input_layouts)
                expected = set(compiled.lowered.input_plans)
                bound = set(node.bindings)
                if expected != bound:
                    raise ProgramError(
                        f"kernel node {node.name!r} binds {sorted(bound)} "
                        f"but the schedule's inputs are {sorted(expected)}")
                out_name = node.outputs[0]
                declared = work.values[out_name].layout.total_size()
                actual = compiled.output_layout.total_size()
                if declared != actual:
                    raise ProgramError(
                        f"kernel node {node.name!r}: declared output layout "
                        f"has {declared} elements but the compiled plan "
                        f"requires {actual}")
                self.kernels[idx] = compiled
                self._kernel_layouts[out_name] = compiled.output_layout
            elif isinstance(node, FusedKernelNode):
                fused_compiled = executor.compile_fused(node)
                self.fused_kernels[idx] = fused_compiled
                for vname, layout in fused_compiled.output_layouts().items():
                    if vname not in work.values:
                        continue  # internalised: no arena value to wrap
                    declared = work.values[vname].layout.total_size()
                    if declared != layout.total_size():
                        raise ProgramError(
                            f"fused node {node.name!r}: output {vname!r} "
                            f"declares {declared} elements but the compiled "
                            f"plan requires {layout.total_size()}")
                    self._kernel_layouts[vname] = layout

        # 3. Allocate the arena slabs and the persistent input staging
        #    buffers once; every later run reuses them.  ``slab_buffers``
        #    / ``input_buffers`` optionally supply caller-owned flat
        #    arrays instead (the process-pool engine backs them with
        #    shared memory so workers dispatch into the parent's arena).
        if slab_buffers is None:
            self._slabs: List[np.ndarray] = [
                np.zeros(n, dtype=np.float32)
                for n in self.plan.slab_elements
            ]
        else:
            slab_buffers = list(slab_buffers)
            if len(slab_buffers) < len(self.plan.slab_elements):
                raise ProgramError(
                    f"plan needs {len(self.plan.slab_elements)} slabs but "
                    f"only {len(slab_buffers)} buffers were provided")
            self._slabs = []
            for i, n in enumerate(self.plan.slab_elements):
                buf = slab_buffers[i]
                if buf.dtype != np.float32 or buf.ndim != 1 or buf.size < n:
                    raise ProgramError(
                        f"slab buffer {i} must be a flat float32 array of "
                        f">= {n} elements, got {buf.dtype} {buf.shape}")
                self._slabs.append(buf[:n])
        flat: Dict[str, np.ndarray] = {}
        for name, spec in work.values.items():
            if spec.role == ROLE_CONSTANT:
                flat[name] = np.ascontiguousarray(
                    spec.array, dtype=spec.dtype).reshape(-1)
            elif spec.role == ROLE_INPUT:
                stage = (input_buffers.get(name)
                         if input_buffers is not None else None)
                if stage is None:
                    stage = np.zeros(spec.num_elements, dtype=spec.dtype)
                else:
                    if (stage.size != spec.num_elements
                            or stage.dtype != np.dtype(spec.dtype)):
                        raise ProgramError(
                            f"input buffer {name!r} must be "
                            f"{spec.num_elements} x {spec.dtype}, got "
                            f"{stage.size} x {stage.dtype}")
                    stage = stage.reshape(-1)
                flat[name] = stage
            else:
                if np.dtype(spec.dtype) != np.float32:
                    raise ProgramError(
                        f"arena values must be float32, got {spec.dtype} "
                        f"for {name!r}")
                slab = self._slabs[self.plan.slab_of[name]]
                flat[name] = slab[:self.plan.value_elements[name]]
        self._flat = flat

        # Materialised wrappers handed to host functions / returned as
        # outputs: RaggedTensor for ragged values, shaped views for dense.
        wrapped: Dict[str, Any] = {}
        for name, spec in work.values.items():
            if spec.is_ragged:
                layout = self._kernel_layouts.get(name, spec.layout)
                wrapped[name] = RaggedTensor(layout, flat[name],
                                             dtype=np.float32)
            else:
                wrapped[name] = flat[name].reshape(spec.shape)
        self._wrapped = wrapped

        # 4. Pre-resolve every dispatch step.
        self._steps: List[Tuple] = []
        for step_idx in self.plan.order:
            node = work.nodes[step_idx]
            if isinstance(node, KernelNode):
                compiled = self.kernels[step_idx]
                buffers = {tname: flat[vname]
                           for tname, vname in node.bindings.items()}
                out_flat = flat[node.outputs[0]]
                buffers[compiled.lowered.output_plan.spec.name] = out_flat
                self._steps.append((_KERNEL_STEP, compiled.generated, buffers,
                                    compiled.lowered.aux_arrays, out_flat))
            elif isinstance(node, FusedKernelNode):
                # The emitted fused kernel addresses buffers by canonical
                # value key (``i0``/``o0``/...), never by program value
                # name -- so one compiled region is shared by every
                # structurally-equal region (each layer's SDPA chain).
                fused_compiled = self.fused_kernels[step_idx]
                keys = Executor._fused_value_keys(node)
                buffers = {keys[v]: flat[v]
                           for v in (*node.inputs, *node.outputs)}
                out_flat = flat[node.outputs[0]]
                self._steps.append((_KERNEL_STEP, fused_compiled.generated,
                                    buffers, fused_compiled.aux_arrays,
                                    out_flat))
            elif isinstance(node, FusedHostNode):
                self._steps.append(
                    (_HOST_STEP, self._fused_host_closure(node, flat, wrapped),
                     (), None, None))
            else:
                args = tuple(wrapped[o] for o in node.outputs)
                args += tuple(wrapped[i] for i in node.inputs)
                prezero = (None if node.fills_output
                           else tuple(flat[o] for o in node.outputs))
                self._steps.append((_HOST_STEP, node.fn, args, prezero, None))

        self.kernel_dispatches = sum(1 for s in self._steps
                                     if s[0] == _KERNEL_STEP)
        self.host_dispatches = len(self._steps) - self.kernel_dispatches
        self._input_specs = [(v.name, flat[v.name], np.dtype(v.dtype))
                             for v in work.input_values()]
        self.run_count = 0
        self.total_run_s = 0.0
        self.last_run_s = 0.0

    @staticmethod
    def _fused_host_closure(node: FusedHostNode,
                            flat: Dict[str, np.ndarray],
                            wrapped: Dict[str, Any]) -> Callable[[], None]:
        """One step running a fused host region's members in order.

        Internalised intermediates live in step-private buffers (their
        arena slabs no longer exist); per-member ``fills_output``
        semantics are preserved by pre-zeroing exactly the outputs the
        unfused dispatch would have pre-zeroed.
        """
        private_flat: Dict[str, np.ndarray] = {}
        private_wrapped: Dict[str, Any] = {}
        for spec in node.internal_specs:
            buf = np.zeros(spec.num_elements, dtype=np.float32)
            private_flat[spec.name] = buf
            if spec.is_ragged:
                private_wrapped[spec.name] = RaggedTensor(
                    spec.layout, buf, dtype=np.float32)
            else:
                private_wrapped[spec.name] = buf.reshape(spec.shape)

        def _wrap(name: str) -> Any:
            return (private_wrapped[name] if name in private_wrapped
                    else wrapped[name])

        parts: List[Tuple] = []
        for m in node.members:
            args = tuple(_wrap(o) for o in m.outputs)
            args += tuple(_wrap(i) for i in m.inputs)
            prezero = (None if m.fills_output
                       else tuple(private_flat[o] if o in private_flat
                                  else flat[o] for o in m.outputs))
            parts.append((m.fn, args, prezero))
        frozen = tuple(parts)

        def _fused_host() -> None:
            for fn, args, prezero in frozen:
                if prezero is not None:
                    for buf in prezero:
                        buf.fill(0.0)
                fn(*args)

        return _fused_host

    # -- statistics -------------------------------------------------------------

    @property
    def flops(self) -> int:
        """Analytically counted FLOPs of all kernel nodes per execution."""
        return int(sum(k.flops for k in self.kernels.values())
                   + sum(k.flops for k in self.fused_kernels.values()))

    @property
    def arena_bytes(self) -> int:
        return self.plan.arena_bytes

    @property
    def naive_bytes(self) -> int:
        return self.plan.naive_bytes

    def fusion_summary(self) -> Optional[Dict[str, object]]:
        """What fusion did to this program (``None`` when unfused)."""
        fusion = getattr(self.plan, "fusion", None)
        return fusion.summary() if fusion is not None else None

    def stats(self) -> Dict[str, object]:
        node_kinds: Dict[str, int] = {}
        for node in self._work.nodes:
            node_kinds[node.kind] = node_kinds.get(node.kind, 0) + 1
        return {
            "program": self.program.name,
            "nodes": len(self._work.nodes),
            "node_kinds": node_kinds,
            "kernels": len(self.kernels),
            "fused_kernels": len(self.fused_kernels),
            "kernel_dispatches": self.kernel_dispatches,
            "host_dispatches": self.host_dispatches,
            "runs": self.run_count,
            "total_run_s": self.total_run_s,
            "flops_per_run": self.flops,
            **self.plan.summary(),
        }

    # -- execution --------------------------------------------------------------

    def run(self, inputs: Dict[str, Union[np.ndarray, RaggedTensor]],
            copy_outputs: bool = True,
            engine: Optional[ExecutionEngine] = None,
            fault_injector=None) -> Dict[str, Any]:
        """Execute the program once over bound inputs.

        Input arrays are copied into the session's persistent staging
        buffers (so the precompiled dispatch tables stay valid); kernel
        outputs are zero-filled before dispatch, reproducing the fresh
        ``RaggedTensor.zeros`` semantics of op-by-op execution bit for
        bit.  Outputs are returned as copies unless ``copy_outputs`` is
        false (views into the arena, only valid until the next run).

        ``engine`` selects the execution strategy over the pre-resolved
        steps (defaults to a process-wide :class:`SerialEngine` -- the
        original flat dispatch loop); any engine respecting the plan's
        dependence edges produces bit-identical outputs.
        """
        t0 = time.perf_counter()
        for name, stage, dtype in self._input_specs:
            try:
                value = inputs[name]
            except KeyError:
                raise ProgramError(f"missing program input {name!r}") from None
            src = value.data if isinstance(value, RaggedTensor) else \
                np.asarray(value, dtype=dtype).reshape(-1)
            if src.size != stage.size:
                raise ProgramError(
                    f"input {name!r} has {src.size} elements but the program "
                    f"expects {stage.size}")
            np.copyto(stage, src)

        (engine or _FALLBACK_ENGINE).execute(self._steps, self.plan,
                                             context=self)

        result: Dict[str, Any] = {}
        for name in self.program.outputs:
            value = self._wrapped[name]
            result[name] = value.copy() if copy_outputs else value
        if fault_injector is not None:
            # Named injection point "run": fired on the packed outputs so
            # "corrupt" faults truncate the result rows (a realistic
            # short-transfer failure) while "raise" emulates a kernel
            # failure surfacing out of dispatch.
            result = fault_injector.fire("run", result)
        self.last_run_s = time.perf_counter() - t0
        self.total_run_s += self.last_run_s
        self.run_count += 1
        return result


@dataclass
class ShardedProgram:
    """A ragged batch cut into shards, with one program per shard.

    Produced by :func:`shard_program`.  ``programs[i]`` is built for
    ``shards[i].lengths``; with ``fused`` set, all shard programs are
    additionally merged into one wide program (disjoint subgraphs sharing
    weights) so a width-aware engine can run the shards concurrently
    inside a single dispatch.  Execute through
    :meth:`Session.run_sharded`, which slices the batch's inputs per
    shard and reassembles outputs in order.
    """

    shards: List[ShardSpec]
    programs: List[Program]
    fused: Optional[Program] = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_tokens(self) -> int:
        return self.shards[-1].token_stop

    @property
    def num_sequences(self) -> int:
        return self.shards[-1].seq_stop


def shard_program(build: Callable[[Tuple[int, ...]], Program],
                  lengths: Sequence[int], n_shards: int, *,
                  fused: bool = False, share: str = "constants",
                  stagger: Optional[int] = None,
                  build_fused: Optional[
                      Callable[[List[Tuple[int, ...]]], Program]] = None,
                  ) -> ShardedProgram:
    """Shard a batch-parallel program along its governing (batch) dim.

    ``build(lengths_tuple)`` must return the program for one raggedness
    signature (e.g. ``lambda ls: encoder_stack_program(ls, w, cfg)``); it
    is called once per shard with that shard's contiguous slice of
    ``lengths``.  Because shards never split a sequence and the model's
    computation is independent per sequence, each shard program computes
    exactly what a per-request run computes -- per-shard execution (and
    fused execution, which runs the very same node functions on the very
    same per-shard arrays) is bit-identical to the unsharded baseline at
    sequence granularity.

    With ``fused=True`` the shard programs are merged via
    :func:`~repro.core.program.merge_programs` (weights shared across
    shards by array identity) so ``ready_steps`` carries one entry per
    shard and a pipelined / process-pool engine can overlap them.  Note
    the merged program only carries a worker-shippable rebuild recipe
    when the shards share *no* constants (rebuilding separately pickled
    parts would break cross-shard array identity and diverge from the
    parent's plan); to run fused shards on a
    :class:`~repro.core.engine.ProcessPoolEngine`, pass ``build_fused``
    -- a model-provided wide builder called with all shard length
    vectors at once (e.g.
    ``lambda groups: build_encoder_wide_program(groups, w, cfg)``) whose
    registered rebuild recipe re-shares the weights on the worker side.
    """
    shards = plan_shards(lengths, n_shards)
    programs = [build(s.lengths) for s in shards]
    merged = None
    if build_fused is not None:
        merged = build_fused([s.lengths for s in shards])
    elif fused:
        if len(programs) == 1:
            merged = programs[0]
        else:
            merged = merge_programs(programs, share=share, stagger=stagger)
    return ShardedProgram(shards=shards, programs=programs, fused=merged)


class Session:
    """Compiles ragged programs ahead of time and executes mini-batches.

    Parameters
    ----------
    backend:
        Codegen backend for kernel nodes (``"vector"`` / ``"scalar"``);
        ignored when an explicit ``executor`` is given.
    executor:
        Optional :class:`~repro.core.executor.Executor` to compile through;
        defaults to the process-wide shared executor of ``backend`` so
        kernel caches are shared with op-by-op execution.
    program_capacity:
        LRU bound on compiled programs kept alive by this session.
    engine:
        Execution strategy over compiled-program steps: ``"serial"``
        (default -- the flat dispatch loop), ``"pipelined"`` (dependence-
        driven worker-pool dispatch overlapping host and kernel nodes),
        or an :class:`~repro.core.engine.ExecutionEngine` instance.
    inplace:
        Plan element-wise nodes' outputs into their dying input's arena
        slab instead of double-buffering (bit-identical by construction;
        shrinks the arena).  Off by default.
    fault_injector:
        Optional :class:`~repro.serving.faults.FaultInjector` threaded
        through the session's injection points (``"compile"`` on a
        program-cache miss, ``"run"`` on a compiled program's outputs)
        and onto the session's engine (``"pipelined_worker"``).  ``None``
        (default) leaves every path untouched.
    tune:
        Schedule-autotuning mode.  ``None`` (default) runs the
        hand-picked schedules untouched.  ``"load"`` activates a
        :class:`~repro.core.tunespace.SchedulePolicy` over
        ``schedule_db`` for the session's lifetime: op builders
        (``qkt_node`` / ``attnv_node``) consult the DB per raggedness
        bucket and apply the stored tuned points, and :meth:`compile`
        applies tuned chain-level knobs (planner fusion on/off) per
        signature -- zero search, zero extra lowerings when the DB was
        populated against the same AOT disk cache.  ``"offline"`` is
        the same activation but signals intent: bind an
        :class:`~repro.core.autotune.AutoTuner` to this session and
        populate the DB first.
    schedule_db:
        The persistent tuned-schedule store backing ``tune``: a
        :class:`~repro.core.scheduledb.ScheduleDB`, a path, or ``True``
        for the default cache directory.  Defaults to the default
        directory when ``tune`` is set.
    """

    def __init__(self, backend: str = "vector",
                 executor: Optional[Executor] = None,
                 program_capacity: int = 64,
                 prelude_capacity: int = 128,
                 signature_capacity: int = 1024,
                 engine: Union[str, ExecutionEngine, None] = "serial",
                 inplace: bool = False,
                 fuse: bool = False,
                 disk_cache: Union[AOTCache, str, bool, None] = None,
                 fault_injector=None,
                 tune: Optional[str] = None,
                 schedule_db: Union[ScheduleDB, str, bool, None] = None):
        if tune not in (None, "offline", "load"):
            raise ValueError(
                f"tune must be None, 'offline' or 'load', got {tune!r}")
        #: whether the executor is session-private (passed explicitly) or
        #: the process-wide shared one -- ``reset`` only clears the kernel
        #: cache of a private executor.
        self._private_executor = executor is not None
        #: persistent cross-process AOT kernel cache.  ``True`` uses the
        #: default directory (``$REPRO_CACHE_DIR`` / ``~/.cache/repro``),
        #: a path a specific one.  When requested without an explicit
        #: executor, the session builds a *private* executor around it --
        #: the process-wide shared executor is never mutated.
        if disk_cache is None or disk_cache is False:
            cache: Optional[AOTCache] = None
        elif isinstance(disk_cache, AOTCache):
            cache = disk_cache
        elif disk_cache is True:
            cache = AOTCache()
        else:
            cache = AOTCache(disk_cache)
        if executor is None and cache is not None:
            executor = Executor(backend=backend, disk_cache=cache)
            self._private_executor = True
        self.executor = executor if executor is not None \
            else shared_executor(backend)
        if cache is not None and self.executor.disk_cache is None:
            # Explicit executor without a disk tier: attach the requested
            # cache so Session(disk_cache=...) always takes effect.
            self.executor.disk_cache = cache
        self.backend = self.executor.backend.name
        #: persistent tuned-schedule store + the active lookup policy.
        #: The policy is process-global (op builders have no session
        #: handle), so sessions activate it for their lifetime and
        #: :meth:`close` deactivates it -- last activation wins when
        #: several tuning sessions overlap.
        self.tune = tune
        if schedule_db is None or schedule_db is False:
            sdb: Optional[ScheduleDB] = ScheduleDB() if tune else None
        elif isinstance(schedule_db, ScheduleDB):
            sdb = schedule_db
        elif schedule_db is True:
            sdb = ScheduleDB()
        else:
            sdb = ScheduleDB(schedule_db)
        self.schedule_db = sdb
        self._policy = (activate_policy(sdb, self.backend)
                        if tune is not None else None)
        #: compiles whose planner-fusion flag came from a tuned
        #: chain-level entry instead of the session default.
        self.tuned_fuse_overrides = 0
        #: the session's execution engine (shared by every compiled
        #: program run through this session).  An engine passed as an
        #: *instance* may be shared across sessions, so only engines the
        #: session constructed itself (from a name / ``None``) are shut
        #: down by :meth:`close`.
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        self.engine: ExecutionEngine = get_engine(engine)
        #: fault injection for this session's compile/run paths; also
        #: wired onto the engine so pipelined workers fire their point.
        self.fault_injector = fault_injector
        if fault_injector is not None:
            self.engine.fault_injector = fault_injector
        #: whether programs are planned with in-place slab sharing.
        self.inplace = bool(inplace)
        #: whether programs are planned with kernel/host fusion.
        self.fuse = bool(fuse)
        #: compiled programs, keyed by program uid (the program object is
        #: pinned alongside so the uid stays unique for the entry's life).
        self._programs: LRUDict = LRUDict(program_capacity)
        #: generic builder memo used by the model layer (encoder programs).
        self._memo: LRUDict = LRUDict(256)
        #: prelude state previously held in module-level globals.
        self.prelude_cache = PreludeCache(capacity=prelude_capacity)
        self.prelude_memo: LRUDict = LRUDict(prelude_capacity)
        self.prelude_memo_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        self.program_compiles = 0
        self.program_cache_hits = 0
        #: compiles that actually lowered at least one kernel vs compiles
        #: served entirely from the persistent AOT disk cache.
        self.cold_compiles = 0
        self.disk_hit_compiles = 0
        self.run_count = 0
        #: per-raggedness-signature compiled-program hit/miss counters,
        #: recorded when callers tag ``compile`` / ``run`` with a
        #: ``signature`` (the serving scheduler tags every batch with its
        #: bucketed lengths tuple and consumes these to report reuse).
        #: Bounded: beyond ``signature_capacity`` distinct signatures the
        #: oldest entries are evicted, so long-running servers with
        #: diverse exact signatures do not grow memory without bound.
        #: The aggregate hit/miss totals reported by :meth:`stats` are
        #: kept as separate running counters, so eviction never makes
        #: them undercount or go non-monotone.
        self.signature_stats: Dict[Any, Dict[str, int]] = {}
        self.signature_capacity = max(1, int(signature_capacity))
        self._signature_totals: Dict[str, int] = {"hits": 0, "misses": 0}

    # -- compilation ------------------------------------------------------------

    def _note_signature(self, signature: Any, hit: bool) -> None:
        self._signature_totals["hits" if hit else "misses"] += 1
        entry = self.signature_stats.get(signature)
        if entry is None:
            entry = self.signature_stats[signature] = {"hits": 0, "misses": 0}
            while len(self.signature_stats) > self.signature_capacity:
                self.signature_stats.pop(next(iter(self.signature_stats)))
        entry["hits" if hit else "misses"] += 1

    def _chain_point(self, signature: Any):
        """The tuned chain-level point for a lengths-tuple signature.

        Best-effort: signatures are caller-defined hashables, and only
        int-sequence signatures (the lengths tuples the serving and
        benchmark paths tag runs with) map to a raggedness bucket.
        """
        if self._policy is None:
            return None
        try:
            lengths = tuple(int(s) for s in signature)
        except (TypeError, ValueError):
            return None
        return self._policy.point_for("encoder_chain", lengths)

    def compile(self, program: Program,
                signature: Optional[Any] = None) -> CompiledProgram:
        """Compile a program (cached per program / raggedness signature).

        ``signature`` optionally tags the lookup with a caller-level
        raggedness signature (any hashable); per-signature hit/miss
        counts accumulate in :attr:`signature_stats`.  A program-cache
        miss whose every kernel was served from the persistent AOT disk
        cache (zero lowers) still counts as a signature *hit* -- the
        expensive work was reused, just from a previous process.
        """
        entry = self._programs.get(program.uid)
        if entry is not None:
            self.program_cache_hits += 1
            if signature is not None:
                self._note_signature(signature, hit=True)
            return entry[0]
        if self.fault_injector is not None:
            # Named injection point "compile": fired on a cache miss
            # before any counter moves or lowering starts, so a failed
            # compile leaves the caches coherent and a later attempt at
            # the same signature compiles cleanly.
            self.fault_injector.fire("compile", signature=signature)
        self.program_compiles += 1
        fuse = self.fuse
        if self._policy is not None and signature is not None:
            point = self._chain_point(signature)
            if point is not None and "fuse" in point:
                tuned_fuse = bool(point["fuse"])
                if tuned_fuse != fuse:
                    self.tuned_fuse_overrides += 1
                fuse = tuned_fuse
        lowers_before = self.executor.lower_count
        disk_before = self.executor.disk_hits
        compiled = CompiledProgram(program, self.executor,
                                   inplace=self.inplace, fuse=fuse)
        if self.schedule_db is not None:
            # Engines that ship programs to worker processes forward this
            # so workers activate the same tuned-schedule policy before
            # rebuilding (ProcessPoolEngine._install).
            compiled.schedule_db_root = str(self.schedule_db.root)
        lowered = self.executor.lower_count - lowers_before
        from_disk = self.executor.disk_hits - disk_before
        aot_warm = lowered == 0 and from_disk > 0
        if lowered > 0:
            self.cold_compiles += 1
        elif aot_warm:
            self.disk_hit_compiles += 1
        if signature is not None:
            self._note_signature(signature, hit=aot_warm)
        self._programs.put(program.uid, (compiled, program))
        return compiled

    def compiled_program(self, program: Program) -> Optional[CompiledProgram]:
        """The cached :class:`CompiledProgram` for ``program``, if any.

        Pure lookup: no counters move and nothing compiles.
        """
        entry = self._programs.get(program.uid)
        return entry[0] if entry is not None else None

    def compiled_by_uid(self, uid: int) -> Optional["CompiledProgram"]:
        """The cached :class:`CompiledProgram` for a program uid, if any.

        Pure lookup, like :meth:`compiled_program`, but keyed by the uid
        a caller recorded earlier -- so stats paths can inspect compiled
        programs without holding (or rebuilding) the program objects.
        """
        entry = self._programs.get(uid)
        return entry[0] if entry is not None else None

    # -- execution --------------------------------------------------------------

    def run(self, program: Program,
            inputs: Dict[str, Union[np.ndarray, RaggedTensor]],
            copy_outputs: bool = True,
            signature: Optional[Any] = None,
            engine: Optional[ExecutionEngine] = None) -> Dict[str, Any]:
        """Compile (cached) and execute a program over bound inputs
        through the session's execution engine.

        ``engine`` overrides the session's engine for this run only --
        the serving scheduler uses this to retry a batch on a
        :class:`SerialEngine` after a pipelined worker failure.
        """
        compiled = self.compile(program, signature=signature)
        result = compiled.run(inputs, copy_outputs=copy_outputs,
                              engine=engine or self.engine,
                              fault_injector=self.fault_injector)
        self.run_count += 1
        return result

    def run_stack(self, programs: Sequence[Program],
                  inputs: Dict[str, Union[np.ndarray, RaggedTensor]],
                  copy_outputs: bool = True) -> Dict[str, Any]:
        """Execute a stack of programs sequentially, piping outputs along.

        ``inputs`` binds the first program; each later program must take a
        single input, fed from the previous program's single output (the
        per-layer encoder programs have exactly this shape).  Because
        :meth:`CompiledProgram.run` copies inputs into persistent staging
        buffers *before* dispatching, the intermediate hand-off can use
        arena views (``copy_outputs=False``) -- even when consecutive
        stack entries are the same program object -- so the stack pays one
        output copy total, at the end (controlled by ``copy_outputs``).

        This is the sequential baseline the stacked whole-model program is
        differentially tested against; prefer a single N-layer
        :class:`Program` (one arena plan spanning all layers) when the
        stack shape is known ahead of time.
        """
        if not programs:
            raise ProgramError("run_stack needs at least one program")
        result: Optional[Dict[str, Any]] = None
        last = len(programs) - 1
        for i, program in enumerate(programs):
            if result is not None:
                specs = program.input_values()
                if len(specs) != 1 or len(result) != 1:
                    raise ProgramError(
                        f"run_stack cannot pipe {len(result)} outputs into "
                        f"the {len(specs)} inputs of program "
                        f"{program.name!r}; only single-input/single-output "
                        "chaining is supported")
                inputs = {specs[0].name: next(iter(result.values()))}
            result = self.run(program, inputs,
                              copy_outputs=copy_outputs if i == last
                              else False)
        return result

    def run_sharded(self, sharded: ShardedProgram,
                    inputs: Dict[str, Union[np.ndarray, RaggedTensor]],
                    signature: Optional[Any] = None,
                    engine: Optional[ExecutionEngine] = None
                    ) -> Dict[str, np.ndarray]:
        """Execute a :class:`ShardedProgram` and reassemble its outputs.

        Dense inputs are sliced per shard along their leading dimension:
        an array whose first axis is the batch's total token count is cut
        at the shard's token range, one whose first axis is the sequence
        count at the shard's sequence range.  Outputs (dense, leading
        token/sequence axis) are concatenated back in shard order --
        bit-identical reassembly, since shards never split a sequence and
        each shard program runs the same node functions on the same
        per-shard arrays as an unsharded run of just those sequences.

        Fused sharded programs execute as *one* dispatch of the merged
        wide program (each shard a disjoint subgraph), which is where a
        width-aware engine overlaps the shards; unfused ones run the
        shard programs back to back.
        """
        shards = sharded.shards
        total_tokens = sharded.total_tokens
        total_seqs = sharded.num_sequences

        def _slice(name: str, shard: ShardSpec) -> np.ndarray:
            try:
                value = inputs[name]
            except KeyError:
                raise ProgramError(
                    f"missing program input {name!r}") from None
            if isinstance(value, RaggedTensor):
                raise ProgramError(
                    f"run_sharded slices dense inputs only; input {name!r} "
                    "is a RaggedTensor (pack it first)")
            arr = np.asarray(value)
            if arr.ndim >= 1 and arr.shape[0] == total_tokens:
                return arr[shard.token_start:shard.token_stop]
            if arr.ndim >= 1 and arr.shape[0] == total_seqs:
                return arr[shard.seq_start:shard.seq_stop]
            raise ProgramError(
                f"cannot shard input {name!r}: leading dim of shape "
                f"{arr.shape} matches neither total tokens "
                f"({total_tokens}) nor the sequence count ({total_seqs})")

        def _dense(oname: str, value: Any) -> np.ndarray:
            if isinstance(value, RaggedTensor):
                raise ProgramError(
                    f"run_sharded only reassembles dense outputs; "
                    f"output {oname!r} is ragged")
            return np.asarray(value)

        if sharded.fused is not None:
            info = sharded.fused.merge_info
            if info is None:
                # Single shard: the "fused" program is the shard program.
                bound = {spec.name: _slice(spec.name, shards[0])
                         for spec in sharded.fused.input_values()}
                out = self.run(sharded.fused, bound, signature=signature,
                               engine=engine)
                return {k: _dense(k, v) for k, v in out.items()}
            bound = {}
            for i, shard in enumerate(shards):
                for spec in sharded.programs[i].input_values():
                    bound[info.input_name(i, spec.name)] = _slice(
                        spec.name, shard)
            merged_out = self.run(sharded.fused, bound, copy_outputs=False,
                                  signature=signature, engine=engine)
            result: Dict[str, np.ndarray] = {}
            for oname in sharded.programs[0].outputs:
                parts = [_dense(oname,
                                merged_out[info.output_name(i, oname)])
                         for i in range(len(shards))]
                result[oname] = np.concatenate(parts, axis=0)
            return result

        pieces: Dict[str, List[np.ndarray]] = {}
        for i, shard in enumerate(shards):
            program = sharded.programs[i]
            bound = {spec.name: _slice(spec.name, shard)
                     for spec in program.input_values()}
            # Copies are required: shards with equal length vectors share
            # one compiled program, whose arena the next shard overwrites.
            out = self.run(program, bound, copy_outputs=True,
                           engine=engine)
            for oname, value in out.items():
                pieces.setdefault(oname, []).append(_dense(oname, value))
        return {oname: np.concatenate(vals, axis=0)
                for oname, vals in pieces.items()}

    # -- memoization ------------------------------------------------------------

    def memoize(self, key: Tuple, factory: Callable[[], Any]) -> Any:
        """Generic LRU memo scoped to this session (cleared by ``reset``).

        The model layer uses this to build each program once per
        raggedness signature; entries may pin objects (weights, programs)
        for their lifetime in the memo.
        """
        value = self._memo.get(key)
        if value is None:
            value = factory()
            self._memo.put(key, value)
        return value

    # -- state management -------------------------------------------------------

    def reset(self) -> None:
        """Drop every cache and counter owned by this session.

        Clears the compiled-program LRU, the builder memo, the
        per-signature statistics, and the prelude memo/cache with their
        statistics.  A session-private executor is reset *cold*: its
        kernel cache is dropped and its lowering / kernel-cache / codegen
        (vectorized vs fallback) counters are zeroed, so a replay after
        ``reset()`` reproduces the original ``lower_count`` trajectory
        exactly -- repeated benchmark runs start from the same state.  The
        process-wide shared executor is left alone (other sessions and
        the op-by-op helpers depend on it -- reset it explicitly via
        ``executor.reset()`` if that is what you want).  Deterministic
        cleanup hook for tests and long-running processes.
        """
        self._programs.clear()
        self._memo.clear()
        self.prelude_cache.clear()
        self.prelude_cache.hits = 0
        self.prelude_cache.misses = 0
        self.prelude_memo.clear()
        self.prelude_memo_stats["hits"] = 0
        self.prelude_memo_stats["misses"] = 0
        self.program_compiles = 0
        self.program_cache_hits = 0
        self.cold_compiles = 0
        self.disk_hit_compiles = 0
        self.run_count = 0
        self.signature_stats.clear()
        self._signature_totals["hits"] = 0
        self._signature_totals["misses"] = 0
        self.engine.reset_stats()
        if self._private_executor:
            self.executor.reset()

    def close(self) -> None:
        """Release the engine's worker resources (idempotent).

        A pipelined engine keeps a thread pool alive across runs, and a
        process-pool engine worker processes plus shared-memory arenas;
        call this (or use the session as a context manager) when the
        session is done, so repeatedly constructed sessions do not
        accumulate idle workers for the process lifetime.  The session
        remains usable afterwards -- the engine recreates its pool
        lazily on the next run.  **Ownership rule**: an engine passed in
        as an *instance* is left alone -- it may be shared across
        sessions, serving other sessions' in-flight runs -- and closing
        the session any number of times never touches it; close a shared
        engine explicitly via ``engine.close()`` when the *owner* is
        done with it (that call too is idempotent and reuse-safe).  Only
        engines the session constructed itself (from a name or ``None``)
        are shut down here.
        """
        if self._owns_engine:
            self.engine.close()
        if self._policy is not None:
            deactivate_policy(self._policy)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """Session counters plus engine and executor codegen statistics."""
        return {
            "backend": self.backend,
            "engine": self.engine.stats(),
            "inplace": self.inplace,
            "fuse": self.fuse,
            "program_compiles": self.program_compiles,
            "program_cache_hits": self.program_cache_hits,
            "cold_compiles": self.cold_compiles,
            "disk_hits": self.disk_hit_compiles,
            "runs": self.run_count,
            "cached_programs": len(self._programs),
            "prelude_memo": dict(self.prelude_memo_stats),
            "signature_hits": self._signature_totals["hits"],
            "signature_misses": self._signature_totals["misses"],
            "tune": {
                "mode": self.tune,
                "policy": (self._policy.stats()
                           if self._policy is not None else None),
                "schedule_db": (self.schedule_db.stats()
                                if self.schedule_db is not None else None),
                "fuse_overrides": self.tuned_fuse_overrides,
            },
            "codegen": self.executor.codegen_stats(),
        }


#: Process-wide default sessions, one per backend name (mirrors
#: ``shared_executor``); the model-layer convenience paths route through
#: these so program and prelude caches persist across calls.
_DEFAULT_SESSIONS: Dict[str, Session] = {}


def default_session(backend: str = "vector") -> Session:
    """The process-wide default :class:`Session` for the given backend."""
    session = _DEFAULT_SESSIONS.get(backend)
    if session is None:
        session = Session(backend=backend)
        _DEFAULT_SESSIONS[backend] = session
    return session


def reset_default_sessions() -> None:
    """Reset every process-wide default session (tests / long processes)."""
    for session in _DEFAULT_SESSIONS.values():
        session.reset()


#: Sessions wrapped around explicitly-passed executors, keyed weakly by
#: the executor object: repeated calls with the same executor reuse one
#: session (and hence its compiled programs / arena) instead of paying
#: full AOT compilation per call.  Entries die with their executor.
_EXECUTOR_SESSIONS: "weakref.WeakKeyDictionary[Executor, Session]" = None


def session_for_executor(executor: Executor) -> Session:
    """The memoized :class:`Session` wrapping an explicit executor."""
    global _EXECUTOR_SESSIONS
    if _EXECUTOR_SESSIONS is None:
        import weakref

        _EXECUTOR_SESSIONS = weakref.WeakKeyDictionary()
    session = _EXECUTOR_SESSIONS.get(executor)
    if session is None:
        session = Session(executor=executor)
        _EXECUTOR_SESSIONS[executor] = session
    return session
