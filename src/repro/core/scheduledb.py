"""Persistent per-signature schedule database.

The AOT cache (:mod:`repro.core.aotcache`) persists *compiled kernels*;
this module persists *schedule decisions* -- which
:class:`~repro.core.tunespace.TunePoint` won the autotuning search for
each ``(op, raggedness-signature bucket, backend)``.  Together they make
a fresh process start tuned with zero search on the hot path: the
schedule DB tells the node builders which schedule to build, and the
AOT cache serves that schedule's kernel without lowering.

One JSON file (``<root>/schedules.json``) holds everything:

.. code-block:: json

    {
      "version": 1,
      "entries": {
        "attnv|8x32x128|vector|v1": {
          "op": "attnv", "bucket": [8, 32, 128], "backend": "vector",
          "point": {"tile": 8, "remap": true},
          "default_point": {"tile": 0, "remap": false},
          "tuned_s": 0.00071, "default_s": 0.00082,
          "improvement": 0.134, "bit_identical": true,
          "iterations": 11, "source": "search"
        }
      },
      "traffic": {
        "8x32x128": {"batches": 412, "valid": 91520, "padded": 4120}
      }
    }

``entries`` are the tuned winners; ``traffic`` is the serving
scheduler's live per-bucket token census (see
``BatchScheduler(schedule_db=...)``), which :func:`ScheduleDB.top_buckets`
orders so offline tuning prioritises the signatures that dominate real
traffic.  Writes are atomic (temp file + ``os.replace``, the AOT-cache
pattern) and every load/save failure degrades to an empty DB / silent
no-op -- a corrupt schedule DB can cost performance, never correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.aotcache import AOT_VERSION, default_cache_dir

#: Autosave cadence for traffic recording (records, not batches).
_TRAFFIC_AUTOSAVE = 32


def _bucket_str(bucket: Sequence[int]) -> str:
    return "x".join(str(int(b)) for b in bucket)


class ScheduleDB:
    """Atomic JSON store of tuned schedule points + live traffic stats."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.entries: Dict[str, Dict[str, object]] = {}
        self.traffic: Dict[str, Dict[str, int]] = {}
        self.loads = 0
        self.load_failures = 0
        self.saves = 0
        self.save_failures = 0
        self._unsaved_traffic = 0
        self.load()

    @property
    def path(self) -> Path:
        return self.root / "schedules.json"

    @staticmethod
    def key(op: str, bucket: Sequence[int], backend: str) -> str:
        """The entry key: op, bucket, backend and the payload version
        (a version bump invalidates every stored decision)."""
        return f"{op}|{_bucket_str(bucket)}|{backend}|v{AOT_VERSION}"

    # -- persistence ---------------------------------------------------------

    def load(self) -> bool:
        """(Re)read the file; any failure leaves an empty DB."""
        try:
            with open(self.path, "r") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict) \
                    or payload.get("version") != AOT_VERSION:
                raise ValueError("stale or malformed schedule DB")
            entries = payload.get("entries", {})
            traffic = payload.get("traffic", {})
            if not isinstance(entries, dict) or not isinstance(traffic, dict):
                raise ValueError("malformed schedule DB sections")
        except FileNotFoundError:
            return False
        except Exception:
            self.load_failures += 1
            return False
        self.entries = entries
        self.traffic = traffic
        self.loads += 1
        return True

    def save(self) -> bool:
        """Atomically persist; ``False`` (never raise) on failure."""
        payload = {
            "version": AOT_VERSION,
            "entries": self.entries,
            "traffic": self.traffic,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                       prefix=".schedules.", suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.save_failures += 1
            return False
        self.saves += 1
        self._unsaved_traffic = 0
        return True

    # -- tuned entries -------------------------------------------------------

    def get(self, op: str, bucket: Sequence[int], backend: str,
            ) -> Optional[Dict[str, object]]:
        return self.entries.get(self.key(op, bucket, backend))

    def put(self, op: str, bucket: Sequence[int], backend: str,
            entry: Dict[str, object], save: bool = True) -> str:
        key = self.key(op, bucket, backend)
        stored = dict(entry)
        stored.setdefault("op", op)
        stored.setdefault("bucket", [int(b) for b in bucket])
        stored.setdefault("backend", backend)
        self.entries[key] = stored
        if save:
            self.save()
        return key

    # -- traffic census ------------------------------------------------------

    def record_traffic(self, bucket: Sequence[int], valid_tokens: int,
                       padded_tokens: int) -> None:
        """Count one executed batch against its raggedness bucket.

        Autosaves every ``_TRAFFIC_AUTOSAVE`` records so long-running
        schedulers leave a census behind without an explicit save.
        """
        row = self.traffic.setdefault(
            _bucket_str(bucket), {"batches": 0, "valid": 0, "padded": 0})
        row["batches"] += 1
        row["valid"] += int(valid_tokens)
        row["padded"] += int(padded_tokens)
        self._unsaved_traffic += 1
        if self._unsaved_traffic >= _TRAFFIC_AUTOSAVE:
            self.save()

    def top_buckets(self, n: int = 8) -> List[Tuple[Tuple[int, ...], Dict[str, int]]]:
        """The busiest raggedness buckets, by executed batches -- the
        offline tuner's priority order."""
        rows = sorted(self.traffic.items(),
                      key=lambda kv: (-kv[1].get("batches", 0), kv[0]))
        out = []
        for key, row in rows[:n]:
            try:
                bucket = tuple(int(p) for p in key.split("x"))
            except ValueError:
                continue
            out.append((bucket, dict(row)))
        return out

    def dominant_share(self) -> Optional[float]:
        """Fraction of recorded batches landing in the single busiest
        bucket (``None`` with no traffic)."""
        total = sum(r.get("batches", 0) for r in self.traffic.values())
        if total <= 0:
            return None
        top = max(r.get("batches", 0) for r in self.traffic.values())
        return top / total

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "entries": len(self.entries),
            "traffic_buckets": len(self.traffic),
            "loads": self.loads,
            "load_failures": self.load_failures,
            "saves": self.saves,
            "save_failures": self.save_failures,
        }


__all__ = ["ScheduleDB"]
