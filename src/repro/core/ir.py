"""Expression and loop-nest IR.

The frontend (``repro.core.operator``) builds an *expression tree* for the
body of a ragged operator; lowering (``repro.core.lowering``) wraps it into a
*loop nest* whose loops carry extents (constant or variable), padding and
scheduling annotations.  Code generation (``repro.core.codegen``) walks the
loop nest and emits executable Python.

The IR is deliberately small -- just enough to express the operators in the
paper's evaluation (elementwise ops, reductions / matmuls, softmax-style
normalisations) -- but it is a real IR: expressions are data, not opaque
Python callables, so the compiler can analyse accesses, hoist auxiliary-data
loads (Section 7.4, "load hoisting") and count FLOPs for the cost model.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.dims import Dim
from repro.core.errors import LoweringError
from repro.core.extents import Extent


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all expression nodes."""

    def __add__(self, other): return BinOp("+", self, wrap(other))
    def __radd__(self, other): return BinOp("+", wrap(other), self)
    def __sub__(self, other): return BinOp("-", self, wrap(other))
    def __rsub__(self, other): return BinOp("-", wrap(other), self)
    def __mul__(self, other): return BinOp("*", self, wrap(other))
    def __rmul__(self, other): return BinOp("*", wrap(other), self)
    def __truediv__(self, other): return BinOp("/", self, wrap(other))
    def __rtruediv__(self, other): return BinOp("/", wrap(other), self)
    def __neg__(self): return BinOp("-", Const(0.0), self)

    def children(self) -> Tuple["Expr", ...]:
        return ()


def wrap(value: Union["Expr", float, int]) -> "Expr":
    """Coerce Python numbers into :class:`Const` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A floating-point constant."""

    value: float


@dataclass(frozen=True)
class LoopVar(Expr):
    """The iteration variable of the loop associated with a named dimension."""

    dim: Dim

    @property
    def name(self) -> str:
        return self.dim.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation (``+``, ``-``, ``*``, ``/``, ``max``, ``min``)."""

    op: str
    lhs: Expr
    rhs: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Call(Expr):
    """A call to a math intrinsic (``exp``, ``sqrt``, ``tanh``, ``relu``...)."""

    fn: str
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class TensorAccess(Expr):
    """A read of one element of an input tensor."""

    tensor: "TensorSpec"
    indices: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.indices


@dataclass(frozen=True)
class Reduce(Expr):
    """A reduction of ``body`` over one or more reduction dimensions.

    ``combiner`` is ``"sum"``, ``"max"`` or ``"min"``; ``init`` is the
    identity element.
    """

    combiner: str
    body: Expr
    axes: Tuple["ReduceAxis", ...]
    init: float = 0.0

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class ReduceAxis:
    """A reduction axis: a named dimension with an extent."""

    dim: Dim
    extent: Extent


# Convenience intrinsics -----------------------------------------------------


def exp(x: Union[Expr, float]) -> Expr:
    return Call("exp", (wrap(x),))


def sqrt(x: Union[Expr, float]) -> Expr:
    return Call("sqrt", (wrap(x),))


def tanh(x: Union[Expr, float]) -> Expr:
    return Call("tanh", (wrap(x),))


def relu(x: Union[Expr, float]) -> Expr:
    return Call("relu", (wrap(x),))


def maximum(a: Union[Expr, float], b: Union[Expr, float]) -> Expr:
    return BinOp("max", wrap(a), wrap(b))


def minimum(a: Union[Expr, float], b: Union[Expr, float]) -> Expr:
    return BinOp("min", wrap(a), wrap(b))


# ---------------------------------------------------------------------------
# Tensors (symbolic, compile-time)
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class TensorSpec:
    """A symbolic tensor: a name, its dimensions and their extents.

    Input tensors are created with :func:`repro.core.operator.input_tensor`;
    each operator also has an output ``TensorSpec``.  At execution time the
    executor binds each spec to a concrete
    :class:`~repro.core.ragged_tensor.RaggedTensor` or dense NumPy array.
    """

    name: str
    dims: Tuple[Dim, ...]
    extents: Tuple[Extent, ...]

    def __getitem__(self, indices) -> TensorAccess:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != len(self.dims):
            raise LoweringError(
                f"tensor {self.name} has {len(self.dims)} dimensions but was "
                f"indexed with {len(indices)}"
            )
        exprs = []
        for idx in indices:
            if isinstance(idx, Dim):
                exprs.append(LoopVar(idx))
            elif isinstance(idx, Expr):
                exprs.append(idx)
            elif isinstance(idx, (int, float)):
                exprs.append(Const(float(idx)))
            else:
                raise LoweringError(f"cannot index tensor with {idx!r}")
        return TensorAccess(self, tuple(exprs))

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:
        return f"TensorSpec({self.name!r}, dims={[d.name for d in self.dims]})"


# ---------------------------------------------------------------------------
# Loop nest
# ---------------------------------------------------------------------------


class LoopKind(enum.Enum):
    CONSTANT = "cloop"
    VARIABLE = "vloop"
    FUSED = "fused"
    REDUCTION = "rloop"


class Annotation(enum.Enum):
    NONE = "none"
    PARALLEL = "parallel"
    VECTORIZE = "vectorize"
    UNROLL = "unroll"
    BIND_BLOCK = "blockIdx"
    BIND_THREAD = "threadIdx"


@dataclass
class Loop:
    """One loop of the lowered nest."""

    dim: Dim
    extent: Extent
    kind: LoopKind
    annotation: Annotation = Annotation.NONE
    #: For fused loops, the fusion-map name registered with the prelude.
    fusion_map: Optional[str] = None
    #: For thread-remapped loops, the name of the remap permutation array.
    remap: Optional[str] = None

    @property
    def is_variable(self) -> bool:
        return self.kind in (LoopKind.VARIABLE, LoopKind.FUSED)

    def __repr__(self) -> str:
        return (
            f"Loop({self.dim.name}, {self.kind.value}, "
            f"{self.annotation.value})"
        )


@dataclass
class LoopNest:
    """A fully lowered operator: ordered loops plus a single store statement."""

    loops: List[Loop]
    output: TensorSpec
    output_indices: Tuple[Expr, ...]
    body: Expr
    #: Extra guard predicates (e.g. from operation splitting).
    predicates: List[Expr] = field(default_factory=list)

    def loop_for(self, dim: Dim) -> Loop:
        for loop in self.loops:
            if loop.dim is dim:
                return loop
        raise LoweringError(f"no loop for dimension {dim!r} in this nest")

    def loop_dims(self) -> List[Dim]:
        return [l.dim for l in self.loops]


# ---------------------------------------------------------------------------
# IR traversal helpers
# ---------------------------------------------------------------------------


def walk(expr: Expr):
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def tensor_reads(expr: Expr) -> List[TensorAccess]:
    """All tensor reads in an expression."""
    return [e for e in walk(expr) if isinstance(e, TensorAccess)]


def loop_vars_used(expr: Expr) -> List[Dim]:
    """Named dimensions whose loop variables appear in ``expr``."""
    seen: List[Dim] = []
    for e in walk(expr):
        if isinstance(e, LoopVar) and e.dim not in seen:
            seen.append(e.dim)
    return seen


def reductions_in(expr: Expr) -> List[Reduce]:
    return [e for e in walk(expr) if isinstance(e, Reduce)]


def count_flops(expr: Expr) -> int:
    """Number of floating-point operations one evaluation of ``expr`` costs.

    Reductions multiply their body cost (plus one combine op) by the extent
    of the reduction axes; variable reduction extents use their maximum.
    This is the per-point cost used by the analytical cost model.
    """
    if isinstance(expr, (Const, LoopVar, TensorAccess)):
        return 0 if not isinstance(expr, TensorAccess) else 0
    if isinstance(expr, BinOp):
        return 1 + count_flops(expr.lhs) + count_flops(expr.rhs)
    if isinstance(expr, Call):
        # Count transcendental calls as a handful of flops.
        return 4 + sum(count_flops(a) for a in expr.args)
    if isinstance(expr, Reduce):
        per_iter = count_flops(expr.body) + 1
        total = per_iter
        for axis in expr.axes:
            total *= max(int(axis.extent.max_value()), 1)
        return total
    return 0
