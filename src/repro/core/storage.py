"""Ragged storage layouts and O(1) storage-access lowering.

This module implements the storage scheme of paper Section 5.3 / Appendix
B.1 (Algorithm 1).  A :class:`RaggedLayout` describes how a (possibly
ragged) tensor is laid out in a flat buffer:

* every dimension has an :class:`~repro.core.extents.Extent` which may be a
  constant (*cdim*) or a function of one outer dimension's index (*vdim*);
* every dimension may additionally carry a *storage padding* multiple, so a
  vdim slice of length ``s(b)`` occupies ``ceil(s(b) / pad) * pad`` elements;
* the data inside each slice is densely packed, so -- unlike CSR-style sparse
  formats -- no per-element indices need to be stored and an access costs a
  constant number of operations once the per-governing-dimension offset
  arrays have been computed by the prelude.

The offset arrays correspond to the ``A_d`` functions of Algorithm 1: for
each dimension ``d`` that governs at least one inner vdim, ``A_d[k]`` is the
cumulative number of elements occupied by slices ``0 .. k-1`` of ``d``.
Because this prototype (like the paper's) restricts vdims to depend on the
outermost dimension, a single cumulative array per tensor suffices; the
general recursive definition is kept in the docstrings for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dgraph import DimensionGraph
from repro.core.dims import Dim
from repro.core.errors import StorageError
from repro.core.extents import (
    ConstExtent,
    Extent,
    PaddedExtent,
    VarExtent,
    as_extent,
    ceil_to,
)


@dataclass
class LayoutAux:
    """Auxiliary data structures produced by the prelude for one layout.

    Attributes
    ----------
    row_offsets:
        ``A_0`` of Algorithm 1 -- for each index ``b`` of the governing
        (outermost) dimension, the flat-buffer offset where slice ``b``
        starts.  Has length ``extent(dim 0) + 1`` so ``row_offsets[-1]`` is
        the total storage size.
    slice_shapes:
        Per governing index, the (storage-padded) shape of the inner
        sub-tensor.  Shape ``(extent(dim 0), ndim - 1)``.
    slice_strides:
        Row-major strides matching ``slice_shapes``.
    total_size:
        Total number of elements in the flat buffer.
    """

    row_offsets: np.ndarray
    slice_shapes: np.ndarray
    slice_strides: np.ndarray
    total_size: int

    @property
    def memory_bytes(self) -> int:
        """Bytes occupied by the auxiliary arrays themselves."""
        return int(
            self.row_offsets.nbytes
            + self.slice_shapes.nbytes
            + self.slice_strides.nbytes
        )


class RaggedLayout:
    """The storage layout of a (possibly ragged) tensor.

    Parameters
    ----------
    dims:
        Named dimensions, outermost first.
    extents:
        One extent per dimension.  Ints are accepted and treated as
        constants.
    storage_padding:
        Optional mapping from dimension to a padding multiple; slices of
        that dimension are padded up to the multiple in storage.  This is
        the storage counterpart of ``pad_dimension`` in the paper.
    """

    def __init__(
        self,
        dims: Sequence[Dim],
        extents: Sequence[Union[int, Extent]],
        storage_padding: Optional[Dict[Dim, int]] = None,
    ):
        self.dims: Tuple[Dim, ...] = tuple(dims)
        raw_extents = [as_extent(e) for e in extents]
        if len(self.dims) != len(raw_extents):
            raise StorageError(
                f"got {len(self.dims)} dims but {len(raw_extents)} extents"
            )
        self.storage_padding: Dict[Dim, int] = dict(storage_padding or {})
        for d, mult in self.storage_padding.items():
            if d not in self.dims:
                raise StorageError(f"padding specified for unknown dimension {d!r}")
            if mult <= 0:
                raise StorageError(f"padding multiple must be positive, got {mult}")
        self.base_extents: Tuple[Extent, ...] = tuple(raw_extents)
        self.extents: Tuple[Extent, ...] = tuple(
            ext.padded(self.storage_padding.get(d, 1))
            for d, ext in zip(self.dims, raw_extents)
        )
        self.dgraph = DimensionGraph.from_layout(self.dims, self.extents)
        self._validate_prototype_restriction()
        self._aux: Optional[LayoutAux] = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def dense(cls, dims: Sequence[Dim], shape: Sequence[int]) -> "RaggedLayout":
        """A fully dense (padded) layout with constant extents."""
        return cls(dims, [ConstExtent(int(s)) for s in shape])

    @classmethod
    def ragged_2d(
        cls,
        batch_dim: Dim,
        len_dim: Dim,
        batch_size: int,
        lengths: Union[Sequence[int], np.ndarray],
        pad: int = 1,
    ) -> "RaggedLayout":
        """The ubiquitous ``[batch, variable-length]`` layout."""
        lens = np.asarray(lengths, dtype=np.int64)
        if lens.shape != (batch_size,):
            raise StorageError(
                f"lengths must have shape ({batch_size},), got {lens.shape}"
            )
        padding = {len_dim: pad} if pad > 1 else None
        return cls(
            [batch_dim, len_dim],
            [ConstExtent(batch_size), VarExtent(batch_dim, lens)],
            storage_padding=padding,
        )

    # -- structure -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def index_of(self, dim: Dim) -> int:
        return self.dgraph.index_of(dim)

    def is_vdim(self, i: int) -> bool:
        return self.dgraph.is_vdim(i)

    @property
    def is_ragged(self) -> bool:
        """True if the layout has at least one variable dimension."""
        return bool(self.dgraph.vdims())

    def storage_pad_of(self, i: int) -> int:
        return self.storage_padding.get(self.dims[i], 1)

    def _validate_prototype_restriction(self) -> None:
        """All vdims must depend on the outermost dimension (index 0)."""
        for i in self.dgraph.vdims():
            deps = self.dgraph.incoming(i)
            if deps != [0]:
                raise StorageError(
                    f"vdim {self.dims[i].name} depends on "
                    f"{self.dims[deps[0]].name}; this prototype (like the "
                    "paper's) only supports vdims governed by the outermost "
                    "dimension"
                )

    # -- sizes ----------------------------------------------------------------

    def governing_extent(self) -> int:
        """Extent of the outermost (governing) dimension."""
        return int(self.extents[0]())

    def slice_shape(self, b: int) -> Tuple[int, ...]:
        """The (storage-padded) shape of the sub-tensor at outer index ``b``."""
        shape = []
        for i in range(1, self.ndim):
            ext = self.extents[i]
            shape.append(int(ext(b)) if not ext.is_constant else int(ext()))
        return tuple(shape)

    def dense_shape(self) -> Tuple[int, ...]:
        """The fully padded shape (every extent at its maximum)."""
        return tuple(int(e.max_value()) for e in self.extents)

    def total_size(self) -> int:
        """Total number of stored elements, including storage padding."""
        return int(self.build_aux().total_size)

    def dense_size(self) -> int:
        size = 1
        for s in self.dense_shape():
            size *= s
        return size

    def padding_fraction(self) -> float:
        """Fraction of stored elements that are padding (0 for exact storage)."""
        unpadded = RaggedLayout(self.dims, self.base_extents)
        useful = unpadded.total_size()
        stored = self.total_size()
        if stored == 0:
            return 0.0
        return 1.0 - useful / stored

    # -- auxiliary data (prelude output) --------------------------------------

    def build_aux(self, force: bool = False) -> LayoutAux:
        """Compute the offset arrays (the storage part of the prelude).

        This is the vectorised equivalent of the ``row_idx`` loop in the
        paper's Figure 4: for the governing dimension we accumulate the
        padded sizes of all inner slices.
        """
        if self._aux is not None and not force:
            return self._aux
        m = self.governing_extent()
        batch_idx = np.arange(m, dtype=np.int64)
        # Per-governing-index shape of the inner sub-tensor.
        shapes = np.empty((m, max(self.ndim - 1, 1)), dtype=np.int64)
        if self.ndim == 1:
            shapes[:, 0] = 1
        for col, i in enumerate(range(1, self.ndim)):
            ext = self.extents[i]
            if ext.is_constant:
                shapes[:, col] = int(ext())
            else:
                shapes[:, col] = np.asarray(ext(batch_idx), dtype=np.int64)
        # Row-major strides within each slice.
        strides = np.ones_like(shapes)
        for col in range(shapes.shape[1] - 2, -1, -1):
            strides[:, col] = strides[:, col + 1] * shapes[:, col + 1]
        slice_sizes = shapes.prod(axis=1) if self.ndim > 1 else np.ones(m, dtype=np.int64)
        row_offsets = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(slice_sizes, out=row_offsets[1:])
        self._aux = LayoutAux(
            row_offsets=row_offsets,
            slice_shapes=shapes,
            slice_strides=strides,
            total_size=int(row_offsets[-1]),
        )
        return self._aux

    # -- access lowering -------------------------------------------------------

    def offset(self, indices: Sequence[int]) -> int:
        """Flat-buffer offset of element ``indices`` (Algorithm 1, O(1)).

        The offset is ``A_0[b] + sum_i idx_i * stride_i(b)`` where the
        strides are per-governing-index row-major strides over the
        (storage-padded) inner extents.
        """
        if len(indices) != self.ndim:
            raise StorageError(
                f"expected {self.ndim} indices, got {len(indices)}"
            )
        aux = self.build_aux()
        b = int(indices[0])
        if not (0 <= b < self.governing_extent()):
            raise StorageError(
                f"outer index {b} out of range [0, {self.governing_extent()})"
            )
        off = int(aux.row_offsets[b])
        for col, i in enumerate(range(1, self.ndim)):
            idx = int(indices[i])
            extent_here = int(aux.slice_shapes[b, col])
            if not (0 <= idx < extent_here):
                raise StorageError(
                    f"index {idx} out of range [0, {extent_here}) for "
                    f"dimension {self.dims[i].name} at outer index {b}"
                )
            off += idx * int(aux.slice_strides[b, col])
        return off

    def offsets(self, index_arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Vectorised version of :meth:`offset` (no bounds checking)."""
        if len(index_arrays) != self.ndim:
            raise StorageError(
                f"expected {self.ndim} index arrays, got {len(index_arrays)}"
            )
        aux = self.build_aux()
        b = np.asarray(index_arrays[0], dtype=np.int64)
        off = aux.row_offsets[b].astype(np.int64)
        for col, i in enumerate(range(1, self.ndim)):
            idx = np.asarray(index_arrays[i], dtype=np.int64)
            off = off + idx * aux.slice_strides[b, col]
        return off

    def slice_bounds(self, b: int) -> Tuple[int, int]:
        """``(start, end)`` offsets of the slice at governing index ``b``."""
        aux = self.build_aux()
        return int(aux.row_offsets[b]), int(aux.row_offsets[b + 1])

    # -- derived layouts -------------------------------------------------------

    def with_padding(self, padding: Dict[Dim, int]) -> "RaggedLayout":
        """Return a copy of this layout with additional storage padding."""
        merged = dict(self.storage_padding)
        for d, mult in padding.items():
            merged[d] = int(np.lcm(merged.get(d, 1), mult))
        return RaggedLayout(self.dims, self.base_extents, merged)

    def fully_padded(self) -> "RaggedLayout":
        """The dense layout obtained by padding every vdim to its maximum."""
        return RaggedLayout.dense(self.dims, self.dense_shape())

    def fuse_dims(self, outer: Dim, inner: Dim) -> "RaggedLayout":
        """Fuse two adjacent dimensions of the layout (paper Section 5.1).

        The inner dimension must directly follow the outer one.  The fused
        dimension's extent is the sum of the inner extents over the outer
        index range, i.e. the total number of (padded) elements in the pair.
        Fusing a cdim with its governed vdim gives the flat ``[sum of
        lengths]`` layout used for the transformer projection operators.
        """
        i = self.index_of(outer)
        j = self.index_of(inner)
        if j != i + 1:
            raise StorageError(
                f"can only fuse adjacent dimensions; {outer.name} is at {i} "
                f"and {inner.name} is at {j}"
            )
        if i != 0:
            raise StorageError(
                "this prototype only fuses the outermost dimension pair"
            )
        from repro.core.dims import FusedDim  # local import to avoid cycle

        m = self.governing_extent()
        inner_ext = self.extents[j]
        if inner_ext.is_constant:
            fused_total = m * int(inner_ext())
        else:
            fused_total = int(np.asarray(inner_ext(np.arange(m))).sum())
        fused = FusedDim(outer=outer, inner=inner)
        new_dims = [fused] + list(self.dims[j + 1 :])
        new_extents: List[Extent] = [ConstExtent(fused_total)]
        for k in range(j + 1, self.ndim):
            ext = self.base_extents[k]
            if not ext.is_constant:
                raise StorageError(
                    "cannot fuse the governing dimension while inner vdims "
                    "still depend on it"
                )
            new_extents.append(ext)
        padding = {
            d: p for d, p in self.storage_padding.items() if d in new_dims
        }
        return RaggedLayout(new_dims, new_extents, padding)

    def __repr__(self) -> str:
        parts = []
        for i, d in enumerate(self.dims):
            ext = self.extents[i]
            tag = f"{d.name}={ext!r}"
            parts.append(tag)
        return "RaggedLayout(" + ", ".join(parts) + ")"
