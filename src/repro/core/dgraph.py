"""Dimension graphs (dgraphs).

The *dimension graph* of a tensor (paper Section 5.3, Figures 8 and 16)
records which dimensions' slice sizes depend on which outer dimensions.
An edge ``d1 -> d2`` exists when the extent of ``d2`` is a function of the
index of ``d1``.  cdims have no incoming edges; vdims have exactly one in
this prototype (matching the paper's Section 6 restriction).

CoRa models these dependences *precisely*: for the 4-D attention tensor
``X[batch, seq1, heads, seq2]`` both ``seq1`` and ``seq2`` depend only on
``batch``.  The tree-based scheme used by sparse tensor compilers (CSF /
Taco) instead assumes each sparse level may depend on all outer levels and
therefore stores per-slice position arrays whose size grows with the number
of slices -- the dgraph lets CoRa compute how much smaller its auxiliary
data is (evaluated in Section 7.4 / Tables 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.dims import Dim, DimKind
from repro.core.errors import StorageError
from repro.core.extents import Extent


@dataclass(frozen=True)
class DimensionGraph:
    """The dependence graph between the dimensions of one tensor layout.

    Parameters
    ----------
    dims:
        Dimensions ordered outermost first.
    extents:
        The extent of each dimension (same order).
    """

    dims: Tuple[Dim, ...]
    extents: Tuple[Extent, ...]

    @classmethod
    def from_layout(cls, dims: Sequence[Dim], extents: Sequence[Extent]) -> "DimensionGraph":
        dims = tuple(dims)
        extents = tuple(extents)
        if len(dims) != len(extents):
            raise StorageError("dims and extents must have the same length")
        graph = cls(dims=dims, extents=extents)
        graph.validate()
        return graph

    # -- structure ---------------------------------------------------------

    def index_of(self, dim: Dim) -> int:
        for i, d in enumerate(self.dims):
            if d is dim:
                return i
        raise StorageError(f"dimension {dim!r} is not part of this layout")

    def incoming(self, i: int) -> List[int]:
        """IG(i): indices of dimensions the extent of dim ``i`` depends on."""
        deps = self.extents[i].deps
        result = []
        for dep in deps:
            j = self.index_of(dep)
            result.append(j)
        return result

    def outgoing(self, i: int) -> List[int]:
        """OG(i): indices of dimensions whose extent depends on dim ``i``."""
        me = self.dims[i]
        return [j for j, ext in enumerate(self.extents) if me in ext.deps]

    def transitive_outgoing(self, i: int) -> Set[int]:
        """O*_G(i): all dimensions transitively dependent on dim ``i``."""
        seen: Set[int] = set()
        frontier = list(self.outgoing(i))
        while frontier:
            j = frontier.pop()
            if j in seen:
                continue
            seen.add(j)
            frontier.extend(self.outgoing(j))
        return seen

    def kind(self, i: int) -> DimKind:
        """Whether dim ``i`` is a cdim or a vdim in this layout."""
        return DimKind.CONSTANT if self.extents[i].is_constant else DimKind.VARIABLE

    def is_vdim(self, i: int) -> bool:
        return self.kind(i) is DimKind.VARIABLE

    def vdims(self) -> List[int]:
        """Indices of all variable dimensions, outermost first."""
        return [i for i in range(len(self.dims)) if self.is_vdim(i)]

    def cdims(self) -> List[int]:
        return [i for i in range(len(self.dims)) if not self.is_vdim(i)]

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants the lowering relies upon.

        * the graph is acyclic (a vdim may only depend on *outer* dims);
        * the outermost dimension is a cdim;
        * every vdim depends on exactly one outer dimension, and that
          dimension is itself a cdim (prototype restriction, Section 6).
        """
        n = len(self.dims)
        if n == 0:
            raise StorageError("a layout needs at least one dimension")
        if self.is_vdim(0):
            raise StorageError("the outermost dimension must be a cdim")
        for i in range(n):
            for j in self.incoming(i):
                if j >= i:
                    raise StorageError(
                        f"dimension {self.dims[i].name} depends on "
                        f"{self.dims[j].name}, which is not an outer dimension"
                    )
            if self.is_vdim(i):
                deps = self.incoming(i)
                if len(deps) != 1:
                    raise StorageError(
                        f"vdim {self.dims[i].name} must depend on exactly one "
                        f"outer dimension (prototype restriction); got {len(deps)}"
                    )
                if self.is_vdim(deps[0]):
                    raise StorageError(
                        f"vdim {self.dims[i].name} depends on another vdim "
                        f"{self.dims[deps[0]].name}; the prototype only supports "
                        "dependences on constant dimensions"
                    )

    # -- auxiliary-data accounting (Section 7.4 / Tables 7-8) ---------------

    def cora_aux_entries(self, governing_extent: int) -> int:
        """Number of auxiliary-array entries CoRa's lowering scheme needs.

        One cumulative-offset array per *governing* dimension (a dimension
        with at least one outgoing edge), of length ``extent + 1``.
        """
        total = 0
        for i in range(len(self.dims)):
            if self.outgoing(i):
                total += int(self.extents[i].max_value()) + 1
        return total if total else 0

    def sparse_scheme_aux_entries(self, lengths: np.ndarray) -> int:
        """Auxiliary entries the CSF-style scheme used by sparse compilers needs.

        Each vdim level stores a position array with one entry per slice of
        that level; the number of slices of a level is the product of the
        (actual) extents of all outer levels -- exactly the
        ``s1 + s3 * sum_i s24(i)`` accounting of Section B.1.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        total = 0
        # Number of "fibers" (slices) at each level, computed incrementally.
        # fiber_counts[i] = number of slices of dimension i.
        per_slice_counts = np.ones_like(lengths)  # per outermost index
        for i in range(1, len(self.dims)):
            extent = self.extents[i]
            if extent.is_constant:
                width = np.full_like(lengths, int(extent()))
            else:
                width = lengths
            if self.is_vdim(i):
                # pos array: one entry per slice of this level (+1 terminator).
                total += int(per_slice_counts.sum()) + 1
            per_slice_counts = per_slice_counts * width
        return total

    def __repr__(self) -> str:
        parts = []
        for i, d in enumerate(self.dims):
            deps = ",".join(self.dims[j].name for j in self.incoming(i))
            tag = f"{d.name}({'v' if self.is_vdim(i) else 'c'}{':' + deps if deps else ''})"
            parts.append(tag)
        return "DimensionGraph[" + " -> ".join(parts) + "]"
