"""Pluggable execution engines: how a compiled program's steps are run.

The :class:`~repro.core.session.CompiledProgram` knows *what* to execute
(a flat list of pre-resolved dispatch steps) and the
:class:`~repro.core.planner.ProgramPlan` knows the exact partial order
those steps must respect (data edges plus the anti-dependences induced by
arena-slab reuse and in-place aliasing).  An :class:`ExecutionEngine` is
the swappable strategy in between -- the separation of the mapping space
from mapping execution:

* :class:`SerialEngine` replays the steps in plan order with a flat loop
  -- the original ``CompiledProgram.run`` behaviour, bit for bit;
* :class:`PipelinedEngine` dispatches over a worker pool, launching each
  step as soon as its predecessors retire, so host marshalling nodes
  (packed gemms, QKV splits, layer norms) overlap with compiled kernel
  nodes.  Because every edge of ``plan.step_preds`` is honoured --
  including the write-after-read edges the planner records for slab reuse
  and in-place outputs -- any interleaving the engine chooses computes
  the same values, so the result stays bit-identical to the serial
  engine.  Chain-shaped plans (``plan.max_width == 1``) shortcut to a
  serial loop, skipping the thread-pool tax where overlap cannot pay;
* :class:`ProcessPoolEngine` dispatches over worker *processes*, stepping
  past the GIL entirely.  Workers rebuild the program from its picklable
  recipe (:func:`~repro.core.program.build_from_recipe`) and compile it
  locally against arena slabs and input staging buffers backed by
  ``multiprocessing.shared_memory`` -- so per-step dispatch ships only a
  step index over a queue, never arrays.  The same dependence-edge
  contract applies, so results stay bit-identical to serial execution.

Engines are stateless with respect to any particular program: one engine
instance (owned by a :class:`~repro.core.session.Session`) executes every
compiled program of that session and accumulates dispatch statistics
across runs.  ``execute`` optionally receives the owning
:class:`~repro.core.session.CompiledProgram` as ``context``; thread-based
engines ignore it, the process-pool engine requires it (it is the handle
to the program's recipe, staging buffers and arena).
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Step kinds, as stored in ``CompiledProgram._steps``.
KERNEL_STEP = 0
HOST_STEP = 1


def dispatch_step(step: Tuple) -> None:
    """Execute one pre-resolved dispatch step.

    A kernel step zero-fills its output buffer (reproducing the fresh
    ``RaggedTensor.zeros`` semantics of op-by-op execution) and calls the
    generated kernel over its pre-bound buffers; a host step optionally
    pre-zeroes outputs the host function does not promise to fill, then
    calls it over the materialised value wrappers.
    """
    kind, fn, args, aux, out_flat = step
    if kind == KERNEL_STEP:
        out_flat.fill(0.0)
        fn(args, aux)
    else:
        if aux is not None:  # host outputs needing pre-zeroing
            for buf in aux:
                buf.fill(0.0)
        fn(*args)


class ExecutionEngine:
    """Base class of execution strategies over a compiled program's steps.

    ``execute`` receives the flat step list and the :class:`ProgramPlan`
    whose ``step_preds`` / ``step_succs`` / ``ready_steps`` encode the
    dependence structure; it must run every step exactly once, respecting
    the partial order, and return only once all steps have retired.
    """

    name = "engine"

    def __init__(self) -> None:
        self.runs = 0
        self.steps_dispatched = 0
        #: optional :class:`~repro.serving.faults.FaultInjector` wired in
        #: by the owning session; engines that dispatch on workers fire
        #: their injection point per step (see ``PipelinedEngine``).
        self.fault_injector = None

    def execute(self, steps: Sequence[Tuple], plan, context=None) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent; no-op by default)."""

    def reset_stats(self) -> None:
        """Zero the dispatch counters (``Session.reset`` calls this)."""
        self.runs = 0
        self.steps_dispatched = 0

    def stats(self) -> Dict[str, object]:
        return {
            "engine": self.name,
            "runs": self.runs,
            "steps_dispatched": self.steps_dispatched,
        }


class SerialEngine(ExecutionEngine):
    """The flat dispatch loop: steps run one after another in plan order.

    This is the default engine and the bit-identity baseline every other
    engine is differentially tested against.
    """

    name = "serial"

    def execute(self, steps: Sequence[Tuple], plan=None, context=None) -> None:
        for step in steps:
            dispatch_step(step)
        self.runs += 1
        self.steps_dispatched += len(steps)


class PipelinedEngine(ExecutionEngine):
    """Dependence-driven dispatch over a shared worker pool.

    Each step is submitted the moment its last predecessor retires, so
    independent host and kernel nodes overlap (NumPy releases the GIL
    inside its kernels).  The pool is created lazily on first use and
    reused across runs; :meth:`close` shuts it down.

    Chain-shaped plans gain nothing from worker dispatch -- every step
    waits on the previous one, so the pool only adds synchronization
    overhead.  With ``serial_shortcut`` (default on), a plan whose
    levelized ``max_width`` is 1 is executed as a plain serial loop on
    the calling thread (still firing the ``pipelined_worker`` injection
    point per step, so fault behaviour is unchanged); the
    ``serial_shortcuts`` counter reports how often this fired.

    Parameters
    ----------
    max_workers:
        Worker-thread count; defaults to ``min(8, cpu_count)``, floored
        at 2 so concurrent dispatch is exercised even on one core.
    serial_shortcut:
        Auto-degrade width-1 plans to serial dispatch (default True).
    """

    name = "pipelined"

    def __init__(self, max_workers: Optional[int] = None,
                 serial_shortcut: bool = True) -> None:
        super().__init__()
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 2))
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.serial_shortcut = bool(serial_shortcut)
        self.serial_shortcuts = 0
        self.max_inflight = 0
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine")
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def execute(self, steps: Sequence[Tuple], plan, context=None) -> None:
        n = len(steps)
        if n == 0:
            self.runs += 1
            return
        if plan is None or getattr(plan, "step_preds", None) is None:
            raise ValueError(
                "PipelinedEngine needs a plan with dependence edges "
                "(ProgramPlan.step_preds); got none")
        if self.serial_shortcut and plan.max_width <= 1:
            # A pure dependence chain: worker dispatch cannot overlap
            # anything, so skip the pool and its synchronization tax.
            # The per-step injection point still fires -- fault-injection
            # behaviour is identical either way.
            injector = self.fault_injector
            for i, step in enumerate(steps):
                if injector is not None:
                    injector.fire("pipelined_worker", step=i)
                dispatch_step(step)
            self.serial_shortcuts += 1
            if self.max_inflight < 1:
                self.max_inflight = 1
            self.runs += 1
            self.steps_dispatched += n
            return
        succs = plan.step_succs
        remaining = [len(p) for p in plan.step_preds]
        pool = self._ensure_pool()
        cond = threading.Condition()
        # All counters below are guarded by ``cond``.  ``submitted`` is
        # bumped *before* ``finished`` inside one critical section, so
        # ``finished == submitted`` can only hold when no successor
        # submission is pending -- the main thread's wake-up condition.
        state = {"submitted": 0, "finished": 0, "running": 0,
                 "max_running": 0, "failed": None}

        def _submit(j: int) -> None:
            # A failed submit (e.g. the pool was shut down concurrently
            # by ``close``) must not strand the main thread: the step was
            # already counted as submitted, so count it finished too and
            # record the failure, keeping ``finished == submitted``
            # reachable.
            try:
                pool.submit(_run, j)
            except BaseException as exc:
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["finished"] += 1
                    cond.notify()

        def _run(i: int) -> None:
            with cond:
                state["running"] += 1
                if state["running"] > state["max_running"]:
                    state["max_running"] = state["running"]
            newly: List[int] = []
            try:
                # Named injection point "pipelined_worker": a fault here
                # surfaces through the engine's normal failure path, so
                # callers exercise the real worker-death recovery (the
                # serving scheduler retries once on a SerialEngine).
                injector = self.fault_injector
                if injector is not None:
                    injector.fire("pipelined_worker", step=i)
                dispatch_step(steps[i])
            except BaseException as exc:  # propagate to the caller
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["running"] -= 1
                    state["finished"] += 1
                    cond.notify()
                return
            with cond:
                if state["failed"] is None:
                    for j in succs[i]:
                        remaining[j] -= 1
                        if remaining[j] == 0:
                            newly.append(j)
                    state["submitted"] += len(newly)
                state["running"] -= 1
                state["finished"] += 1
                cond.notify()
            for j in newly:
                _submit(j)

        roots = list(plan.ready_steps)
        with cond:
            state["submitted"] = len(roots)
        for i in roots:
            _submit(i)
        with cond:
            cond.wait_for(
                lambda: state["finished"] == state["submitted"])
            failed = state["failed"]
            finished = state["finished"]
            if state["max_running"] > self.max_inflight:
                self.max_inflight = state["max_running"]
        if failed is not None:
            raise failed
        if finished != n:
            raise RuntimeError(
                f"pipelined dispatch retired {finished} of {n} steps; the "
                "plan's dependence edges do not cover the step graph")
        self.runs += 1
        self.steps_dispatched += n

    def reset_stats(self) -> None:
        super().reset_stats()
        self.max_inflight = 0
        self.serial_shortcuts = 0

    def stats(self) -> Dict[str, object]:
        return {
            **super().stats(),
            "max_workers": self.max_workers,
            "max_inflight": self.max_inflight,
            "serial_shortcuts": self.serial_shortcuts,
        }


# ---------------------------------------------------------------------------
# Process-pool execution
# ---------------------------------------------------------------------------


def _attach_shm(name: str):
    """Attach to an existing shared-memory block without ownership.

    The parent owns (and unlinks) every segment; a worker must not let
    its resource tracker also claim it, or the tracker unlinks the
    segment when the *worker* exits and warns about leaks.  Python 3.13+
    exposes ``track=False`` for exactly this; older versions need the
    explicit ``resource_tracker.unregister`` dance.
    """
    from multiprocessing import resource_tracker, shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: no ``track`` parameter.  Unregistering after the
        # fact would race the *shared* (forked) tracker process and strip
        # the parent's own registration; instead suppress the worker's
        # registration attempt itself.
        original = resource_tracker.register

        def _no_shm_register(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _no_shm_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_drop(programs: Dict, key) -> None:
    entry = programs.pop(key, None)
    if entry is None:
        return
    compiled, shm = entry
    # Drop every view into the segment before closing it, or the close
    # raises BufferError over the exported memoryviews.
    del compiled, entry
    try:
        shm.close()
    except BufferError:
        pass


def _process_worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker-process loop: install programs, dispatch steps by index.

    Installed programs are rebuilt from their recipes and compiled
    *locally* (same deterministic planner, verified by fingerprint
    against the parent's plan), with arena slabs and input staging
    buffers mapped onto the parent's shared-memory segment -- so a
    ``("run", key, steps, seq)`` message executes exactly the steps the
    parent would have, in plan order, writing the same bytes into the
    same (shared) buffers.  Each step of the batch is acknowledged with
    its own ``("done", ...)`` as it retires, so the parent can unblock
    successors while the rest of the chunk is still running.
    """
    programs: Dict = {}
    while True:
        try:
            msg = task_q.get()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            for key in list(programs):
                _worker_drop(programs, key)
            break
        if kind == "ping":
            result_q.put(("pong", worker_id, msg[1]))
        elif kind == "uninstall":
            _worker_drop(programs, msg[1])
        elif kind == "install":
            (_, key, recipe, inplace, fuse, backend, cache_dir, sdb_root,
             shm_name, slab_meta, input_meta, seq) = msg
            try:
                from repro.core.executor import shared_executor
                from repro.core.program import build_from_recipe
                from repro.core.session import CompiledProgram
                from repro.core.tunespace import (
                    activate_policy,
                    deactivate_policy,
                )

                executor = shared_executor(backend)
                if cache_dir is not None and (
                        executor.disk_cache is None
                        or str(executor.disk_cache.root) != cache_dir):
                    from repro.core.aotcache import AOTCache
                    executor.disk_cache = AOTCache(cache_dir)
                # Mirror the parent's tuned-schedule policy before the
                # recipe rebuild runs the op builders: the worker then
                # constructs the *same* tuned schedules the parent
                # compiled, so its kernels come straight from the shared
                # AOT disk cache -- tuned start-up with zero search and
                # zero extra lowerings.
                if sdb_root is not None:
                    from repro.core.scheduledb import ScheduleDB
                    activate_policy(ScheduleDB(sdb_root), backend)
                else:
                    deactivate_policy()
                shm = _attach_shm(shm_name)
                slabs = [np.frombuffer(shm.buf, dtype=np.float32,
                                       count=count, offset=off)
                         for off, count in slab_meta]
                inputs = {
                    name: np.frombuffer(shm.buf, dtype=np.dtype(dt),
                                        count=count, offset=off)
                    for name, (off, dt, count) in input_meta.items()
                }
                program = build_from_recipe(recipe)
                compiled = CompiledProgram(
                    program, executor, inplace=inplace, fuse=fuse,
                    slab_buffers=slabs, input_buffers=inputs)
                del slabs, inputs
                fingerprint = (tuple(compiled.plan.order),
                               tuple(compiled.plan.slab_elements),
                               tuple(compiled.plan.ready_steps),
                               len(compiled._steps))
                programs[key] = (compiled, shm)
                result_q.put(("installed", worker_id, key, seq, True,
                              fingerprint))
            except BaseException as exc:
                result_q.put(("installed", worker_id, key, seq, False,
                              f"{type(exc).__name__}: {exc}"))
        elif kind == "run":
            # ``steps`` is a tuple of ready step indices: the parent
            # batches everything dispatchable to this worker into one
            # queue message, amortising the per-message IPC overhead.
            # Each step is acknowledged individually as it retires so
            # the parent can release its successors without waiting for
            # the rest of the chunk; a failure reports the failed step
            # together with the unrun remainder so the parent's inflight
            # accounting still retires every shipped step.
            _, key, steps, seq = msg
            for pos, step_idx in enumerate(steps):
                try:
                    compiled = programs[key][0]
                    dispatch_step(compiled._steps[step_idx])
                except BaseException as exc:
                    result_q.put(("done", worker_id, key, steps[pos:], seq,
                                  False, (type(exc).__name__, str(exc))))
                    break
                result_q.put(("done", worker_id, key, (step_idx,), seq,
                              True, None))


class _InstalledProgram:
    """Parent-side record of a program installed across the worker pool."""

    __slots__ = ("shm", "slab_views", "input_views")

    def __init__(self, shm, slab_views, input_views):
        self.shm = shm
        self.slab_views = slab_views
        self.input_views = input_views

    def release(self) -> None:
        shm = self.shm
        self.shm = None
        self.slab_views = []
        self.input_views = {}
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class ProcessPoolEngine(ExecutionEngine):
    """Dependence-driven dispatch over a pool of worker *processes*.

    The GIL serializes the Python-level portions of thread dispatch; on
    multi-core hosts a process pool is the way past it.  What makes it
    affordable here is that nothing heavy crosses the process boundary
    per step:

    * at **install** time (once per program x raggedness signature) each
      worker rebuilds the program from its picklable recipe
      (``Program.recipe``, see
      :func:`~repro.core.program.register_program_builder`) and compiles
      it locally -- the planner is deterministic, and a plan fingerprint
      is verified against the parent's so every process agrees on step
      indices, slab assignment and execution order;
    * arena slabs and input staging buffers live in one
      ``multiprocessing.shared_memory`` segment per installed program,
      mapped by parent and workers alike -- a **dispatch** ships just
      ``(key, step_indices, seq)`` over a queue and the completion ships
      back a few integers;
    * the parent submits every ready step before blocking, batching the
      ready set into at most one queue message per idle worker
      (``ceil(ready / idle)`` steps each; disable with
      ``batch_dispatch=False`` for strict one-step-per-message), so a
      fused program with K independent chains reaches
      ``max_inflight >= min(K, max_workers)`` deterministically and the
      per-message IPC overhead is amortised over the batch.

    Results are bit-identical to :class:`SerialEngine`: workers execute
    the same pre-resolved steps over the same (shared) buffers, and the
    plan's dependence edges are honoured exactly as in the pipelined
    engine.

    Ownership and lifecycle: the pool and its shared-memory segments are
    created lazily on first use and reused across runs (and across
    sessions -- one instance may serve several).  :meth:`close` is
    idempotent and *reuse-safe*: it stops the workers and unlinks every
    segment, and the next ``execute`` transparently respawns the pool
    and reinstalls what it needs.  A session only closes engines it
    constructed itself, so an instance-passed engine shared across
    sessions is closed exactly once -- by whoever owns it.

    Parameters
    ----------
    max_workers:
        Worker-process count; defaults to ``min(8, cpu_count)``, floored
        at 2.
    program_capacity:
        LRU bound on concurrently installed programs (each pins a
        shared-memory segment sized by its arena + inputs).
    mp_context:
        ``multiprocessing`` context or start-method name; defaults to
        ``"fork"`` where available (cheap spawn, inherits warm kernel
        caches), else ``"spawn"``.
    batch_dispatch:
        Batch all currently-ready step indices into one queue message
        per idle worker (default).  ``False`` restores one message per
        step -- the pre-batching protocol, kept for A/B measurement of
        the IPC overhead (``bench_wide.py`` records the delta).
    """

    name = "process"

    #: seconds between liveness checks while waiting on results
    _POLL_S = 1.0

    def __init__(self, max_workers: Optional[int] = None,
                 program_capacity: int = 8,
                 mp_context=None,
                 batch_dispatch: bool = True) -> None:
        super().__init__()
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 2))
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if program_capacity < 1:
            raise ValueError(
                f"program_capacity must be >= 1, got {program_capacity}")
        self.max_workers = int(max_workers)
        self.program_capacity = int(program_capacity)
        self.batch_dispatch = bool(batch_dispatch)
        self.max_inflight = 0
        self.installs = 0
        self.evictions = 0
        self.worker_restarts = 0
        self._mp_context = mp_context
        self._workers: List = []
        self._task_qs: List = []
        self._result_q = None
        self._installed: "OrderedDict" = OrderedDict()
        self._seq = 0
        self._lock = threading.RLock()

    # -- pool lifecycle ---------------------------------------------------------

    def _context(self):
        import multiprocessing as mp

        ctx = self._mp_context
        if ctx is None:
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
            ctx = self._mp_context = mp.get_context(method)
        elif isinstance(ctx, str):
            ctx = self._mp_context = mp.get_context(ctx)
        return ctx

    def _ensure_pool(self) -> None:
        if self._workers:
            return
        ctx = self._context()
        self._result_q = ctx.Queue()
        self._task_qs = []
        self._workers = []
        for wid in range(self.max_workers):
            task_q = ctx.Queue()
            proc = ctx.Process(
                target=_process_worker_main,
                args=(wid, task_q, self._result_q),
                daemon=True, name=f"repro-engine-worker-{wid}")
            proc.start()
            self._task_qs.append(task_q)
            self._workers.append(proc)
        # Warm-up: one round trip per worker proves the queues and the
        # processes are up before any program is installed.
        self._seq += 1
        for task_q in self._task_qs:
            task_q.put(("ping", self._seq))
        pending = set(range(self.max_workers))
        while pending:
            msg = self._next_result()
            if msg[0] == "pong" and msg[2] == self._seq:
                pending.discard(msg[1])

    def warm_up(self) -> None:
        """Spawn (or respawn) the worker pool eagerly.

        Optional -- the first ``execute`` does this lazily -- but useful
        to move process start-up out of the measured/serving path.
        """
        with self._lock:
            self._ensure_pool()

    def close(self) -> None:
        """Stop the workers and unlink every shared-memory segment.

        Idempotent and reuse-safe: a later ``execute`` respawns the pool
        and reinstalls programs on demand.
        """
        with self._lock:
            self._teardown_pool()

    def _teardown_pool(self) -> None:
        for key in list(self._installed):
            self._installed.pop(key).release()
        if not self._workers:
            return
        for task_q, proc in zip(self._task_qs, self._workers):
            if proc.is_alive():
                try:
                    task_q.put(("stop",))
                except (ValueError, OSError):
                    pass
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for task_q in self._task_qs:
            task_q.cancel_join_thread()
            task_q.close()
        if self._result_q is not None:
            self._result_q.cancel_join_thread()
            self._result_q.close()
        self._workers = []
        self._task_qs = []
        self._result_q = None

    def _next_result(self, poll_s: Optional[float] = None):
        """Next result-queue message; detects and reports worker death.

        If a worker dies (OOM kill, segfault, hard crash) the queue would
        block forever -- instead the pool is torn down (shared memory
        unlinked, siblings stopped) and a ``RuntimeError`` surfaces, which
        the serving scheduler's engine-failure path turns into a serial
        retry.  The next ``execute`` respawns everything lazily.
        """
        poll = self._POLL_S if poll_s is None else poll_s
        while True:
            try:
                return self._result_q.get(timeout=poll)
            except queue_mod.Empty:
                dead = [p for p in self._workers if not p.is_alive()]
                if dead:
                    names = ", ".join(p.name for p in dead)
                    self._teardown_pool()
                    self.worker_restarts += 1
                    raise RuntimeError(
                        f"process-pool worker(s) died: {names}; pool torn "
                        "down (respawns lazily on the next run)") from None

    # -- program installation ---------------------------------------------------

    @staticmethod
    def _align(nbytes: int, align: int = 64) -> int:
        return -(-int(nbytes) // align) * align

    def _install(self, context) -> Tuple:
        key = (context.program.uid, bool(context.plan.inplace),
               bool(getattr(context, "fuse", False)))
        entry = self._installed.get(key)
        if entry is not None:
            self._installed.move_to_end(key)
            return key, entry
        recipe = getattr(context.program, "recipe", None)
        if recipe is None:
            raise ValueError(
                f"program {context.program.name!r} has no rebuild recipe; "
                "ProcessPoolEngine can only run programs registered via "
                "register_program_builder (or merges of such programs) -- "
                "use the serial or pipelined engine for ad-hoc programs")
        from multiprocessing import shared_memory

        while len(self._installed) >= self.program_capacity:
            old_key, old_entry = self._installed.popitem(last=False)
            for task_q in self._task_qs:
                task_q.put(("uninstall", old_key))
            old_entry.release()
            self.evictions += 1

        # One segment laid out [slab0 | slab1 | ... | input staging...],
        # 64-byte aligned regions.
        offset = 0
        slab_meta: List[Tuple[int, int]] = []
        for count in context.plan.slab_elements:
            slab_meta.append((offset, int(count)))
            offset += self._align(int(count) * 4)
        input_meta: Dict[str, Tuple[int, str, int]] = {}
        for name, stage, dtype in context._input_specs:
            input_meta[name] = (offset, np.dtype(dtype).str, int(stage.size))
            offset += self._align(int(stage.size) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        np.frombuffer(shm.buf, dtype=np.uint8)[:] = 0
        slab_views = [np.frombuffer(shm.buf, dtype=np.float32,
                                    count=count, offset=off)
                      for off, count in slab_meta]
        input_views = {
            name: np.frombuffer(shm.buf, dtype=np.dtype(dt),
                                count=count, offset=off)
            for name, (off, dt, count) in input_meta.items()
        }
        entry = _InstalledProgram(shm, slab_views, input_views)

        self._seq += 1
        seq = self._seq
        backend = context.executor.backend.name
        disk = context.executor.disk_cache
        cache_dir = str(disk.root) if disk is not None else None
        sdb_root = getattr(context, "schedule_db_root", None)
        for task_q in self._task_qs:
            task_q.put(("install", key, recipe, bool(context.plan.inplace),
                        bool(getattr(context, "fuse", False)), backend,
                        cache_dir, sdb_root, shm.name, slab_meta,
                        input_meta, seq))
        parent_fp = (tuple(context.plan.order),
                     tuple(context.plan.slab_elements),
                     tuple(context.plan.ready_steps),
                     len(context._steps))
        pending = set(range(self.max_workers))
        failure: Optional[str] = None
        try:
            while pending:
                msg = self._next_result()
                if msg[0] != "installed" or msg[3] != seq:
                    continue
                _, wid, _mkey, _mseq, ok, payload = msg
                pending.discard(wid)
                if not ok and failure is None:
                    failure = f"worker {wid}: {payload}"
                elif ok and payload != parent_fp and failure is None:
                    failure = (f"worker {wid} compiled a divergent plan "
                               f"(fingerprint mismatch)")
        except RuntimeError:
            entry.release()
            raise
        if failure is not None:
            for task_q in self._task_qs:
                task_q.put(("uninstall", key))
            entry.release()
            raise RuntimeError(
                f"installing program {context.program.name!r} on the "
                f"process pool failed: {failure}")
        self._installed[key] = entry
        self.installs += 1
        return key, entry

    # -- execution --------------------------------------------------------------

    def execute(self, steps: Sequence[Tuple], plan, context=None) -> None:
        n = len(steps)
        if n == 0:
            self.runs += 1
            return
        if plan is None or getattr(plan, "step_preds", None) is None:
            raise ValueError(
                "ProcessPoolEngine needs a plan with dependence edges "
                "(ProgramPlan.step_preds); got none")
        if context is None:
            raise ValueError(
                "ProcessPoolEngine needs the CompiledProgram as context "
                "(run it through Session.run / CompiledProgram.run)")
        with self._lock:
            self._ensure_pool()
            key, entry = self._install(context)

            # Ship this run's inputs into the shared staging buffers.
            for name, stage, _dtype in context._input_specs:
                np.copyto(entry.input_views[name], stage)

            self._seq += 1
            seq = self._seq
            remaining = [len(p) for p in plan.step_preds]
            ready = deque(plan.ready_steps)
            idle = deque(range(self.max_workers))
            inflight: Dict[int, int] = {}
            outstanding: Dict[int, int] = {}  # wid -> unretired chunk steps
            finished = 0
            peak = 0
            failed: Optional[BaseException] = None
            injector = self.fault_injector

            while finished < n and failed is None:
                # Submit everything ready before blocking: a fused
                # program's K root steps land on K workers immediately.
                # When the ready set outruns the whole pool, each idle
                # worker gets a ceil(ready / max_workers)-step chunk in
                # one queue message, amortising the per-message IPC
                # overhead.  Sizing against the pool rather than the
                # idle set matters: a fan-out step's successors must not
                # all pile onto the one currently-idle worker while its
                # siblings free up a moment later -- steps held back in
                # the ready deque go to whichever worker idles next.
                while ready and idle and failed is None:
                    chunk_size = 1
                    if self.batch_dispatch:
                        chunk_size = max(
                            1, -(-len(ready) // self.max_workers))
                    chunk: List[int] = []
                    while ready and len(chunk) < chunk_size:
                        i = ready.popleft()
                        if injector is not None:
                            # Named injection point "process_worker":
                            # fired parent-side before the step is
                            # shipped, so a fault surfaces through the
                            # engine's normal failure path (serial retry
                            # in the scheduler).
                            try:
                                injector.fire("process_worker", step=i)
                            except BaseException as exc:
                                failed = exc
                                break
                        chunk.append(i)
                    if failed is not None:
                        break
                    wid = idle.popleft()
                    self._task_qs[wid].put(("run", key, tuple(chunk), seq))
                    outstanding[wid] = len(chunk)
                    for i in chunk:
                        inflight[i] = wid
                    if len(inflight) > peak:
                        peak = len(inflight)
                if failed is not None:
                    break
                if not inflight:
                    break  # nothing running, nothing ready: edges broken
                msg = self._next_result()
                if msg[0] != "done" or msg[4] != seq:
                    continue  # stale message from an aborted earlier run
                _, wid, _mkey, done_steps, _mseq, ok, err = msg
                for i in done_steps:
                    inflight.pop(i, None)
                # The worker acknowledges chunk steps one at a time; it
                # goes back on the idle list only once its whole chunk
                # has retired (its task queue is FIFO, so re-dispatching
                # earlier would just queue behind the remainder).
                outstanding[wid] = outstanding.get(wid, 0) - len(done_steps)
                if outstanding[wid] <= 0:
                    outstanding.pop(wid, None)
                    idle.append(wid)
                if not ok:
                    failed = RuntimeError(
                        f"process worker {wid} failed dispatching steps "
                        f"{list(done_steps)}: {err[0]}: {err[1]}")
                    continue
                for i in done_steps:
                    finished += 1
                    self.steps_dispatched += 1
                    for j in plan.step_succs[i]:
                        remaining[j] -= 1
                        if remaining[j] == 0:
                            ready.append(j)

            if failed is not None or finished != n:
                # Drain in-flight steps before surfacing the failure:
                # letting workers keep writing the shared slabs while a
                # retry runs would race it.
                self._drain(inflight, seq)
                if failed is not None:
                    raise failed
                raise RuntimeError(
                    f"process dispatch retired {finished} of {n} steps; "
                    "the plan's dependence edges do not cover the step "
                    "graph")

            if peak > self.max_inflight:
                self.max_inflight = peak
            self.runs += 1

            # Copy the shared arena back into the parent's slabs: the
            # compiled program's output views (and every intermediate)
            # now see exactly what serial in-process execution would
            # have produced.
            for parent_slab, view in zip(context._slabs, entry.slab_views):
                np.copyto(parent_slab, view[:parent_slab.size])

    def _drain(self, inflight: Dict[int, int], seq: int) -> None:
        try:
            while inflight:
                msg = self._next_result()
                if msg[0] == "done" and msg[4] == seq:
                    for i in msg[3]:
                        inflight.pop(i, None)
        except RuntimeError:
            pass  # a worker died; the pool is already torn down

    # -- statistics -------------------------------------------------------------

    def reset_stats(self) -> None:
        super().reset_stats()
        self.max_inflight = 0
        self.installs = 0
        self.evictions = 0
        self.worker_restarts = 0

    def stats(self) -> Dict[str, object]:
        return {
            **super().stats(),
            "max_workers": self.max_workers,
            "batch_dispatch": self.batch_dispatch,
            "max_inflight": self.max_inflight,
            "installed_programs": len(self._installed),
            "installs": self.installs,
            "evictions": self.evictions,
            "worker_restarts": self.worker_restarts,
        }


def get_engine(engine: Union[str, ExecutionEngine, None]) -> ExecutionEngine:
    """Resolve an engine argument: an instance, a name, or ``None``.

    ``None`` and ``"serial"`` give a fresh :class:`SerialEngine`;
    ``"pipelined"`` a fresh :class:`PipelinedEngine` with default
    workers; ``"process"`` a fresh :class:`ProcessPoolEngine` with
    default workers.
    """
    if engine is None:
        return SerialEngine()
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, str):
        name = engine.lower()
        if name == "serial":
            return SerialEngine()
        if name == "pipelined":
            return PipelinedEngine()
        if name == "process":
            return ProcessPoolEngine()
        raise ValueError(
            f"unknown engine {engine!r}; expected 'serial', 'pipelined', "
            "'process' or an ExecutionEngine instance")
    raise TypeError(f"engine must be a name or ExecutionEngine, got "
                    f"{type(engine).__name__}")
