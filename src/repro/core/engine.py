"""Pluggable execution engines: how a compiled program's steps are run.

The :class:`~repro.core.session.CompiledProgram` knows *what* to execute
(a flat list of pre-resolved dispatch steps) and the
:class:`~repro.core.planner.ProgramPlan` knows the exact partial order
those steps must respect (data edges plus the anti-dependences induced by
arena-slab reuse and in-place aliasing).  An :class:`ExecutionEngine` is
the swappable strategy in between -- the separation of the mapping space
from mapping execution:

* :class:`SerialEngine` replays the steps in plan order with a flat loop
  -- the original ``CompiledProgram.run`` behaviour, bit for bit;
* :class:`PipelinedEngine` dispatches over a worker pool, launching each
  step as soon as its predecessors retire, so host marshalling nodes
  (packed gemms, QKV splits, layer norms) overlap with compiled kernel
  nodes.  Because every edge of ``plan.step_preds`` is honoured --
  including the write-after-read edges the planner records for slab reuse
  and in-place outputs -- any interleaving the engine chooses computes
  the same values, so the result stays bit-identical to the serial
  engine.

Engines are stateless with respect to any particular program: one engine
instance (owned by a :class:`~repro.core.session.Session`) executes every
compiled program of that session and accumulates dispatch statistics
across runs.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Step kinds, as stored in ``CompiledProgram._steps``.
KERNEL_STEP = 0
HOST_STEP = 1


def dispatch_step(step: Tuple) -> None:
    """Execute one pre-resolved dispatch step.

    A kernel step zero-fills its output buffer (reproducing the fresh
    ``RaggedTensor.zeros`` semantics of op-by-op execution) and calls the
    generated kernel over its pre-bound buffers; a host step optionally
    pre-zeroes outputs the host function does not promise to fill, then
    calls it over the materialised value wrappers.
    """
    kind, fn, args, aux, out_flat = step
    if kind == KERNEL_STEP:
        out_flat.fill(0.0)
        fn(args, aux)
    else:
        if aux is not None:  # host outputs needing pre-zeroing
            for buf in aux:
                buf.fill(0.0)
        fn(*args)


class ExecutionEngine:
    """Base class of execution strategies over a compiled program's steps.

    ``execute`` receives the flat step list and the :class:`ProgramPlan`
    whose ``step_preds`` / ``step_succs`` / ``ready_steps`` encode the
    dependence structure; it must run every step exactly once, respecting
    the partial order, and return only once all steps have retired.
    """

    name = "engine"

    def __init__(self) -> None:
        self.runs = 0
        self.steps_dispatched = 0
        #: optional :class:`~repro.serving.faults.FaultInjector` wired in
        #: by the owning session; engines that dispatch on workers fire
        #: their injection point per step (see ``PipelinedEngine``).
        self.fault_injector = None

    def execute(self, steps: Sequence[Tuple], plan) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent; no-op by default)."""

    def reset_stats(self) -> None:
        """Zero the dispatch counters (``Session.reset`` calls this)."""
        self.runs = 0
        self.steps_dispatched = 0

    def stats(self) -> Dict[str, object]:
        return {
            "engine": self.name,
            "runs": self.runs,
            "steps_dispatched": self.steps_dispatched,
        }


class SerialEngine(ExecutionEngine):
    """The flat dispatch loop: steps run one after another in plan order.

    This is the default engine and the bit-identity baseline every other
    engine is differentially tested against.
    """

    name = "serial"

    def execute(self, steps: Sequence[Tuple], plan=None) -> None:
        for step in steps:
            dispatch_step(step)
        self.runs += 1
        self.steps_dispatched += len(steps)


class PipelinedEngine(ExecutionEngine):
    """Dependence-driven dispatch over a shared worker pool.

    Each step is submitted the moment its last predecessor retires, so
    independent host and kernel nodes overlap (NumPy releases the GIL
    inside its kernels).  The pool is created lazily on first use and
    reused across runs; :meth:`close` shuts it down.

    Parameters
    ----------
    max_workers:
        Worker-thread count; defaults to ``min(8, cpu_count)``, floored
        at 2 so concurrent dispatch is exercised even on one core.
    """

    name = "pipelined"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 2))
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.max_inflight = 0
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine")
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def execute(self, steps: Sequence[Tuple], plan) -> None:
        n = len(steps)
        if n == 0:
            self.runs += 1
            return
        if plan is None or getattr(plan, "step_preds", None) is None:
            raise ValueError(
                "PipelinedEngine needs a plan with dependence edges "
                "(ProgramPlan.step_preds); got none")
        succs = plan.step_succs
        remaining = [len(p) for p in plan.step_preds]
        pool = self._ensure_pool()
        cond = threading.Condition()
        # All counters below are guarded by ``cond``.  ``submitted`` is
        # bumped *before* ``finished`` inside one critical section, so
        # ``finished == submitted`` can only hold when no successor
        # submission is pending -- the main thread's wake-up condition.
        state = {"submitted": 0, "finished": 0, "running": 0,
                 "max_running": 0, "failed": None}

        def _submit(j: int) -> None:
            # A failed submit (e.g. the pool was shut down concurrently
            # by ``close``) must not strand the main thread: the step was
            # already counted as submitted, so count it finished too and
            # record the failure, keeping ``finished == submitted``
            # reachable.
            try:
                pool.submit(_run, j)
            except BaseException as exc:
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["finished"] += 1
                    cond.notify()

        def _run(i: int) -> None:
            with cond:
                state["running"] += 1
                if state["running"] > state["max_running"]:
                    state["max_running"] = state["running"]
            newly: List[int] = []
            try:
                # Named injection point "pipelined_worker": a fault here
                # surfaces through the engine's normal failure path, so
                # callers exercise the real worker-death recovery (the
                # serving scheduler retries once on a SerialEngine).
                injector = self.fault_injector
                if injector is not None:
                    injector.fire("pipelined_worker", step=i)
                dispatch_step(steps[i])
            except BaseException as exc:  # propagate to the caller
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["running"] -= 1
                    state["finished"] += 1
                    cond.notify()
                return
            with cond:
                if state["failed"] is None:
                    for j in succs[i]:
                        remaining[j] -= 1
                        if remaining[j] == 0:
                            newly.append(j)
                    state["submitted"] += len(newly)
                state["running"] -= 1
                state["finished"] += 1
                cond.notify()
            for j in newly:
                _submit(j)

        roots = list(plan.ready_steps)
        with cond:
            state["submitted"] = len(roots)
        for i in roots:
            _submit(i)
        with cond:
            cond.wait_for(
                lambda: state["finished"] == state["submitted"])
            failed = state["failed"]
            finished = state["finished"]
            if state["max_running"] > self.max_inflight:
                self.max_inflight = state["max_running"]
        if failed is not None:
            raise failed
        if finished != n:
            raise RuntimeError(
                f"pipelined dispatch retired {finished} of {n} steps; the "
                "plan's dependence edges do not cover the step graph")
        self.runs += 1
        self.steps_dispatched += n

    def reset_stats(self) -> None:
        super().reset_stats()
        self.max_inflight = 0

    def stats(self) -> Dict[str, object]:
        return {
            **super().stats(),
            "max_workers": self.max_workers,
            "max_inflight": self.max_inflight,
        }


def get_engine(engine: Union[str, ExecutionEngine, None]) -> ExecutionEngine:
    """Resolve an engine argument: an instance, a name, or ``None``.

    ``None`` and ``"serial"`` give a fresh :class:`SerialEngine`;
    ``"pipelined"`` a fresh :class:`PipelinedEngine` with default workers.
    """
    if engine is None:
        return SerialEngine()
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, str):
        name = engine.lower()
        if name == "serial":
            return SerialEngine()
        if name == "pipelined":
            return PipelinedEngine()
        raise ValueError(
            f"unknown engine {engine!r}; expected 'serial', 'pipelined' or "
            "an ExecutionEngine instance")
    raise TypeError(f"engine must be a name or ExecutionEngine, got "
                    f"{type(engine).__name__}")
