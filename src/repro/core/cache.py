"""A small capacity-bounded LRU mapping.

Shared by the executor's kernel cache, the prelude caches and the
transformer's per-mini-batch memo, so the eviction behaviour is defined in
exactly one place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUDict(Generic[K, V]):
    """An insert/get mapping that evicts least-recently-used entries beyond
    ``capacity``.  ``get`` refreshes recency; callers keep their own hit/miss
    counters since their semantics differ."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> Optional[V]:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()
