"""Exception types raised by the CoRa reproduction compiler."""


class CoraError(Exception):
    """Base class for all errors raised by the compiler."""


class ScheduleError(CoraError):
    """An invalid scheduling primitive application.

    Examples: reordering a vloop past the loop its bound depends on, or
    specifying storage padding smaller than the corresponding loop padding.
    """


class LoweringError(CoraError):
    """An error encountered while lowering an operator to the loop-nest IR."""


class StorageError(CoraError):
    """An invalid ragged storage layout or an out-of-storage access."""


class BoundsError(CoraError):
    """Bounds inference failed or produced an inconsistent range."""


class ExecutionError(CoraError):
    """A runtime failure while executing a generated kernel or prelude."""


class CompileError(CoraError):
    """Ahead-of-time compilation of a program failed.

    Raised when a :class:`~repro.core.session.Session` cannot produce a
    :class:`~repro.core.session.CompiledProgram` for a raggedness
    signature.  The serving scheduler treats this as recoverable: the
    batch degrades to the retained op-by-op execution path.
    """


class DeadlineExceeded(CoraError):
    """A request's deadline passed before it could be served."""


class QueueFull(CoraError):
    """A bounded request queue is at capacity and cannot admit more."""
