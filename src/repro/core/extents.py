"""Loop and dimension extents.

In a ragged operator the bound of an inner loop (and the size of the
corresponding tensor-dimension slice) is a *function of the iteration
variables of outer loops* -- in the paper's terminology an **uninterpreted
function** such as ``s(o)`` (Sections 4 and 5).  At compile time CoRa treats
these functions symbolically; at run time the prelude materialises them as
plain arrays.

This module provides the small class hierarchy used to represent extents:

* :class:`ConstExtent` -- a constant bound (a *cloop* / *cdim*).
* :class:`VarExtent` -- a bound that is a function of exactly one outer named
  dimension (a *vloop* / *vdim*).  This mirrors the prototype restriction in
  Section 6 of the paper ("our prototype allows vdims to depend on at most
  one outer tensor dimension").
* :class:`PaddedExtent` -- an extent padded up to a multiple of a constant,
  produced by the ``pad_loop`` / ``pad_dimension`` scheduling primitives.

Extents are callable: ``extent(outer_index)`` returns the concrete bound.
They accept NumPy integer arrays as well as Python ints so the prelude can
evaluate them vectorised over a whole mini-batch.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.dims import Dim
from repro.core.errors import CoraError

IndexLike = Union[int, np.ndarray]


def ceil_to(value: IndexLike, multiple: int) -> IndexLike:
    """Round ``value`` up to the nearest multiple of ``multiple``.

    Works elementwise on NumPy arrays.  ``multiple`` must be positive.
    """
    if multiple <= 0:
        raise ValueError(f"padding multiple must be positive, got {multiple}")
    if isinstance(value, np.ndarray):
        return ((value + multiple - 1) // multiple) * multiple
    return ((int(value) + multiple - 1) // multiple) * multiple


class Extent:
    """Abstract base class for loop / dimension extents."""

    #: Named dimensions this extent depends on (empty for constants).
    deps: tuple[Dim, ...] = ()

    @property
    def is_constant(self) -> bool:
        """Whether this extent is a compile-time constant."""
        return not self.deps

    def __call__(self, *indices: IndexLike) -> IndexLike:
        raise NotImplementedError

    def max_value(self) -> int:
        """An upper bound on the extent over all outer indices.

        Used to size fully padded (dense) buffers and to compute the amount
        of wasted computation padding would cause.
        """
        raise NotImplementedError

    def padded(self, multiple: int) -> "Extent":
        """Return this extent padded up to a multiple of ``multiple``."""
        if multiple == 1:
            return self
        return PaddedExtent(self, multiple)

    # -- convenience -------------------------------------------------------

    def values(self, outer_count: Optional[int] = None) -> np.ndarray:
        """Evaluate the extent for every outer index ``0..outer_count-1``.

        For a constant extent ``outer_count`` may be omitted and a length-1
        array is returned.
        """
        if self.is_constant:
            return np.asarray([self()], dtype=np.int64)
        if outer_count is None:
            raise ValueError("outer_count is required for a variable extent")
        idx = np.arange(outer_count, dtype=np.int64)
        return np.asarray(self(idx), dtype=np.int64)

    def total(self, outer_count: Optional[int] = None) -> int:
        """Sum of the extent over all outer indices (the fused-loop bound F)."""
        if self.is_constant:
            return int(self())
        return int(self.values(outer_count).sum())


class ConstExtent(Extent):
    """A constant extent -- the bound of a *cloop* / size of a *cdim*."""

    def __init__(self, value: int):
        value = int(value)
        if value < 0:
            raise ValueError(f"extent must be non-negative, got {value}")
        self.value = value
        self.deps = ()

    def __call__(self, *indices: IndexLike) -> int:
        return self.value

    def max_value(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"ConstExtent({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstExtent) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ConstExtent", self.value))


class VarExtent(Extent):
    """An extent that is a function of one outer named dimension.

    Parameters
    ----------
    dep:
        The outer :class:`~repro.core.dims.Dim` the extent depends on.
    fn:
        Either a callable mapping an outer index (int or int array) to the
        bound, or a sequence/array of per-index bounds (the common case of
        a ``lengths`` tensor).
    name:
        Optional symbolic name used in generated code (defaults to ``s``).
    """

    def __init__(
        self,
        dep: Dim,
        fn: Union[Callable[[IndexLike], IndexLike], Sequence[int], np.ndarray],
        name: str = "s",
    ):
        if not isinstance(dep, Dim):
            raise TypeError(f"dep must be a Dim, got {type(dep).__name__}")
        self.dep = dep
        self.deps = (dep,)
        self.name = name
        if callable(fn):
            self._fn: Callable[[IndexLike], IndexLike] = fn
            self._table: Optional[np.ndarray] = None
        else:
            table = np.asarray(fn, dtype=np.int64)
            if table.ndim != 1:
                raise ValueError("length table must be one-dimensional")
            if table.size and table.min() < 0:
                raise ValueError("lengths must be non-negative")
            self._table = table
            self._fn = lambda i: table[i]

    def __call__(self, *indices: IndexLike) -> IndexLike:
        if len(indices) != 1:
            raise CoraError(
                f"VarExtent depends on exactly one outer dimension "
                f"({self.dep.name}); got {len(indices)} indices"
            )
        return self._fn(indices[0])

    def max_value(self) -> int:
        if self._table is not None:
            return int(self._table.max()) if self._table.size else 0
        raise CoraError(
            "max_value of a callable-backed VarExtent is unknown; "
            "construct it from a length table to enable dense padding"
        )

    @property
    def table(self) -> Optional[np.ndarray]:
        """The per-index bound table, if the extent was built from one."""
        return self._table

    def __getstate__(self):
        # Only table-backed extents round-trip: a callable ``fn`` is an
        # arbitrary closure, so pickling it would silently capture process
        # state.  The AOT disk cache relies on this raising to skip
        # uncacheable kernels.
        if self._table is None:
            raise TypeError(
                "callable-backed VarExtent is not picklable; construct it "
                "from a length table to serialise"
            )
        return {"dep": self.dep, "table": self._table, "name": self.name}

    def __setstate__(self, state):
        self.dep = state["dep"]
        self.deps = (self.dep,)
        self.name = state["name"]
        table = state["table"]
        self._table = table
        self._fn = lambda i: table[i]

    def __repr__(self) -> str:
        return f"VarExtent({self.name}[{self.dep.name}])"


class PaddedExtent(Extent):
    """An extent padded up to a multiple of a constant.

    Produced by the ``pad_loop`` and ``pad_dimension`` scheduling primitives
    (Section 4.1).  Padding a loop elides conditional checks in vectorised /
    tiled code at the cost of a small amount of wasted computation
    (quantified in Section 7.4 / Figure 22 of the paper).
    """

    def __init__(self, base: Extent, multiple: int):
        if multiple <= 0:
            raise ValueError(f"padding multiple must be positive, got {multiple}")
        # Collapse nested padding into the least common multiple so that
        # ``pad(pad(e, 2), 4)`` behaves like ``pad(e, 4)``.
        if isinstance(base, PaddedExtent):
            multiple = int(np.lcm(multiple, base.multiple))
            base = base.base
        self.base = base
        self.multiple = int(multiple)
        self.deps = base.deps

    def __call__(self, *indices: IndexLike) -> IndexLike:
        return ceil_to(self.base(*indices), self.multiple)

    def max_value(self) -> int:
        return int(ceil_to(self.base.max_value(), self.multiple))

    def __repr__(self) -> str:
        return f"PaddedExtent({self.base!r}, multiple={self.multiple})"


def as_extent(value: Union[int, Extent]) -> Extent:
    """Coerce an int into a :class:`ConstExtent`, passing extents through."""
    if isinstance(value, Extent):
        return value
    if isinstance(value, (int, np.integer)):
        return ConstExtent(int(value))
    raise TypeError(f"cannot interpret {value!r} as an extent")


def loop_padding_of(extent: Extent) -> int:
    """Return the padding multiple applied to ``extent`` (1 if unpadded)."""
    if isinstance(extent, PaddedExtent):
        return extent.multiple
    return 1


def unpadded(extent: Extent) -> Extent:
    """Strip any padding wrapper from ``extent``."""
    if isinstance(extent, PaddedExtent):
        return extent.base
    return extent
