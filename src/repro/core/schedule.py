"""Scheduling primitives for ragged operators.

CoRa exposes the scheduling primitives familiar from dense tensor compilers
(split / tile, reorder, parallelise, vectorise, unroll) extended with the
ragged-specific primitives of paper Section 4.1:

* ``pad_loop(dim, multiple)`` -- pad a vloop's bound to a multiple of a
  constant so the generated code can be tiled / vectorised without bound
  checks;
* ``pad_dimension(dim, multiple)`` -- pad the *storage* of the output vdim;
  storage padding must be at least the loop padding so a padded loop never
  touches non-existent storage;
* ``fuse_loops(outer, inner)`` -- fuse a governing cloop with its vloop into
  a single loop whose bound is the sum of the variable bounds (Section 5.1);
  requires prelude-built fusion maps at run time;
* ``fuse_dimensions(outer, inner)`` -- mirror the fusion on the output
  storage so the access in the fused loop becomes a single flat index;
* ``split(dim, factor)`` -- classic loop splitting (tiling);
* ``reorder(...)`` -- reorder loops; a vloop may not be hoisted above the
  loop its bound depends on;
* ``parallel / vectorize / unroll / bind`` -- annotations consumed by the
  code generator and cost model;
* ``thread_remap(dim, policy)`` -- remap parallel loop iterations to
  execution units to balance load (Section 4.1 / Appendix A.1);
* :func:`operation_split` and :func:`horizontal_fuse` -- module-level
  transforms that split one operator into several by loop range and execute
  several operators concurrently as one kernel (Section 4.1, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dims import Dim, FusedDim
from repro.core.errors import ScheduleError
from repro.core.extents import ConstExtent, Extent, PaddedExtent, VarExtent
from repro.core.ir import Annotation
from repro.core.operator import RaggedOperator


@dataclass
class SplitInfo:
    """Record of one loop split: ``dim`` -> (``outer``, ``inner``) by ``factor``."""

    original: Dim
    outer: Dim
    inner: Dim
    factor: int


@dataclass
class FuseInfo:
    """Record of one loop fusion: (``outer``, ``inner``) -> ``fused``."""

    outer: Dim
    inner: Dim
    fused: FusedDim


@dataclass
class RemapInfo:
    """A thread-remapping policy attached to a parallel loop."""

    dim: Dim
    policy: Union[str, Callable[[np.ndarray], np.ndarray]]

    def permutation(self, workloads: np.ndarray) -> np.ndarray:
        """Compute the iteration->unit permutation for the given workloads.

        ``"sort_desc"`` schedules the heaviest iterations first (the policy
        used for trmm and the transformer kernels in the paper);
        ``"identity"`` keeps the original order; a callable receives the
        per-iteration workload array and returns a permutation.
        """
        workloads = np.asarray(workloads)
        if callable(self.policy):
            perm = np.asarray(self.policy(workloads), dtype=np.int64)
        elif self.policy == "sort_desc":
            perm = np.argsort(-workloads, kind="stable").astype(np.int64)
        elif self.policy == "identity":
            perm = np.arange(workloads.size, dtype=np.int64)
        else:
            raise ScheduleError(f"unknown thread remap policy {self.policy!r}")
        if sorted(perm.tolist()) != list(range(workloads.size)):
            raise ScheduleError("thread remap policy must return a permutation")
        return perm


class Schedule:
    """A schedule for one :class:`~repro.core.operator.RaggedOperator`.

    The schedule records transformations; :meth:`lower` (via
    :mod:`repro.core.lowering`) applies them to produce a loop nest.
    """

    def __init__(self, operator: RaggedOperator):
        self.operator = operator
        self.loop_padding: Dict[Dim, int] = {}
        self.storage_padding: Dict[Dim, int] = {}
        #: storage padding for *input* tensors, keyed by tensor name.
        self.input_storage_padding: Dict[str, Dict[Dim, int]] = {}
        self.splits: List[SplitInfo] = []
        self.fusions: List[FuseInfo] = []
        self.dim_fusions: List[Tuple[Dim, Dim]] = []
        self.annotations: Dict[Dim, Annotation] = {}
        self.remaps: List[RemapInfo] = []
        self.loop_order: List[Dim] = list(operator.dims)
        self.hoist_loads: bool = True

    # -- helpers -------------------------------------------------------------

    def _loop_index(self, dim: Dim) -> int:
        try:
            return self.loop_order.index(dim)
        except ValueError:
            raise ScheduleError(
                f"{dim.name} is not a loop of operator {self.operator.name} "
                "(it may have been split or fused away)"
            ) from None

    def _extent_of(self, dim: Dim) -> Extent:
        for d, e in zip(self.operator.dims, self.operator.loop_extents):
            if d is dim:
                return e
        for fuse in self.fusions:
            if fuse.fused is dim:
                # handled specially by lowering
                return ConstExtent(0)
        for split in self.splits:
            if split.outer is dim or split.inner is dim:
                return ConstExtent(0)
        raise ScheduleError(f"unknown dimension {dim.name}")

    # -- padding -------------------------------------------------------------

    def pad_loop(self, dim: Dim, multiple: int) -> "Schedule":
        """Pad the loop bound of ``dim`` up to a multiple of ``multiple``."""
        if multiple <= 0:
            raise ScheduleError("padding multiple must be positive")
        self._loop_index(dim)
        self.loop_padding[dim] = int(
            np.lcm(self.loop_padding.get(dim, 1), multiple)
        )
        return self

    def pad_dimension(self, dim: Dim, multiple: int) -> "Schedule":
        """Pad the storage of output dimension ``dim``.

        Storage padding must be at least the loop padding of the
        corresponding loop; this is validated at :meth:`validate` time since
        the loop padding may be specified afterwards.
        """
        if multiple <= 0:
            raise ScheduleError("padding multiple must be positive")
        if dim not in self.operator.dims:
            raise ScheduleError(
                f"{dim.name} is not an output dimension of {self.operator.name}"
            )
        self.storage_padding[dim] = int(
            np.lcm(self.storage_padding.get(dim, 1), multiple)
        )
        return self

    def pad_input_dimension(self, tensor_name: str, dim: Dim, multiple: int) -> "Schedule":
        """Pad the storage of an *input* tensor's dimension."""
        if multiple <= 0:
            raise ScheduleError("padding multiple must be positive")
        padding = self.input_storage_padding.setdefault(tensor_name, {})
        padding[dim] = int(np.lcm(padding.get(dim, 1), multiple))
        return self

    # -- fusion ---------------------------------------------------------------

    def fuse_loops(self, outer: Dim, inner: Dim) -> FusedDim:
        """Fuse two adjacent loops; the inner one may be a vloop.

        Returns the new fused dimension, which replaces the pair in the loop
        order.  At run time the prelude provides the ``ffo``/``ffi``/``foif``
        arrays relating the fused variable to the originals.
        """
        io, ii = self._loop_index(outer), self._loop_index(inner)
        if ii != io + 1:
            raise ScheduleError(
                f"can only fuse adjacent loops; {outer.name} is at position "
                f"{io} and {inner.name} at {ii}"
            )
        inner_ext = self._extent_of(inner)
        if inner_ext.deps and not (len(inner_ext.deps) == 1 and inner_ext.deps[0] is outer):
            raise ScheduleError(
                f"cannot fuse {outer.name} with {inner.name}: the inner "
                "bound depends on a different outer loop"
            )
        fused = FusedDim(outer=outer, inner=inner)
        self.fusions.append(FuseInfo(outer=outer, inner=inner, fused=fused))
        self.loop_order[io:ii + 1] = [fused]
        return fused

    def fuse_dimensions(self, outer: Dim, inner: Dim) -> "Schedule":
        """Fuse two adjacent output-storage dimensions (Section 5.1).

        When the storage fusion mirrors a loop fusion the access in the
        fused loop simplifies to a single flat index.
        """
        dims = list(self.operator.dims)
        if outer not in dims or inner not in dims:
            raise ScheduleError("both dimensions must belong to the output")
        if dims.index(inner) != dims.index(outer) + 1:
            raise ScheduleError("can only fuse adjacent storage dimensions")
        self.dim_fusions.append((outer, inner))
        return self

    # -- splitting / reordering ------------------------------------------------

    def split(self, dim: Dim, factor: int) -> Tuple[Dim, Dim]:
        """Split loop ``dim`` into an outer and an inner loop of size ``factor``.

        Splitting a vloop produces an outer loop over tiles and an inner loop
        with a bound check (elided if the loop is padded to ``factor``).
        """
        if factor <= 0:
            raise ScheduleError("split factor must be positive")
        idx = self._loop_index(dim)
        outer = Dim(f"{dim.name}.o")
        inner = Dim(f"{dim.name}.i")
        self.splits.append(SplitInfo(original=dim, outer=outer, inner=inner,
                                     factor=int(factor)))
        self.loop_order[idx:idx + 1] = [outer, inner]
        return outer, inner

    def reorder(self, *dims: Dim) -> "Schedule":
        """Reorder the loops.  ``dims`` must be a permutation of the loop order.

        A vloop (or a loop derived from one by splitting) may not be moved
        above the loop its bound depends on.
        """
        if sorted(d.uid for d in dims) != sorted(d.uid for d in self.loop_order):
            raise ScheduleError(
                "reorder must mention every current loop exactly once"
            )
        new_order = list(dims)
        # Validate vloop dependences are respected.
        positions = {d: i for i, d in enumerate(new_order)}
        for d in new_order:
            ext = self._dependent_extent(d)
            if ext is None:
                continue
            for dep in ext.deps:
                governing = self._current_loop_carrying(dep)
                if governing is None:
                    continue
                if positions.get(governing, -1) > positions[d]:
                    raise ScheduleError(
                        f"cannot reorder vloop {d.name} above {governing.name}, "
                        "whose iteration variable its bound depends on"
                    )
        self.loop_order = new_order
        return self

    def _dependent_extent(self, dim: Dim) -> Optional[Extent]:
        """The original variable extent behind a (possibly split) loop."""
        for d, e in zip(self.operator.dims, self.operator.loop_extents):
            if d is dim and e.deps:
                return e
        for split in self.splits:
            if dim in (split.outer, split.inner):
                return self._dependent_extent(split.original)
        return None

    def _current_loop_carrying(self, dim: Dim) -> Optional[Dim]:
        """The loop in the current order that carries original dim ``dim``."""
        if dim in self.loop_order:
            return dim
        for split in self.splits:
            if split.original is dim:
                # the outer split loop determines ordering constraints
                return self._current_loop_carrying(split.outer)
        for fuse in self.fusions:
            if dim in (fuse.outer, fuse.inner):
                return self._current_loop_carrying(fuse.fused)
        return None

    # -- annotations -------------------------------------------------------------

    def _annotate(self, dim: Dim, ann: Annotation) -> "Schedule":
        self._loop_index(dim)
        self.annotations[dim] = ann
        return self

    def parallel(self, dim: Dim) -> "Schedule":
        """Mark a loop as parallel (CPU threads / GPU blocks)."""
        return self._annotate(dim, Annotation.PARALLEL)

    def vectorize(self, dim: Dim) -> "Schedule":
        """Mark a loop for vectorisation."""
        return self._annotate(dim, Annotation.VECTORIZE)

    def unroll(self, dim: Dim) -> "Schedule":
        return self._annotate(dim, Annotation.UNROLL)

    def bind(self, dim: Dim, thread_axis: str) -> "Schedule":
        """Bind a loop to a GPU thread axis (``"blockIdx"`` or ``"threadIdx"``)."""
        if thread_axis == "blockIdx":
            return self._annotate(dim, Annotation.BIND_BLOCK)
        if thread_axis == "threadIdx":
            return self._annotate(dim, Annotation.BIND_THREAD)
        raise ScheduleError(f"unknown thread axis {thread_axis!r}")

    def thread_remap(self, dim: Dim,
                     policy: Union[str, Callable[[np.ndarray], np.ndarray]] = "sort_desc",
                     ) -> "Schedule":
        """Attach a thread-remapping (load balancing) policy to a parallel loop."""
        self._loop_index(dim)
        self.remaps.append(RemapInfo(dim=dim, policy=policy))
        return self

    def no_load_hoisting(self) -> "Schedule":
        """Disable hoisting of auxiliary-data loads out of inner loops.

        Used by the Figure 23 benchmark to quantify the cost of repeated
        indirect accesses to the prelude-built arrays.
        """
        self.hoist_loads = False
        return self

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check cross-primitive invariants before lowering."""
        for dim, loop_pad in self.loop_padding.items():
            if dim in self.operator.dims:
                storage_pad = self.storage_padding.get(dim, 1)
                storage_ext = dict(zip(self.operator.dims, self.operator.storage_extents))[dim]
                if not storage_ext.is_constant and storage_pad % loop_pad != 0 and storage_pad < loop_pad:
                    raise ScheduleError(
                        f"storage padding ({storage_pad}) of {dim.name} must "
                        f"be at least the loop padding ({loop_pad}) so the "
                        "padded loop never accesses non-existent storage"
                    )
        for dim, loop_pad in self.loop_padding.items():
            storage_pad = self.storage_padding.get(dim, 1)
            storage_ext_map = dict(zip(self.operator.dims, self.operator.storage_extents))
            if dim in storage_ext_map and not storage_ext_map[dim].is_constant:
                if storage_pad < loop_pad:
                    raise ScheduleError(
                        f"storage padding ({storage_pad}) of {dim.name} is "
                        f"smaller than its loop padding ({loop_pad})"
                    )

    # -- lowering entry point ---------------------------------------------------------

    def lower(self):
        """Lower this schedule to a loop nest (see :mod:`repro.core.lowering`)."""
        from repro.core.lowering import lower_schedule

        self.validate()
        return lower_schedule(self)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.operator.name!r}, "
            f"loops={[d.name for d in self.loop_order]})"
        )


# ---------------------------------------------------------------------------
# Operation splitting and horizontal fusion (Section 4.1, Figure 5)
# ---------------------------------------------------------------------------


@dataclass
class SplitOperator:
    """One piece of an operation split: the operator plus its loop sub-range.

    ``range_fn(outer_index) -> (lo, hi)`` gives the iteration sub-range of
    the split loop handled by this piece.
    """

    operator: RaggedOperator
    split_dim: Dim
    range_fn: Callable[[int], Tuple[int, int]]
    label: str = ""


def operation_split(
    operator: RaggedOperator,
    dim: Dim,
    split_point: Union[int, Callable[[int], int]],
) -> Tuple[SplitOperator, SplitOperator]:
    """Split an operator into two along one of its loops (Figure 5, step 1).

    The first piece handles iterations ``[0, split_point)`` of ``dim``, the
    second ``[split_point, bound)``.  For a vloop the split point may be a
    function of the outer index (e.g. "the largest multiple of the tile size
    not exceeding the bound").  The two pieces can then be horizontally fused
    so they execute concurrently as a single kernel.
    """
    if dim not in operator.dims:
        raise ScheduleError(f"{dim.name} is not a loop of {operator.name}")
    extent = dict(zip(operator.dims, operator.loop_extents))[dim]

    def point(o: int) -> int:
        if callable(split_point):
            return int(split_point(o))
        return int(split_point)

    def main_range(o: int) -> Tuple[int, int]:
        bound = int(extent(o)) if extent.deps else int(extent())
        return (0, min(point(o), bound))

    def tail_range(o: int) -> Tuple[int, int]:
        bound = int(extent(o)) if extent.deps else int(extent())
        return (min(point(o), bound), bound)

    main = SplitOperator(operator=operator, split_dim=dim, range_fn=main_range,
                         label=f"{operator.name}.main")
    tail = SplitOperator(operator=operator, split_dim=dim, range_fn=tail_range,
                         label=f"{operator.name}.tail")
    return main, tail


@dataclass
class HFusedGroup:
    """A group of operators horizontally fused into one kernel launch.

    Horizontal fusion (Section 4.1) executes the member operators
    concurrently on the device, restoring the parallelism lost by operation
    splitting; the cost model accounts for a single kernel launch and takes
    the maximum (not the sum) of the member latencies when enough parallel
    units are available.
    """

    members: List[SplitOperator]
    label: str = "hfused"


def horizontal_fuse(*members: SplitOperator, label: str = "hfused") -> HFusedGroup:
    """Horizontally fuse the outermost loops of several (split) operators."""
    if len(members) < 2:
        raise ScheduleError("horizontal fusion needs at least two operators")
    return HFusedGroup(members=list(members), label=label)
